(* Tests for the geometry kernel: canonical octagons, distances, SDRs and
   the spatial grid.  The qcheck properties pin down the exactness claims
   the DME engine relies on. *)

open Geometry

let pt = Pt.make

let check_float msg expected actual =
  Alcotest.(check (float 1e-6)) msg expected actual

(* --- Pt ----------------------------------------------------------------- *)

let test_pt_dist () =
  check_float "L1 dist" 7. (Pt.dist (pt 0. 0.) (pt 3. 4.));
  check_float "Linf dist" 4. (Pt.dist_linf (pt 0. 0.) (pt 3. 4.));
  check_float "rotated s" 7. (Pt.s (pt 3. 4.));
  check_float "rotated d" (-1.) (Pt.d (pt 3. 4.));
  let p = pt 3. 4. in
  Alcotest.(check bool) "of_sd inverse" true (Pt.equal p (Pt.of_sd (Pt.s p) (Pt.d p)))

(* --- Interval ----------------------------------------------------------- *)

let test_interval () =
  let a = Interval.make 0. 4. and b = Interval.make 6. 9. in
  check_float "gap" 2. (Interval.gap a b);
  check_float "gap sym" 2. (Interval.gap b a);
  check_float "overlap gap" 0. (Interval.gap a (Interval.make 3. 5.));
  Alcotest.(check bool) "empty" true (Interval.is_empty (Interval.make 2. 1.));
  Alcotest.(check bool)
    "inter" true
    (Interval.equal (Interval.inter a (Interval.make 2. 9.)) (Interval.make 2. 4.));
  check_float "width" 4. (Interval.width a);
  check_float "clamp low" 0. (Interval.clamp a (-3.));
  check_float "clamp high" 4. (Interval.clamp a 9.)

(* --- Octagon: construction and canonical form --------------------------- *)

let test_octagon_canonical () =
  (* Triangle x >= 0, y >= 0, x + y <= 2: the x and y upper bounds must be
     tightened to 2 by closure. *)
  let o =
    Octagon.of_bounds ~xl:0. ~xh:10. ~yl:0. ~yh:10. ~sl:Float.neg_infinity
      ~sh:2. ~dl:Float.neg_infinity ~dh:Float.infinity
  in
  match Octagon.bounds o with
  | None -> Alcotest.fail "triangle should not be empty"
  | Some b ->
    check_float "xh tightened" 2. b.xh;
    check_float "yh tightened" 2. b.yh;
    check_float "sl tightened" 0. b.sl;
    check_float "dl tightened" (-2.) b.dl;
    check_float "dh tightened" 2. b.dh

let test_octagon_empty () =
  let o =
    Octagon.of_bounds ~xl:0. ~xh:1. ~yl:0. ~yh:1. ~sl:10. ~sh:20.
      ~dl:Float.neg_infinity ~dh:Float.infinity
  in
  Alcotest.(check bool) "inconsistent bounds are empty" true (Octagon.is_empty o);
  Alcotest.(check bool) "empty is empty" true (Octagon.is_empty Octagon.empty);
  let a = Octagon.of_point (pt 0. 0.) and b = Octagon.of_point (pt 5. 5.) in
  Alcotest.(check bool) "disjoint inter" true (Octagon.is_empty (Octagon.inter a b))

let test_octagon_point () =
  let p = pt 3. 7. in
  let o = Octagon.of_point p in
  Alcotest.(check bool) "contains itself" true (Octagon.contains o p);
  Alcotest.(check bool) "is_point" true (Octagon.is_point o);
  check_float "dist to other point" 9. (Octagon.dist_pt o (pt 10. 9.));
  Alcotest.(check bool) "center" true (Pt.equal p (Octagon.center o))

let test_octagon_box () =
  let o = Octagon.box (pt 0. 0.) (pt 4. 3.) in
  Alcotest.(check bool) "contains corner" true (Octagon.contains o (pt 4. 0.));
  Alcotest.(check bool) "contains mid" true (Octagon.contains o (pt 2. 1.5));
  Alcotest.(check bool) "excludes outside" false (Octagon.contains o (pt 5. 1.));
  check_float "area" 12. (Octagon.area o);
  check_float "diameter" 7. (Octagon.diameter o);
  Alcotest.(check int) "4 vertices" 4 (List.length (Octagon.vertices o))

let test_octagon_segment () =
  let arc = Octagon.of_segment (pt 0. 4.) (pt 4. 0.) in
  Alcotest.(check bool) "midpoint on arc" true (Octagon.contains arc (pt 2. 2.));
  Alcotest.(check bool) "off-arc point" false (Octagon.contains arc (pt 2. 3.));
  check_float "arc area" 0. (Octagon.area arc);
  check_float "arc diameter" 8. (Octagon.diameter arc);
  Alcotest.check_raises "non-octilinear rejected"
    (Invalid_argument "Octagon.of_segment: (0, 0)-(5, 2) is not octilinear")
    (fun () -> ignore (Octagon.of_segment (pt 0. 0.) (pt 5. 2.)))

let test_octagon_ball () =
  let o = Octagon.ball (pt 5. 5.) 2. in
  Alcotest.(check bool) "corner" true (Octagon.contains o (pt 7. 5.));
  Alcotest.(check bool) "diag outside" false (Octagon.contains o (pt 6.5 6.5));
  check_float "ball area" 8. (Octagon.area o)

let test_octagon_dist_segments () =
  (* Two parallel horizontal segments offset vertically. *)
  let a = Octagon.of_segment (pt 0. 0.) (pt 10. 0.) in
  let b = Octagon.of_segment (pt 0. 5.) (pt 10. 5.) in
  check_float "parallel segments" 5. (Octagon.dist a b);
  (* Shifted apart horizontally: L1 distance adds the gaps. *)
  let c = Octagon.of_segment (pt 20. 7.) (pt 30. 7.) in
  check_float "diagonal offset" 17. (Octagon.dist a c);
  (* Overlapping regions have distance 0. *)
  let d = Octagon.box (pt 5. (-1.)) (pt 6. 1.) in
  check_float "overlap" 0. (Octagon.dist a d)

let test_octagon_inflate () =
  let a = Octagon.of_point (pt 0. 0.) in
  let t = Octagon.inflate 3. a in
  check_float "trr dist" 4. (Octagon.dist_pt t (pt 7. 0.));
  Alcotest.(check bool) "trr contains radius pt" true (Octagon.contains t (pt 1. 2.));
  (* Inflating by the full distance makes regions touch. *)
  let b = Octagon.of_point (pt 10. 0.) in
  let r = Octagon.dist a b in
  let meet = Octagon.inter (Octagon.inflate 4. a) (Octagon.inflate (r -. 4.) b) in
  Alcotest.(check bool) "trr intersection nonempty" false (Octagon.is_empty meet);
  Alcotest.(check bool) "meeting point" true (Octagon.contains meet (pt 4. 0.))

let test_octagon_nearest_point () =
  let o = Octagon.box (pt 0. 0.) (pt 4. 4.) in
  let p = pt 10. 2. in
  let q = Octagon.nearest_point o p in
  Alcotest.(check bool) "nearest inside" true (Octagon.contains o q);
  Alcotest.(check (float 1e-4)) "nearest dist" (Octagon.dist_pt o p)
    (Pt.dist p q);
  let inside = pt 1. 1. in
  Alcotest.(check bool) "inside point maps to itself" true
    (Pt.equal inside (Octagon.nearest_point o inside))

let test_octagon_sdr () =
  (* SDR of two points is their bounding box. *)
  let a = Octagon.of_point (pt 0. 0.) and b = Octagon.of_point (pt 6. 4.) in
  let s = Octagon.sdr a b in
  Alcotest.(check bool) "sdr contains interior staircase pt" true
    (Octagon.contains s (pt 3. 2.));
  Alcotest.(check bool) "sdr contains corner" true (Octagon.contains s (pt 6. 0.));
  Alcotest.(check bool) "sdr excludes detour" false (Octagon.contains s (pt 3. 5.));
  check_float "sdr area" 24. (Octagon.area s);
  (* Every SDR point is on a shortest path. *)
  let c = Octagon.center s in
  check_float "center splits distance" (Octagon.dist a b)
    (Octagon.dist_pt a c +. Octagon.dist_pt b c)

let test_octagon_hull () =
  let a = Octagon.of_point (pt 0. 0.) and b = Octagon.of_point (pt 4. 0.) in
  let h = Octagon.hull a b in
  Alcotest.(check bool) "hull contains mid" true (Octagon.contains h (pt 2. 0.));
  Alcotest.(check bool) "hull excludes off-line" false (Octagon.contains h (pt 2. 1.));
  let h2 = Octagon.hull_list [ a; b; Octagon.of_point (pt 2. 2.) ] in
  Alcotest.(check bool) "hull_list grows" true (Octagon.contains h2 (pt 2. 1.))

let test_octagon_translate () =
  let o = Octagon.box (pt 0. 0.) (pt 2. 2.) in
  let t = Octagon.translate (pt 10. (-5.)) o in
  Alcotest.(check bool) "translated corner" true (Octagon.contains t (pt 12. (-3.)));
  Alcotest.(check bool) "old corner gone" false (Octagon.contains t (pt 0. 0.))

(* --- qcheck properties --------------------------------------------------- *)

let coord = QCheck.Gen.float_range (-1000.) 1000.

let gen_pt = QCheck.Gen.map2 pt coord coord

(* Random octagon as the octilinear hull of 1-5 random points; the
   generating points are recorded so membership witnesses are available. *)
let gen_oct_with_pts =
  QCheck.Gen.(
    list_size (int_range 1 5) gen_pt >|= fun pts ->
    (Octagon.hull_list (List.map Octagon.of_point pts), pts))

let arb_oct_with_pts =
  QCheck.make
    ~print:(fun (o, _) -> Format.asprintf "%a" Octagon.pp o)
    gen_oct_with_pts

let arb_two_octs =
  QCheck.make
    ~print:(fun ((a, _), (b, _)) ->
      Format.asprintf "%a / %a" Octagon.pp a Octagon.pp b)
    QCheck.Gen.(pair gen_oct_with_pts gen_oct_with_pts)

let arb_oct_and_pt =
  QCheck.make
    ~print:(fun ((o, _), p) ->
      Format.asprintf "%a / %a" Octagon.pp o Pt.pp p)
    QCheck.Gen.(pair gen_oct_with_pts gen_pt)

let prop_generators_contained =
  QCheck.Test.make ~name:"hull contains generating points" ~count:300
    arb_oct_with_pts (fun (o, pts) ->
      List.for_all (Octagon.contains o) pts)

let prop_pick_point_inside =
  QCheck.Test.make ~name:"pick_point lies inside" ~count:300 arb_oct_with_pts
    (fun (o, _) -> Octagon.contains o (Octagon.pick_point o))

let prop_dist_lower_bound =
  QCheck.Test.make ~name:"dist is a lower bound on point pairs" ~count:300
    arb_two_octs (fun ((a, pas), (b, pbs)) ->
      let d = Octagon.dist a b in
      List.for_all
        (fun pa -> List.for_all (fun pb -> Pt.dist pa pb +. 1e-6 >= d) pbs)
        pas)

let prop_closest_pair_realizes_dist =
  QCheck.Test.make ~name:"closest_pair realizes dist" ~count:300 arb_two_octs
    (fun ((a, _), (b, _)) ->
      let d = Octagon.dist a b in
      let pa, pb = Octagon.closest_pair a b in
      Octagon.contains a pa && Octagon.contains b pb
      && Float.abs (Pt.dist pa pb -. d) <= 1e-4)

let prop_nearest_point_exact =
  QCheck.Test.make ~name:"nearest_point realizes dist_pt" ~count:300
    arb_oct_and_pt (fun ((o, _), p) ->
      let q = Octagon.nearest_point o p in
      Octagon.contains o q
      && Float.abs (Pt.dist p q -. Octagon.dist_pt o p) <= 1e-4)

let prop_inflate_shrinks_dist =
  QCheck.Test.make ~name:"inflating by r reduces dist by r" ~count:300
    QCheck.(
      pair arb_two_octs (QCheck.make (QCheck.Gen.float_range 0. 500.)))
    (fun (((a, _), (b, _)), r) ->
      let d = Octagon.dist a b in
      let d' = Octagon.dist (Octagon.inflate r a) b in
      Float.abs (d' -. Float.max 0. (d -. r)) <= 1e-6)

let prop_inter_sound =
  QCheck.Test.make ~name:"intersection members belong to both" ~count:300
    arb_two_octs (fun ((a, _), (b, _)) ->
      let i = Octagon.inter a b in
      if Octagon.is_empty i then Octagon.dist a b >= -.1e-6
      else
        let p = Octagon.pick_point i in
        Octagon.contains a p && Octagon.contains b p)

let prop_inter_empty_iff_positive_dist =
  QCheck.Test.make ~name:"empty intersection iff positive distance"
    ~count:300 arb_two_octs (fun ((a, _), (b, _)) ->
      let d = Octagon.dist a b in
      let i = Octagon.inter a b in
      if Octagon.is_empty i then d > -.1e-6 else d <= 1e-6)

let prop_sdr_points_on_shortest_paths =
  QCheck.Test.make ~name:"sdr vertices split the distance" ~count:200
    arb_two_octs (fun ((a, _), (b, _)) ->
      let d = Octagon.dist a b in
      let s = Octagon.sdr a b in
      (not (Octagon.is_empty s))
      && List.for_all
           (fun p ->
             Float.abs (Octagon.dist_pt a p +. Octagon.dist_pt b p -. d)
             <= 1e-4)
           (Octagon.center s :: Octagon.vertices s))

let prop_diameter =
  QCheck.Test.make ~name:"diameter bounds generating point spread" ~count:300
    arb_oct_with_pts (fun (o, pts) ->
      let dia = Octagon.diameter o in
      List.for_all
        (fun p -> List.for_all (fun q -> Pt.dist p q <= dia +. 1e-6) pts)
        pts)

let prop_vertices_inside =
  QCheck.Test.make ~name:"vertices lie inside" ~count:300 arb_oct_with_pts
    (fun (o, _) -> List.for_all (Octagon.contains o) (Octagon.vertices o))

(* Brute-force cross-check of dist_pt: sample a fine grid over the
   bounding box and compare the best sampled distance with the closed
   form.  The grid only bounds from above, so allow the grid pitch as
   slack. *)
let prop_dist_pt_brute_force =
  QCheck.Test.make ~name:"dist_pt matches brute force" ~count:100
    arb_oct_and_pt (fun ((o, _), p) ->
      let xr = Octagon.x_range o and yr = Octagon.y_range o in
      let n = 24 in
      let pitch =
        Float.max (Interval.width xr) (Interval.width yr) /. float_of_int n
      in
      let best = ref Float.infinity in
      for i = 0 to n do
        for j = 0 to n do
          let q =
            pt
              (xr.lo +. (Interval.width xr *. float_of_int i /. float_of_int n))
              (yr.lo +. (Interval.width yr *. float_of_int j /. float_of_int n))
          in
          if Octagon.contains o q then best := Float.min !best (Pt.dist p q)
        done
      done;
      let d = Octagon.dist_pt o p in
      (* closed form is a lower bound and within 2 grid pitches above *)
      d <= !best +. 1e-6 && !best <= d +. (2. *. pitch) +. 1e-6)

(* Brute-force cross-check of the set-to-set distance: sample grids over
   both octagons and compare the best sampled pair against the closed
   form, which must bound from below and sit within the combined grid
   pitch above. *)
let prop_dist_brute_force =
  QCheck.Test.make ~name:"dist matches brute force" ~count:60 arb_two_octs
    (fun ((a, _), (b, _)) ->
      let samples o =
        let xr = Octagon.x_range o and yr = Octagon.y_range o in
        let n = 12 in
        let pts = ref [] in
        for i = 0 to n do
          for j = 0 to n do
            let q =
              pt
                (xr.lo +. (Interval.width xr *. float_of_int i /. float_of_int n))
                (yr.lo +. (Interval.width yr *. float_of_int j /. float_of_int n))
            in
            if Octagon.contains o q then pts := q :: !pts
          done
        done;
        let pitch =
          Float.max (Interval.width xr) (Interval.width yr) /. float_of_int n
        in
        (!pts, pitch)
      in
      let pa, pitch_a = samples a and pb, pitch_b = samples b in
      let best = ref Float.infinity in
      List.iter
        (fun p -> List.iter (fun q -> best := Float.min !best (Pt.dist p q)) pb)
        pa;
      let d = Octagon.dist a b in
      d <= !best +. 1e-6
      && !best <= d +. (2. *. (pitch_a +. pitch_b)) +. 1e-6)

let prop_inter_commutes =
  QCheck.Test.make ~name:"intersection commutes" ~count:300 arb_two_octs
    (fun ((a, _), (b, _)) ->
      Octagon.equal (Octagon.inter a b) (Octagon.inter b a))

let prop_dist_symmetric =
  QCheck.Test.make ~name:"dist is symmetric" ~count:300 arb_two_octs
    (fun ((a, _), (b, _)) ->
      Float.abs (Octagon.dist a b -. Octagon.dist b a) <= 1e-9)

(* Set distance obeys a triangle inequality once crossing the middle set
   is paid for: d(A,C) <= d(A,B) + diam(B) + d(B,C). *)
let prop_dist_triangle =
  QCheck.Test.make ~name:"dist triangle inequality through a set" ~count:200
    QCheck.(pair arb_two_octs arb_oct_with_pts)
    (fun (((a, _), (c, _)), (b, _)) ->
      Octagon.dist a c
      <= Octagon.dist a b +. Octagon.diameter b +. Octagon.dist b c +. 1e-6)

let gen_interval =
  QCheck.Gen.(map2 (fun a b -> Interval.make (Float.min a b) (Float.max a b))
                coord coord)

let arb_three_intervals =
  QCheck.make
    ~print:(fun ((a : Interval.t), (b : Interval.t), (c : Interval.t)) ->
      Printf.sprintf "[%g,%g] [%g,%g] [%g,%g]" a.lo a.hi b.lo b.hi c.lo c.hi)
    QCheck.Gen.(triple gen_interval gen_interval gen_interval)

let prop_interval_inter_commutes =
  QCheck.Test.make ~name:"interval intersection commutes" ~count:300
    arb_three_intervals (fun (a, b, _) ->
      let i = Interval.inter a b and j = Interval.inter b a in
      (Interval.is_empty i && Interval.is_empty j) || Interval.equal i j)

let prop_interval_gap_symmetric =
  QCheck.Test.make ~name:"interval gap is symmetric" ~count:300
    arb_three_intervals (fun (a, b, _) ->
      Float.abs (Interval.gap a b -. Interval.gap b a) <= 1e-9)

let prop_interval_gap_triangle =
  QCheck.Test.make ~name:"interval gap triangle through an interval"
    ~count:300 arb_three_intervals (fun (a, b, c) ->
      Interval.gap a c
      <= Interval.gap a b +. Interval.width b +. Interval.gap b c +. 1e-9)

let prop_hull_monotone =
  QCheck.Test.make ~name:"hull contains both operands" ~count:300 arb_two_octs
    (fun ((a, pas), (b, pbs)) ->
      let h = Octagon.hull a b in
      List.for_all (Octagon.contains h) (pas @ pbs))

let prop_translate_preserves_dist =
  QCheck.Test.make ~name:"translation preserves set distance" ~count:300
    QCheck.(pair arb_two_octs (QCheck.make gen_pt))
    (fun (((a, _), (b, _)), v) ->
      let d = Octagon.dist a b in
      let d' = Octagon.dist (Octagon.translate v a) (Octagon.translate v b) in
      Float.abs (d -. d') <= 1e-6)

(* --- Grid index ---------------------------------------------------------- *)

let test_grid_basic () =
  let g = Grid_index.create ~cell:10. in
  Grid_index.add g ~id:1 (pt 0. 0.) "a";
  Grid_index.add g ~id:2 (pt 100. 0.) "b";
  Grid_index.add g ~id:3 (pt 3. 4.) "c";
  Alcotest.(check int) "size" 3 (Grid_index.size g);
  (match Grid_index.nearest g (pt 1. 1.) with
   | Some (id, _, v) ->
     Alcotest.(check int) "nearest id" 1 id;
     Alcotest.(check string) "nearest value" "a" v
   | None -> Alcotest.fail "expected a hit");
  (match Grid_index.nearest g ~skip:(fun id -> id = 1) (pt 1. 1.) with
   | Some (id, _, _) -> Alcotest.(check int) "skip works" 3 id
   | None -> Alcotest.fail "expected a hit");
  Grid_index.remove g ~id:3 (pt 3. 4.);
  Alcotest.(check int) "size after remove" 2 (Grid_index.size g);
  let near2 = Grid_index.k_nearest g (pt 1. 1.) 2 in
  Alcotest.(check (list int)) "k_nearest order" [ 1; 2 ]
    (List.map (fun (id, _, _) -> id) near2);
  let w = Grid_index.within g (pt 0. 0.) 50. in
  Alcotest.(check int) "within radius" 1 (List.length w)

let prop_grid_matches_linear_scan =
  let gen =
    QCheck.Gen.(list_size (int_range 1 40) gen_pt >>= fun pts ->
      gen_pt >|= fun q -> (pts, q))
  in
  let arb =
    QCheck.make
      ~print:(fun (pts, q) ->
        Format.asprintf "%d pts, query %a" (List.length pts) Pt.pp q)
      gen
  in
  QCheck.Test.make ~name:"grid nearest matches linear scan" ~count:200 arb
    (fun (pts, q) ->
      let g = Grid_index.create ~cell:50. in
      List.iteri (fun i p -> Grid_index.add g ~id:i p i) pts;
      let best_scan =
        List.fold_left
          (fun acc p ->
            match acc with
            | None -> Some (Pt.dist q p)
            | Some d -> Some (Float.min d (Pt.dist q p)))
          None pts
      in
      match (Grid_index.nearest g q, best_scan) with
      | Some (_, p, _), Some d -> Float.abs (Pt.dist q p -. d) <= 1e-9
      | None, None -> true
      | _ -> false)

(* The bounded-heap k_nearest must agree with a brute-force k-NN on
   random point sets, for every k and with skip predicates (regression
   for the former O(m·k log k) accumulator re-sort). *)
let prop_grid_k_nearest_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 120 in
      let* pts = list_repeat n gen_pt in
      let* q = gen_pt in
      let* k = int_range 1 40 in
      let* cell = oneofl [ 3.; 25.; 120. ] in
      let* with_skip = bool in
      return (pts, q, k, cell, with_skip))
  in
  let arb =
    QCheck.make
      ~print:(fun (pts, _, k, cell, skip) ->
        Printf.sprintf "%d pts, k=%d cell=%g skip=%b" (List.length pts) k cell
          skip)
      gen
  in
  QCheck.Test.make ~name:"grid k_nearest matches brute force" ~count:300 arb
    (fun (pts, q, k, cell, with_skip) ->
      let skip = if with_skip then fun id -> id mod 3 = 0 else fun _ -> false in
      let g = Grid_index.create ~cell in
      List.iteri (fun i p -> Grid_index.add g ~id:i p i) pts;
      let got = Grid_index.k_nearest g ~skip q k in
      let brute =
        List.filteri (fun i _ -> not (skip i)) pts
        |> List.map (Pt.dist q)
        |> List.sort Float.compare
      in
      let expect_n = Int.min k (List.length brute) in
      List.length got = expect_n
      && List.for_all2
           (fun (_, p, _) d -> Float.abs (Pt.dist q p -. d) <= 1e-9)
           got
           (List.filteri (fun i _ -> i < expect_n) brute)
      (* returned entries are distinct and not skipped *)
      && List.length (List.sort_uniq compare (List.map (fun (id, _, _) -> id) got))
         = expect_n
      && List.for_all (fun (id, _, _) -> not (skip id)) got)

let test_grid_probe_semantics () =
  let g = Grid_index.create ~cell:10. in
  Grid_index.add g ~id:1 (pt 0. 0.) ();
  Grid_index.add g ~id:2 (pt 5. 0.) ();
  Grid_index.add g ~id:3 (pt 40. 0.) ();
  (* k below the population: the heap fills, so the probe must report the
     k-th distance as its exclusion bound. *)
  (match Grid_index.k_nearest_probe g (pt 0. 0.) 2 with
   | [ (a, _, _); (b, _, _) ], Some bound ->
     Alcotest.(check (list int)) "k=2 order" [ 1; 2 ] [ a; b ];
     Alcotest.(check (float 1e-9)) "k=2 bound is kth distance" 5. bound
   | _ -> Alcotest.fail "expected 2 entries with a bound");
  (* k above the population: the heap can never fill, the scan is
     exhaustive and no bound is reported.  (At k = population the heap
     does fill and a — vacuously sound — bound comes back.) *)
  (match Grid_index.k_nearest_probe g (pt 0. 0.) 4 with
   | entries, None -> Alcotest.(check int) "k=4 exhaustive" 3 (List.length entries)
   | _, Some _ -> Alcotest.fail "exhaustive scan must not report a bound");
  (* Negative radius matches nothing (and must not ring-scan forever). *)
  Alcotest.(check int) "negative within" 0
    (List.length (Grid_index.within g (pt 0. 0.) (-1.)));
  (* cell_of: same cell iff floor-quantized coordinates agree. *)
  Alcotest.(check bool) "same cell" true
    (Grid_index.cell_of g (pt 1. 1.) = Grid_index.cell_of g (pt 9. 9.));
  Alcotest.(check bool) "different cell" false
    (Grid_index.cell_of g (pt 1. 1.) = Grid_index.cell_of g (pt 11. 1.))

(* Churn property: a random interleaving of adds, removes and queries
   must agree with a brute-force mirror at every step — the index may
   never decay under mutation (bucket resize, cell emptying, re-adds).
   Also checks the k_nearest_probe exclusion-bound contract that the DME
   incremental ranking depends on: [Some d] means every eligible entry
   not returned lies at distance >= d; [None] means nothing was left
   out. *)
let prop_grid_churn =
  let gen =
    QCheck.Gen.(
      let* n_ops = int_range 5 120 in
      let* ops =
        list_repeat n_ops
          (let* tag = int_range 0 9 in
           let* p = gen_pt in
           let* x = int_range 0 30 in
           return (tag, p, x))
      in
      let* cell = oneofl [ 4.; 30.; 200. ] in
      return (ops, cell))
  in
  let arb =
    QCheck.make
      ~print:(fun (ops, cell) ->
        Printf.sprintf "%d ops, cell=%g" (List.length ops) cell)
      gen
  in
  QCheck.Test.make ~name:"grid survives add/remove churn" ~count:200 arb
    (fun (ops, cell) ->
      let g = Grid_index.create ~cell in
      let mirror : (int, Pt.t) Hashtbl.t = Hashtbl.create 64 in
      let next = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      let brute q =
        Hashtbl.fold (fun id p acc -> (id, Pt.dist q p) :: acc) mirror []
        |> List.sort (fun (i1, d1) (i2, d2) ->
               match Float.compare d1 d2 with
               | 0 -> Int.compare i1 i2
               | c -> c)
      in
      List.iter
        (fun (tag, p, x) ->
          match tag with
          | 0 | 1 | 2 | 3 ->
            let id = !next in
            incr next;
            Grid_index.add g ~id p p;
            Hashtbl.replace mirror id p
          | 4 | 5 ->
            (* remove the x-th live id (mod population), if any *)
            let ids =
              Hashtbl.fold (fun id _ acc -> id :: acc) mirror []
              |> List.sort Int.compare
            in
            (match ids with
             | [] -> ()
             | _ ->
               let id = List.nth ids (x mod List.length ids) in
               let pt_id = Hashtbl.find mirror id in
               Grid_index.remove g ~id pt_id;
               Hashtbl.remove mirror id)
          | 6 ->
            check (Grid_index.size g = Hashtbl.length mirror);
            let b = brute p in
            (match (Grid_index.nearest g p, b) with
             | Some (_, q, _), (_, d) :: _ ->
               check (Float.abs (Pt.dist p q -. d) <= 1e-9)
             | None, [] -> ()
             | _ -> check false)
          | 7 | 8 ->
            let k = 1 + (x mod 8) in
            let got, bound = Grid_index.k_nearest_probe g p k in
            let b = brute p in
            let expect_n = Int.min k (List.length b) in
            check (List.length got = expect_n);
            List.iteri
              (fun i (_, q, _) ->
                match List.nth_opt b i with
                | Some (_, d) -> check (Float.abs (Pt.dist p q -. d) <= 1e-9)
                | None -> check false)
              got;
            let returned = List.map (fun (id, _, _) -> id) got in
            (match bound with
             | Some d ->
               (* every eligible entry left out lies at distance >= d *)
               List.iter
                 (fun (id, dist) ->
                   if not (List.mem id returned) then check (dist >= d -. 1e-9))
                 b
             | None ->
               (* exhaustive: nothing was left out *)
               check (List.length got = List.length b))
          | _ ->
            let r = Float.abs p.Pt.x in
            let got = Grid_index.within g p r in
            let expect =
              List.filter (fun (_, d) -> d <= r) (brute p) |> List.length
            in
            check (List.length got = expect))
        ops;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "geometry"
    [
      ( "pt-interval",
        [
          Alcotest.test_case "pt distances" `Quick test_pt_dist;
          Alcotest.test_case "intervals" `Quick test_interval;
        ] );
      ( "octagon",
        [
          Alcotest.test_case "canonical closure" `Quick test_octagon_canonical;
          Alcotest.test_case "emptiness" `Quick test_octagon_empty;
          Alcotest.test_case "point octagon" `Quick test_octagon_point;
          Alcotest.test_case "box" `Quick test_octagon_box;
          Alcotest.test_case "manhattan arc" `Quick test_octagon_segment;
          Alcotest.test_case "ball" `Quick test_octagon_ball;
          Alcotest.test_case "segment distances" `Quick test_octagon_dist_segments;
          Alcotest.test_case "inflate / trr" `Quick test_octagon_inflate;
          Alcotest.test_case "nearest point" `Quick test_octagon_nearest_point;
          Alcotest.test_case "sdr" `Quick test_octagon_sdr;
          Alcotest.test_case "hull" `Quick test_octagon_hull;
          Alcotest.test_case "translate" `Quick test_octagon_translate;
        ] );
      ( "octagon-properties",
        qsuite
          [
            prop_generators_contained;
            prop_pick_point_inside;
            prop_dist_lower_bound;
            prop_closest_pair_realizes_dist;
            prop_nearest_point_exact;
            prop_inflate_shrinks_dist;
            prop_inter_sound;
            prop_inter_empty_iff_positive_dist;
            prop_sdr_points_on_shortest_paths;
            prop_diameter;
            prop_vertices_inside;
            prop_dist_pt_brute_force;
            prop_dist_brute_force;
            prop_inter_commutes;
            prop_dist_symmetric;
            prop_dist_triangle;
            prop_hull_monotone;
            prop_translate_preserves_dist;
          ] );
      ( "interval-properties",
        qsuite
          [
            prop_interval_inter_commutes;
            prop_interval_gap_symmetric;
            prop_interval_gap_triangle;
          ] );
      ( "grid-index",
        Alcotest.test_case "basic operations" `Quick test_grid_basic
        :: Alcotest.test_case "probe semantics" `Quick test_grid_probe_semantics
        :: qsuite
             [
               prop_grid_matches_linear_scan;
               prop_grid_k_nearest_matches_brute_force;
               prop_grid_churn;
             ] );
    ]
