(* Tests for the clock-tree data model, exact Elmore evaluation and the
   skew repair pass. *)

module Pt = Geometry.Pt
open Clocktree

let pt = Pt.make
let params = Rc.Wire.default

let sink id x y ?(cap = 20.) group = Sink.make ~id ~loc:(pt x y) ~cap ~group

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* --- Instance ------------------------------------------------------------ *)

let test_instance_validation () =
  let sinks = [| sink 0 0. 0. 0; sink 1 10. 0. 1 |] in
  let inst = Instance.make ~source:(pt 0. 0.) ~n_groups:2 sinks in
  Alcotest.(check int) "n_sinks" 2 (Instance.n_sinks inst);
  Alcotest.(check (list int)) "group 1 sinks" [ 1 ]
    (List.map (fun (s : Sink.t) -> s.id) (Instance.group_sinks inst 1));
  Alcotest.(check (array int)) "group sizes" [| 1; 1 |] (Instance.group_sizes inst);
  Alcotest.check_raises "group out of range"
    (Invalid_argument "Instance.make: sink group out of range") (fun () ->
      ignore (Instance.make ~source:(pt 0. 0.) ~n_groups:1 sinks));
  Alcotest.check_raises "dense ids"
    (Invalid_argument "Instance.make: sink ids must be dense") (fun () ->
      ignore
        (Instance.make ~source:(pt 0. 0.) ~n_groups:2 [| sink 1 0. 0. 0 |]))

(* --- Tree ---------------------------------------------------------------- *)

let two_sink_tree () =
  let s0 = sink 0 10. 0. 0 and s1 = sink 1 (-10.) 0. 0 in
  let t =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:10. ~rlen:10.
  in
  (s0, s1, Tree.route (pt 0. 0.) t)

let test_tree_metrics () =
  let _, _, routed = two_sink_tree () in
  check_float "wirelength" 20. (Tree.wirelength routed);
  check_float "no snaking" 0. (Tree.total_snaking routed);
  Alcotest.(check int) "n_sinks" 2 (Tree.n_sinks routed.tree);
  Alcotest.(check int) "n_nodes" 3 (Tree.n_nodes routed.tree);
  Alcotest.(check int) "depth" 2 (Tree.depth routed.tree)

let test_tree_snaking_counted () =
  let s0 = sink 0 10. 0. 0 and s1 = sink 1 (-10.) 0. 0 in
  let t =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:15. ~rlen:10.
  in
  let routed = Tree.route (pt 0. 0.) t in
  check_float "wirelength includes snake" 25. (Tree.wirelength routed);
  check_float "snaking" 5. (Tree.total_snaking routed)

let test_tree_rejects_short_edge () =
  let s0 = sink 0 10. 0. 0 and s1 = sink 1 (-10.) 0. 0 in
  Alcotest.check_raises "short edge"
    (Invalid_argument "Tree.node: left length 5 < distance 10") (fun () ->
      ignore (Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:5. ~rlen:10.))

(* --- Evaluate ------------------------------------------------------------ *)

let test_evaluate_hand_check () =
  let _, _, routed = two_sink_tree () in
  let inst =
    Instance.make ~rd:100. ~source:(pt 0. 0.) ~n_groups:1
      [| sink 0 10. 0. 0; sink 1 (-10.) 0. 0 |]
  in
  let d = Evaluate.delays inst routed in
  (* Total cap = 2*20 fF + 20 units * 0.02 fF = 40.4 fF.
     Driver: 100 ohm * 40.4 fF = 4.04 ps.
     Edge: 0.003*10*(0.02*10/2 + 20) = 0.603 ohm·fF = 0.000603 ps. *)
  check_float ~tol:1e-9 "sink 0 delay" 4.040603 d.(0);
  check_float ~tol:1e-9 "symmetric" d.(0) d.(1);
  let report = Evaluate.run inst routed in
  check_float "zero skew" 0. report.global_skew;
  check_float "group skew" 0. report.max_group_skew;
  check_float "wirelength" 20. report.wirelength;
  Alcotest.(check bool) "within bound" true (Evaluate.within_bound inst report)

let test_evaluate_matches_direct_recursion () =
  (* Cross-check the RC-tree-based evaluation against a direct recursive
     Elmore computation on an asymmetric tree. *)
  let s0 = sink 0 0. 0. ~cap:35. 0 in
  let s1 = sink 1 40. 0. ~cap:15. 0 in
  let s2 = sink 2 20. 30. ~cap:25. 1 in
  let inner =
    Tree.node (pt 20. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:20. ~rlen:20.
  in
  let top = Tree.node (pt 20. 10.) inner (Tree.Leaf s2) ~llen:10. ~rlen:20. in
  let routed = Tree.route (pt 0. 10.) top in
  let inst =
    Instance.make ~rd:50. ~source:(pt 0. 10.) ~n_groups:2 [| s0; s1; s2 |]
  in
  let d = Evaluate.delays inst routed in
  let w len load = Rc.Elmore.wire_delay params ~len ~load in
  let cap_inner = 35. +. 15. +. (params.Rc.Wire.c *. 40.) in
  let cap_top = cap_inner +. 25. +. (params.Rc.Wire.c *. 30.) in
  let cap_total = cap_top +. (params.Rc.Wire.c *. 20.) in
  let at_root = Rc.Elmore.driver_delay ~rd:50. ~load:cap_total +. w 20. cap_top in
  check_float ~tol:1e-9 "sink0" (at_root +. w 10. cap_inner +. w 20. 35.) d.(0);
  check_float ~tol:1e-9 "sink1" (at_root +. w 10. cap_inner +. w 20. 15.) d.(1);
  check_float ~tol:1e-9 "sink2" (at_root +. w 20. 25.) d.(2)

(* --- Repair -------------------------------------------------------------- *)

let test_repair_balances_pair () =
  (* Unbalanced: the merge point sits at one sink, so the other is slower.
     Zero-skew repair must snake the short edge. *)
  let s0 = sink 0 0. 0. 0 and s1 = sink 1 100. 0. 0 in
  let t =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:0. ~rlen:100.
  in
  let routed = Tree.route (pt 0. 0.) t in
  let inst =
    Instance.make ~bound:0. ~source:(pt 0. 0.) ~n_groups:1 [| s0; s1 |]
  in
  let before = Evaluate.run inst routed in
  Alcotest.(check bool) "skewed before" true (before.max_group_skew > 1e-6);
  let repaired, stats = Repair.run inst routed in
  let after = Evaluate.run inst repaired in
  Alcotest.(check bool) "balanced after" true (after.max_group_skew <= 1e-6);
  Alcotest.(check bool) "wire added" true (stats.added_wire > 0.);
  Alcotest.(check int) "one edge adjusted" 1 stats.adjusted_edges;
  Alcotest.(check int) "no unresolved" 0 stats.unresolved_groups

let test_repair_respects_bound_slack () =
  (* With a generous bound the same tree needs no repair. *)
  let s0 = sink 0 0. 0. 0 and s1 = sink 1 100. 0. 0 in
  let t =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:0. ~rlen:100.
  in
  let routed = Tree.route (pt 0. 0.) t in
  let inst =
    Instance.make ~bound:1000. ~source:(pt 0. 0.) ~n_groups:1 [| s0; s1 |]
  in
  let _, stats = Repair.run inst routed in
  check_float "no wire added" 0. stats.added_wire;
  Alcotest.(check int) "no adjustment" 0 stats.adjusted_edges

let test_repair_ignores_cross_group () =
  (* Two sinks from different groups: no constraint, no repair. *)
  let s0 = sink 0 0. 0. 0 and s1 = sink 1 100. 0. 1 in
  let t =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:0. ~rlen:100.
  in
  let routed = Tree.route (pt 0. 0.) t in
  let inst =
    Instance.make ~bound:0. ~source:(pt 0. 0.) ~n_groups:2 [| s0; s1 |]
  in
  let _, stats = Repair.run inst routed in
  check_float "no wire added" 0. stats.added_wire

(* Random trees: greedily pair sinks (midpoint nodes, exact distances) and
   check that repair enforces the bound on the final embedded tree. *)
let random_topology sinks =
  let rec pair = function
    | [] -> assert false
    | [ t ] -> t
    | t1 :: t2 :: rest ->
      let p = Pt.mid (Tree.pos t1) (Tree.pos t2) in
      let llen = Pt.dist p (Tree.pos t1) and rlen = Pt.dist p (Tree.pos t2) in
      pair (rest @ [ Tree.node p t1 t2 ~llen ~rlen ])
  in
  pair (List.map (fun s -> Tree.Leaf s) sinks)

let gen_repair_case =
  QCheck.Gen.(
    let* n = int_range 2 24 in
    let* n_groups = int_range 1 4 in
    let* coords = list_repeat n (pair (float_range 0. 20000.) (float_range 0. 20000.)) in
    let* groups = list_repeat n (int_range 0 (n_groups - 1)) in
    let* caps = list_repeat n (float_range 5. 80.) in
    let* bound = oneofl [ 0.; 5.; 10. ] in
    return (coords, groups, caps, n_groups, bound))

let prop_repair_enforces_bound =
  QCheck.Test.make ~name:"repair enforces intra-group bound" ~count:200
    (QCheck.make gen_repair_case)
    (fun (coords, groups, caps, n_groups, bound) ->
      let sinks =
        List.mapi
          (fun i ((x, y), (g, cap)) -> Sink.make ~id:i ~loc:(pt x y) ~cap ~group:g)
          (List.combine coords (List.combine groups caps))
      in
      let arr = Array.of_list sinks in
      let inst = Instance.make ~bound ~source:(pt 0. 0.) ~n_groups arr in
      let routed = Tree.route (pt 0. 0.) (random_topology sinks) in
      let repaired, stats = Repair.run inst routed in
      let report = Evaluate.run inst repaired in
      stats.unresolved_groups = 0 && Evaluate.within_bound inst report)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* --- Arena ----------------------------------------------------------------- *)

(* Flatten → rebuild must be the identity, bit for bit: same structure,
   same positions, same sink records, same edge lengths.  Structural
   equality on the routed record compares every float exactly. *)
let prop_arena_roundtrip =
  QCheck.Test.make ~name:"arena flatten/rebuild round-trips bit-exact"
    ~count:300
    (QCheck.make gen_repair_case)
    (fun (coords, groups, caps, n_groups, _bound) ->
      let sinks =
        List.mapi
          (fun i ((x, y), (g, cap)) -> Sink.make ~id:i ~loc:(pt x y) ~cap ~group:g)
          (List.combine coords (List.combine groups caps))
      in
      ignore n_groups;
      let routed = Tree.route (pt (-5.) 7.) (random_topology sinks) in
      let a = Arena.of_routed params ~rd:100. routed in
      routed = Arena.to_routed a)

(* A 240k-node left-deep comb: every recursive walk would need ~120k
   stack frames.  Flatten, repair and evaluate must all survive it and,
   with a generous bound, repair must leave the tree untouched. *)
let test_deep_comb_stack_safety () =
  let n = 120_000 in
  let sinks = Array.init n (fun i -> sink i (float_of_int i) 0. 0) in
  let t = ref (Tree.Leaf sinks.(0)) in
  for i = 1 to n - 1 do
    let p = sinks.(i).Sink.loc in
    t := Tree.node p !t (Tree.Leaf sinks.(i)) ~llen:1. ~rlen:0.
  done;
  let root = pt (float_of_int (n - 1)) 0. in
  let routed = Tree.route root !t in
  let inst = Instance.make ~bound:1e9 ~source:root ~n_groups:1 sinks in
  let a = Arena.of_routed inst.params ~rd:inst.rd routed in
  Alcotest.(check int) "node count" (2 * n - 1) a.Arena.n;
  check_float "wirelength" (float_of_int (n - 1))
    (Arena.wirelength a);
  let repaired, stats = Repair.run inst routed in
  check_float "repair is a no-op" 0. stats.added_wire;
  Alcotest.(check int) "no edges adjusted" 0 stats.adjusted_edges;
  Alcotest.(check int) "no unresolved" 0 stats.unresolved_groups;
  let report = Evaluate.run inst repaired in
  Alcotest.(check bool) "within bound" true (Evaluate.within_bound inst report)

(* Windowed (parallel-shaped) evaluation must be bit-identical to the
   serial kernels: the window fills and the serial spine stitch compute
   every node's value with the serial expression from the serial
   operands, so no jobs/regions decomposition may move a single ulp. *)
let test_evaluate_windowed_identity () =
  let rng = Workload.Rng.create 9L in
  let n = 500 in
  let sinks =
    List.init n (fun i ->
        sink i
          (Workload.Rng.float_range rng 0. 20000.)
          (Workload.Rng.float_range rng 0. 20000.)
          (i mod 5))
  in
  let inst =
    Instance.make ~bound:10. ~source:(pt 0. 0.) ~n_groups:5
      (Array.of_list sinks)
  in
  let routed = Tree.route (pt 0. 0.) (random_topology sinks) in
  let serial = Evaluate.run ~jobs:1 inst routed in
  List.iter
    (fun (jobs, regions) ->
      let w = Evaluate.run ~jobs ?regions inst routed in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d regions=%s identical report" jobs
           (match regions with None -> "auto" | Some r -> string_of_int r))
        true
        (w.delays = serial.delays
        && w.wirelength = serial.wirelength
        && w.snaking = serial.snaking
        && w.min_delay = serial.min_delay
        && w.max_delay = serial.max_delay
        && w.global_skew = serial.global_skew
        && w.group_skew = serial.group_skew
        && w.max_group_skew = serial.max_group_skew))
    [ (2, None); (4, Some 3); (8, Some 17) ]

(* Feasible tree: repair must hand back the identical arena content —
   not merely "no stats", the rebuilt tree itself is bit-equal. *)
let test_repair_noop_preserves_tree () =
  let s0 = sink 0 0. 0. 0 and s1 = sink 1 100. 0. 0 in
  let t =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:0. ~rlen:100.
  in
  let routed = Tree.route (pt 0. 0.) t in
  let inst =
    Instance.make ~bound:1000. ~source:(pt 0. 0.) ~n_groups:1 [| s0; s1 |]
  in
  let repaired, stats = Repair.run inst routed in
  Alcotest.(check int) "no adjustment" 0 stats.adjusted_edges;
  Alcotest.(check bool) "tree bit-equal" true (routed = repaired)

(* Conflicting groups under a zero bound: one balance pass cannot
   converge, so [max_cycles = 0] must exhaust the budget, report the
   unresolved groups, and still terminate.  The default budget resolves
   the same instance. *)
let exhaustion_case () =
  let s0 = sink 0 0. 0. 0 and s1 = sink 1 0. 10000. 1 in
  let s2 = sink 2 20000. 0. 0 and s3 = sink 3 20000. 20000. 1 in
  let a =
    Tree.node (pt 0. 0.) (Tree.Leaf s0) (Tree.Leaf s1) ~llen:0. ~rlen:10000.
  in
  let b =
    Tree.node (pt 20000. 0.) (Tree.Leaf s2) (Tree.Leaf s3) ~llen:0.
      ~rlen:20000.
  in
  let top = Tree.node (pt 10000. 0.) a b ~llen:10000. ~rlen:10000. in
  let routed = Tree.route (pt 10000. 0.) top in
  let inst =
    Instance.make ~bound:0. ~source:(pt 10000. 0.) ~n_groups:2
      [| s0; s1; s2; s3 |]
  in
  (inst, routed)

let test_repair_budget_exhaustion () =
  let inst, routed = exhaustion_case () in
  let config = { Repair.default_config with max_cycles = 0 } in
  let _, stats = Repair.run ~config inst routed in
  Alcotest.(check bool) "budget exhausted" true stats.budget_exhausted;
  Alcotest.(check int) "one balance pass" 1 stats.cycles;
  Alcotest.(check bool) "unresolved reported" true
    (stats.unresolved_groups > 0)

let test_repair_default_budget_converges () =
  let inst, routed = exhaustion_case () in
  let repaired, stats = Repair.run inst routed in
  Alcotest.(check bool) "not exhausted" false stats.budget_exhausted;
  Alcotest.(check int) "no unresolved" 0 stats.unresolved_groups;
  let report = Evaluate.run inst repaired in
  Alcotest.(check bool) "within bound" true (Evaluate.within_bound inst report)

(* --- Per-group bounds ----------------------------------------------------- *)

let test_per_group_bounds () =
  let sinks = [| sink 0 0. 0. 0; sink 1 20000. 0. 0; sink 2 0. 100. 1; sink 3 20000. 100. 1 |] in
  let inst =
    Instance.make ~bound:10. ~group_bounds:[| 0.; 50. |] ~source:(pt 0. 0.)
      ~n_groups:2 sinks
  in
  check_float "group 0 bound" 0. (Instance.bound_for inst 0);
  check_float "group 1 bound" 50. (Instance.bound_for inst 1);
  check_float "max bound" 50. (Instance.max_bound inst);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Instance.make: group_bounds length mismatch") (fun () ->
      ignore
        (Instance.make ~group_bounds:[| 1. |] ~source:(pt 0. 0.) ~n_groups:2 sinks))

let test_repair_per_group_bounds () =
  (* Group 0 must be exact; group 1 may drift 50 ps.  Build a skewed tree
     and verify repair enforces exactly the per-group limits. *)
  let sinks =
    [| sink 0 0. 0. 0; sink 1 30000. 0. 0; sink 2 100. 100. 1; sink 3 30100. 100. 1 |]
  in
  let inst =
    Instance.make ~bound:10. ~group_bounds:[| 0.; 50. |] ~source:(pt 0. 0.)
      ~n_groups:2 sinks
  in
  let routed =
    Tree.route (pt 0. 0.) (random_topology (Array.to_list sinks))
  in
  let repaired, stats = Repair.run inst routed in
  let report = Evaluate.run inst repaired in
  Alcotest.(check int) "no unresolved" 0 stats.unresolved_groups;
  Alcotest.(check bool) "group 0 exact" true (report.group_skew.(0) <= 1e-4);
  Alcotest.(check bool) "group 1 within 50" true (report.group_skew.(1) <= 50. +. 1e-4)

(* --- Io ------------------------------------------------------------------- *)

let test_io_roundtrip () =
  let sinks = [| sink 0 1.5 2.5 ~cap:33.25 0; sink 1 100. 200. ~cap:55. 1 |] in
  let inst =
    Instance.make ~bound:7.5 ~group_bounds:[| 7.5; 12. |] ~rd:80.
      ~source:(pt 10. 20.) ~n_groups:2 sinks
  in
  let text = Io.to_string inst in
  match Io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok inst' ->
    Alcotest.(check int) "n_sinks" (Instance.n_sinks inst) (Instance.n_sinks inst');
    Alcotest.(check int) "n_groups" inst.n_groups inst'.n_groups;
    check_float "bound" inst.bound inst'.bound;
    check_float "rd" inst.rd inst'.rd;
    check_float "group bound 1" 12. (Instance.bound_for inst' 1);
    Alcotest.(check bool) "source" true (Pt.equal inst.source inst'.source);
    Array.iteri
      (fun i (s : Sink.t) ->
        let t = inst'.sinks.(i) in
        Alcotest.(check bool) "sink preserved" true
          (Pt.equal s.loc t.loc && s.cap = t.cap && s.group = t.group))
      inst.sinks

let test_io_errors () =
  (match Io.of_string "nonsense 1 2 3" with
   | Error msg ->
     Alcotest.(check bool) "mentions line" true
       (String.length msg > 0 && String.sub msg 0 4 = "line")
   | Ok _ -> Alcotest.fail "expected parse error");
  (match Io.of_string "groups 2\nsink 0 0 0 10 0" with
   | Error msg ->
     Alcotest.(check bool) "missing source reported" true
       (String.length msg > 0)
   | Ok _ -> Alcotest.fail "expected missing-source error")

let test_io_comments_and_order () =
  let text =
    "# a comment\n\
     groups 1\n\
     sink 0 5 6 20 0   # trailing comment\n\
     source 0 0\n\
     bound 3\n"
  in
  match Io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok inst ->
    Alcotest.(check int) "one sink" 1 (Instance.n_sinks inst);
    check_float "bound" 3. inst.bound

(* --- Svg ------------------------------------------------------------------ *)

let test_svg_renders () =
  let _, _, routed = two_sink_tree () in
  let inst =
    Instance.make ~source:(pt 0. 0.) ~n_groups:1
      [| sink 0 10. 0. 0; sink 1 (-10.) 0. 0 |]
  in
  let svg = Svg.render inst routed in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  Alcotest.(check bool) "is svg" true (contains_sub svg "<svg");
  Alcotest.(check bool) "has sinks" true (contains_sub svg "<circle");
  Alcotest.(check bool) "has wires" true (contains_sub svg "<path");
  Alcotest.(check bool) "has source marker" true (contains_sub svg "<rect x=")

let () =
  Alcotest.run "clocktree"
    [
      ( "instance",
        [ Alcotest.test_case "validation" `Quick test_instance_validation ] );
      ( "tree",
        [
          Alcotest.test_case "metrics" `Quick test_tree_metrics;
          Alcotest.test_case "snaking counted" `Quick test_tree_snaking_counted;
          Alcotest.test_case "short edge rejected" `Quick test_tree_rejects_short_edge;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "hand check" `Quick test_evaluate_hand_check;
          Alcotest.test_case "matches direct recursion" `Quick
            test_evaluate_matches_direct_recursion;
        ] );
      ( "repair",
        [
          Alcotest.test_case "balances a pair" `Quick test_repair_balances_pair;
          Alcotest.test_case "bound slack" `Quick test_repair_respects_bound_slack;
          Alcotest.test_case "cross-group free" `Quick test_repair_ignores_cross_group;
          Alcotest.test_case "per-group bounds" `Quick test_repair_per_group_bounds;
        ]
        @ qsuite [ prop_repair_enforces_bound ] );
      ( "arena",
        [
          Alcotest.test_case "deep comb stack safety" `Quick
            test_deep_comb_stack_safety;
          Alcotest.test_case "windowed evaluation identity" `Quick
            test_evaluate_windowed_identity;
          Alcotest.test_case "no-op preserves tree" `Quick
            test_repair_noop_preserves_tree;
          Alcotest.test_case "budget exhaustion" `Quick
            test_repair_budget_exhaustion;
          Alcotest.test_case "default budget converges" `Quick
            test_repair_default_budget_converges;
        ]
        @ qsuite [ prop_arena_roundtrip ] );
      ( "bounds",
        [ Alcotest.test_case "per-group accessors" `Quick test_per_group_bounds ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "comments and order" `Quick test_io_comments_and_order;
        ] );
      ("svg", [ Alcotest.test_case "renders" `Quick test_svg_renders ]);
    ]
