(* Tests for the deferred-merge engine: subtree state, the four merge
   cases, ordering, embedding, and end-to-end constraint satisfaction. *)

module Pt = Geometry.Pt
module Octagon = Geometry.Octagon
module Interval = Geometry.Interval
open Clocktree

let pt = Pt.make

let sink id x y ?(cap = 20.) group = Sink.make ~id ~loc:(pt x y) ~cap ~group

let instance ?(bound = 0.) ?(n_groups = 1) sinks =
  Instance.make ~bound ~source:(pt 0. 0.) ~n_groups (Array.of_list sinks)

let merge inst ?(id = 1000) a b =
  Dme.Merge.run inst ~split_slack:0.25 ~width_cap:0.7 ~sdr_samples:9 ~id a b

let check_float ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* --- Subtree ------------------------------------------------------------- *)

let test_subtree_leaf () =
  let s = sink 3 10. 20. 2 in
  let t = Dme.Subtree.leaf s in
  Alcotest.(check int) "id" 3 t.id;
  Alcotest.(check (list int)) "groups" [ 2 ] (Dme.Subtree.groups t);
  check_float "cap" 20. t.cap;
  Alcotest.(check bool) "region is the sink" true
    (Octagon.contains t.region (pt 10. 20.));
  check_float "no width" 0. (Dme.Subtree.max_group_width t);
  check_float "full slack" 10. (Dme.Subtree.min_slack ~bound:10. t)

let test_subtree_shared_groups () =
  let inst =
    instance ~n_groups:3
      [ sink 0 0. 0. 0; sink 1 10. 0. 1; sink 2 20. 0. 1; sink 3 30. 0. 2 ]
  in
  let l i = Dme.Subtree.leaf inst.sinks.(i) in
  let a = (merge inst ~id:10 (l 0) (l 1)).subtree in
  let b = (merge inst ~id:11 (l 2) (l 3)).subtree in
  Alcotest.(check (list int)) "a groups" [ 0; 1 ] (Dme.Subtree.groups a);
  Alcotest.(check (list int)) "shared" [ 1 ] (Dme.Subtree.shared_groups a b)

(* --- Merge cases --------------------------------------------------------- *)

let test_merge_same_group_zero_skew () =
  (* Two equal sinks 100 apart, zero skew: merging segment through the
     middle, delays equal. *)
  let inst = instance ~bound:0. [ sink 0 0. 0. 0; sink 1 100. 0. 0 ] in
  let r =
    merge inst (Dme.Subtree.leaf inst.sinks.(0)) (Dme.Subtree.leaf inst.sinks.(1))
  in
  Alcotest.(check bool) "kind" true (r.kind = Dme.Merge.Same_group);
  Alcotest.(check bool) "feasible" true r.feasible;
  check_float "wire = distance" 100. r.planned_wire;
  check_float "no snake" 0. r.snake;
  Alcotest.(check bool) "region contains midpoint" true
    (Octagon.contains r.subtree.region (pt 50. 0.));
  Alcotest.(check bool) "region excludes endpoints" false
    (Octagon.contains r.subtree.region (pt 0. 0.));
  let iv = Dme.Subtree.IntMap.find 0 r.subtree.delay in
  check_float "zero width delay" 0. (Interval.width iv);
  (* cap: 2 sinks + wire *)
  check_float "cap" (40. +. (0.02 *. 100.)) r.subtree.cap

let test_merge_same_group_snaking () =
  (* Very unequal loads at distance 0 force snaking. *)
  let inst =
    instance ~bound:0. [ sink 0 0. 0. ~cap:10. 0; sink 1 0. 0. ~cap:500. 0 ]
  in
  let heavy =
    merge inst
      (Dme.Subtree.leaf inst.sinks.(0))
      (Dme.Subtree.leaf inst.sinks.(1))
  in
  check_float "no snake needed at dist 0 with equal delays" 0. heavy.snake;
  (* Distance large, but one side has a big head start in delay: build an
     unbalanced inner pair first. *)
  let inst2 =
    instance ~bound:0. ~n_groups:1
      [ sink 0 0. 0. 0; sink 1 20000. 0. 0; sink 2 20100. 0. 0 ]
  in
  let inner =
    merge inst2
      (Dme.Subtree.leaf inst2.sinks.(1))
      (Dme.Subtree.leaf inst2.sinks.(2))
  in
  let outer = merge inst2 inner.subtree (Dme.Subtree.leaf inst2.sinks.(0)) in
  Alcotest.(check bool) "feasible" true outer.feasible;
  (* The lone far sink is faster; balancing may need wire beyond the
     distance only if the imbalance exceeds the span — here it should
     balance without snaking. *)
  check_float "no snake" 0. outer.snake

let test_merge_cross_group () =
  let inst =
    instance ~bound:10. ~n_groups:2 [ sink 0 0. 0. 0; sink 1 60. 40. 1 ]
  in
  let r =
    merge inst (Dme.Subtree.leaf inst.sinks.(0)) (Dme.Subtree.leaf inst.sinks.(1))
  in
  Alcotest.(check bool) "kind" true (r.kind = Dme.Merge.Cross_group);
  check_float "wire = distance" 100. r.planned_wire;
  check_float "no snake ever" 0. r.snake;
  (* The merging region is inside the SDR: every point splits the
     distance exactly. *)
  let reg = r.subtree.region in
  let c = Octagon.center reg in
  check_float ~tol:1e-4 "center splits distance" 100.
    (Pt.dist c (pt 0. 0.) +. Pt.dist c (pt 60. 40.));
  (* Both groups present, delay intervals disjoint keys. *)
  Alcotest.(check (list int)) "groups" [ 0; 1 ] (Dme.Subtree.groups r.subtree)

let test_merge_cross_group_interval_soundness () =
  (* The recorded interval must cover the delay of any admissible
     split. *)
  let inst =
    instance ~bound:10. ~n_groups:2 [ sink 0 0. 0. 0; sink 1 2000. 0. 1 ]
  in
  let r =
    merge inst (Dme.Subtree.leaf inst.sinks.(0)) (Dme.Subtree.leaf inst.sinks.(1))
  in
  match r.subtree.build with
  | Dme.Subtree.Merge { lengths = Dme.Subtree.Split { total; split_lo; split_hi }; _ } ->
    check_float "total" 2000. total;
    Alcotest.(check bool) "split range ordered" true (split_lo <= split_hi);
    (* Nominal bookkeeping: the recorded delay is that of the balanced
       split, which lies inside the admissible split range; widths stay
       exact (0 for a single sink). *)
    let iv0 = Dme.Subtree.IntMap.find 0 r.subtree.delay in
    check_float "single sink keeps zero width" 0. (Interval.width iv0);
    let w len = Rc.Elmore.wire_delay inst.params ~len ~load:20. in
    Alcotest.(check bool) "nominal delay within split range" true
      (iv0.Interval.lo >= w split_lo -. 1e-9 && iv0.Interval.hi <= w split_hi +. 1e-9)
  | _ -> Alcotest.fail "expected a split merge"

let test_merge_shared_one () =
  (* Subtrees {g0, g1} and {g1, g2}: share exactly one group. *)
  let inst =
    instance ~bound:10. ~n_groups:3
      [ sink 0 0. 0. 0; sink 1 100. 0. 1; sink 2 5000. 0. 1; sink 3 5100. 0. 2 ]
  in
  let l i = Dme.Subtree.leaf inst.sinks.(i) in
  let a = (merge inst ~id:10 (l 0) (l 1)).subtree in
  let b = (merge inst ~id:11 (l 2) (l 3)).subtree in
  let r = merge inst ~id:12 a b in
  Alcotest.(check bool) "kind" true (r.kind = Dme.Merge.Shared_one);
  Alcotest.(check bool) "feasible" true r.feasible;
  let iv1 = Dme.Subtree.IntMap.find 1 r.subtree.delay in
  Alcotest.(check bool) "shared group within bound" true
    (Interval.width iv1 <= 10. +. 1e-6)

let test_merge_shared_multi () =
  (* Both subtrees contain groups {0, 1}. *)
  let inst =
    instance ~bound:10. ~n_groups:2
      [
        sink 0 0. 0. 0;
        sink 1 100. 0. 1;
        sink 2 5000. 0. 0;
        sink 3 5100. 0. 1;
      ]
  in
  let l i = Dme.Subtree.leaf inst.sinks.(i) in
  let a = (merge inst ~id:10 (l 0) (l 1)).subtree in
  let b = (merge inst ~id:11 (l 2) (l 3)).subtree in
  let r = merge inst ~id:12 a b in
  Alcotest.(check bool) "kind" true (r.kind = Dme.Merge.Shared_multi);
  List.iter
    (fun g ->
      let iv = Dme.Subtree.IntMap.find g r.subtree.delay in
      Alcotest.(check bool)
        (Printf.sprintf "group %d within bound" g)
        true
        (Interval.width iv <= 10. +. 1e-6))
    [ 0; 1 ]

(* --- Order --------------------------------------------------------------- *)

let mk_instance n ~n_groups ~bound =
  let rng = Workload.Rng.create 42L in
  let sinks =
    List.init n (fun i ->
        sink i
          (Workload.Rng.float_range rng 0. 10000.)
          (Workload.Rng.float_range rng 0. 10000.)
          (i mod n_groups))
  in
  instance ~bound ~n_groups sinks

let test_order_reduces_to_one () =
  let inst = mk_instance 33 ~n_groups:3 ~bound:10. in
  let merge_cb ~id a b = (merge inst ~id a b).subtree in
  let cost (a : Dme.Subtree.t) (b : Dme.Subtree.t) =
    Octagon.dist a.region b.region
  in
  let root, stats = Dme.Order.run inst Dme.Order.default ~cost ~merge:merge_cb in
  Alcotest.(check int) "all sinks" 33 root.n_sinks;
  Alcotest.(check bool) "several rounds" true (stats.rounds >= 2);
  (* single-pair mode produces one merge per round *)
  let config = { Dme.Order.default with multi_merge = false } in
  let root1, stats1 = Dme.Order.run inst config ~cost ~merge:merge_cb in
  Alcotest.(check int) "all sinks single" 33 root1.n_sinks;
  Alcotest.(check int) "n-1 rounds" 32 stats1.rounds

(* Endgame audit: the smallest instances exercise the final 2- and
   3-subtree rounds of the nearest-neighbour loop, where a grid query
   returning [] (or a knn misconfiguration) used to stall the order. *)
let test_order_two_sink_endgame () =
  let inst = instance ~bound:10. ~n_groups:2 [ sink 0 0. 0. 0; sink 1 700. 300. 1 ] in
  let merge_cb ~id a b = (merge inst ~id a b).subtree in
  let cost (a : Dme.Subtree.t) (b : Dme.Subtree.t) =
    Octagon.dist a.region b.region
  in
  let root, stats = Dme.Order.run inst Dme.Order.default ~cost ~merge:merge_cb in
  Alcotest.(check int) "both sinks merged" 2 root.n_sinks;
  Alcotest.(check int) "one round" 1 stats.Dme.Order.rounds

let test_order_three_sink_endgame () =
  let inst =
    instance ~bound:10. ~n_groups:3
      [ sink 0 0. 0. 0; sink 1 900. 0. 1; sink 2 0. 900. 2 ]
  in
  let merge_cb ~id a b = (merge inst ~id a b).subtree in
  let cost (a : Dme.Subtree.t) (b : Dme.Subtree.t) =
    Octagon.dist a.region b.region
  in
  let root, _ = Dme.Order.run inst Dme.Order.default ~cost ~merge:merge_cb in
  Alcotest.(check int) "all three sinks merged" 3 root.n_sinks

let test_order_knn_zero_clamped () =
  (* knn = 0 used to make every query return [] and loop forever; it is
     now clamped to 1. *)
  let inst = mk_instance 12 ~n_groups:2 ~bound:10. in
  let merge_cb ~id a b = (merge inst ~id a b).subtree in
  let cost (a : Dme.Subtree.t) (b : Dme.Subtree.t) =
    Octagon.dist a.region b.region
  in
  let config = { Dme.Order.default with knn = 0 } in
  let root, _ = Dme.Order.run inst config ~cost ~merge:merge_cb in
  Alcotest.(check int) "all sinks merged" 12 root.n_sinks

(* --- Embed --------------------------------------------------------------- *)

let rec check_positions_consistent = function
  | Tree.Leaf _ -> ()
  | Tree.Node n ->
    let check len child =
      let d = Pt.dist n.pos (Tree.pos child) in
      Alcotest.(check bool) "edge covers distance" true (len +. 1e-4 >= d)
    in
    check n.llen n.left;
    check n.rlen n.right;
    check_positions_consistent n.left;
    check_positions_consistent n.right

let test_embed_valid_tree () =
  let inst = mk_instance 25 ~n_groups:2 ~bound:10. in
  let routed, _ = Dme.Engine.run inst in
  Alcotest.(check int) "sinks preserved" 25 (Tree.n_sinks routed.tree);
  check_positions_consistent routed.tree;
  Alcotest.(check bool) "source wire covers distance" true
    (routed.source_len +. 1e-4 >= Pt.dist routed.source (Tree.pos routed.tree))

(* Arena-direct embedding must be bit-identical — every column, every
   float — to the reference path (recursive embed, [Tree.route], then
   [Arena.of_routed]), for every generation regime and any jobs count.
   The oracle compares the two arenas field by field. *)
let prop_embed_arena_identity =
  let regimes = Check.Gen.all_regimes in
  let gen =
    QCheck.Gen.(
      let* seed = 1 -- 10_000 in
      let* index = 0 -- (Array.length regimes - 1) in
      return (seed, index))
  in
  QCheck.Test.make ~name:"arena embed = reference embed (all regimes)"
    ~count:27
    (QCheck.make
       ~print:(fun (seed, index) ->
         Printf.sprintf "seed=%d regime=%s" seed
           (Check.Gen.regime_to_string regimes.(index)))
       gen)
    (fun (seed, index) ->
      let case =
        Check.Gen.case ~regime:regimes.(index) ~seed:(Int64.of_int seed)
          ~index ()
      in
      Check.Oracle.embed_identity ~jobs:[ 1; 2; 4 ] case.Check.Gen.instance
      = [])

(* The Banked regime (10^3—4*10^3 sinks in dense banks) rides the same
   identity through a benchmark-scale plan. *)
let test_embed_identity_banked () =
  let case = Check.Gen.case ~regime:Check.Gen.Banked ~seed:11L ~index:0 () in
  Alcotest.(check (list string))
    "banked embed identity" []
    (List.map
       (fun (f : Check.Oracle.finding) -> f.oracle)
       (Check.Oracle.embed_identity ~jobs:[ 2 ] case.Check.Gen.instance))

(* A 240k-node left-deep merge plan: the iterative arena embed must
   walk it in constant stack (the recursive reference embedder would
   need ~120k frames), and the iterative rebuild must survive too. *)
let test_embed_deep_comb_stack_safety () =
  let n = 120_000 in
  let sinks = Array.init n (fun i -> sink i (float_of_int i) 0. 0) in
  let inst = Instance.make ~bound:1e9 ~source:(pt 0. 0.) ~n_groups:1 sinks in
  let root = ref (Dme.Subtree.leaf sinks.(0)) in
  for i = 1 to n - 1 do
    root :=
      (merge inst ~id:(n + i) !root (Dme.Subtree.leaf sinks.(i))).subtree
  done;
  let a = Dme.Embed.run_arena inst !root in
  Alcotest.(check int) "node count" ((2 * n) - 1) a.Arena.n;
  Alcotest.(check int) "sink count" n a.Arena.n_sinks;
  let routed = Arena.to_routed a in
  Alcotest.(check int) "sinks preserved" n (Tree.n_sinks routed.tree)

(* --- Engine end-to-end --------------------------------------------------- *)

let test_engine_zero_skew () =
  let inst = mk_instance 30 ~n_groups:1 ~bound:0. in
  let routed, stats = Dme.Engine.run inst in
  let routed, _ = Repair.run inst routed in
  let report = Evaluate.run inst routed in
  Alcotest.(check bool) "zero skew achieved" true (report.global_skew <= 1e-4);
  Alcotest.(check int) "all merges same-group" 29 stats.same_group

let test_engine_stats_add_up () =
  let inst = mk_instance 40 ~n_groups:4 ~bound:10. in
  let _, stats = Dme.Engine.run inst in
  Alcotest.(check int) "n-1 merges total" 39
    (stats.same_group + stats.cross_group + stats.shared_one + stats.shared_multi);
  Alcotest.(check bool) "cross merges happened" true (stats.cross_group > 0)

(* --- Trial cache determinism --------------------------------------------- *)

let rec tree_equal a b =
  match (a, b) with
  | Tree.Leaf s1, Tree.Leaf s2 -> s1.Sink.id = s2.Sink.id
  | Tree.Node n1, Tree.Node n2 ->
    Pt.equal n1.pos n2.pos
    && n1.llen = n2.llen && n1.rlen = n2.rlen
    && tree_equal n1.left n2.left
    && tree_equal n1.right n2.right
  | _ -> false

let test_trial_cache_bit_identical () =
  (* The trial cache (memoization + cross-group elision + winner reuse)
     must be a pure speedup: routing with it on and off must produce
     bit-identical trees — positions, exact edge lengths, sink delays. *)
  let cache_off =
    { Astskew.Router.ast_default_config with Dme.Engine.trial_cache = false }
  in
  List.iter
    (fun name ->
      let spec = Option.get (Workload.Circuits.find name) in
      let inst =
        Workload.Circuits.instance spec ~n_groups:6
          ~scheme:Workload.Partition.Intermingled ~bound:10. ()
      in
      let off = Astskew.Router.ast_dme ~config:cache_off inst in
      let on = Astskew.Router.ast_dme inst in
      Alcotest.(check bool)
        (name ^ ": identical topology and embedding")
        true
        (tree_equal off.routed.tree on.routed.tree
        && Pt.equal off.routed.source on.routed.source
        && off.routed.source_len = on.routed.source_len);
      Alcotest.(check bool)
        (name ^ ": identical wirelength/skews")
        true
        (off.evaluation.wirelength = on.evaluation.wirelength
        && off.evaluation.global_skew = on.evaluation.global_skew
        && off.evaluation.max_group_skew = on.evaluation.max_group_skew);
      Alcotest.(check bool)
        (name ^ ": identical per-sink delays")
        true
        (off.evaluation.delays = on.evaluation.delays);
      (* and the cache actually did something *)
      Alcotest.(check bool)
        (name ^ ": cache active")
        true
        (on.engine.trial.cache_hits + on.engine.trial.elided_trials > 0
        && off.engine.trial.cache_hits = 0
        && off.engine.trial.elided_trials = 0))
    [ "r1"; "r2"; "r3" ]

let test_parallel_bit_identical () =
  (* Parallel cost ranking must be a pure speedup: jobs=1 and jobs=4
     must produce bit-identical trees — positions, exact edge lengths,
     sink delays — AND identical trial-cache statistics (proving the
     workers ran exactly the trials the serial code would have). *)
  List.iter
    (fun name ->
      let spec = Option.get (Workload.Circuits.find name) in
      let inst =
        Workload.Circuits.instance spec ~n_groups:6
          ~scheme:Workload.Partition.Intermingled ~bound:10. ()
      in
      let serial = Astskew.Router.ast_dme ~jobs:1 inst in
      let par = Astskew.Router.ast_dme ~jobs:4 inst in
      Alcotest.(check bool)
        (name ^ ": identical topology and embedding")
        true
        (tree_equal serial.routed.tree par.routed.tree
        && Pt.equal serial.routed.source par.routed.source
        && serial.routed.source_len = par.routed.source_len);
      Alcotest.(check bool)
        (name ^ ": identical wirelength/skews")
        true
        (serial.evaluation.wirelength = par.evaluation.wirelength
        && serial.evaluation.global_skew = par.evaluation.global_skew
        && serial.evaluation.max_group_skew = par.evaluation.max_group_skew);
      Alcotest.(check bool)
        (name ^ ": identical per-sink delays")
        true
        (serial.evaluation.delays = par.evaluation.delays);
      Alcotest.(check bool)
        (name ^ ": identical trial stats")
        true
        (serial.engine.trial = par.engine.trial
        (* Distance-cost ranking answers feasibility from the constraint
           windows (Merge.committed_feasible), so probes run no trial
           merges at all — every probe evaluation is an elision. *)
        && serial.engine.trial.trial_merges = 0
        && serial.engine.trial.elided_trials > 0))
    [ "r1"; "r2" ]

let test_incremental_bit_identical () =
  (* The cross-round proposal cache must be a pure probe saver: routing
     with it on and off must produce bit-identical trees, delays and
     wirelength for serial AND parallel ranking; the cache must actually
     skip probes; and the probe accounting must balance (every rank slot
     either re-probed or served from the cache). *)
  List.iter
    (fun name ->
      let spec = Option.get (Workload.Circuits.find name) in
      let inst =
        Workload.Circuits.instance spec ~n_groups:6
          ~scheme:Workload.Partition.Intermingled ~bound:10. ()
      in
      let off = Astskew.Router.ast_dme ~jobs:1 ~incremental:false inst in
      List.iter
        (fun jobs ->
          let on = Astskew.Router.ast_dme ~jobs ~incremental:true inst in
          let tag = Printf.sprintf "%s jobs=%d" name jobs in
          Alcotest.(check bool)
            (tag ^ ": identical topology and embedding")
            true
            (tree_equal off.routed.tree on.routed.tree
            && Pt.equal off.routed.source on.routed.source
            && off.routed.source_len = on.routed.source_len);
          Alcotest.(check bool)
            (tag ^ ": identical wirelength/skews")
            true
            (off.evaluation.wirelength = on.evaluation.wirelength
            && off.evaluation.global_skew = on.evaluation.global_skew
            && off.evaluation.max_group_skew = on.evaluation.max_group_skew);
          Alcotest.(check bool)
            (tag ^ ": identical per-sink delays")
            true
            (off.evaluation.delays = on.evaluation.delays);
          Alcotest.(check bool) (tag ^ ": cache active") true
            (on.engine.nn_probes_saved > 0);
          Alcotest.(check int)
            (tag ^ ": probe accounting")
            off.engine.nn_reprobes
            (on.engine.nn_reprobes + on.engine.nn_probes_saved))
        [ 1; 4 ];
      Alcotest.(check int)
        (name ^ ": from-scratch run saves nothing")
        0 off.engine.nn_probes_saved)
    [ "r1"; "r2" ]

let test_dedupe_pairs () =
  let open Dme.Order in
  Alcotest.(check (list (triple (float 0.) int int)))
    "empty" [] (dedupe_pairs []);
  (* Pre-sorted by (i, j, cost): the first entry of each (i, j) run —
     the cheapest — survives. *)
  Alcotest.(check (list (triple (float 0.) int int)))
    "collapses runs to the cheapest"
    [ (1., 0, 1); (5., 0, 2); (2., 1, 3) ]
    (dedupe_pairs
       [ (1., 0, 1); (3., 0, 1); (5., 0, 2); (2., 1, 3); (2., 1, 3) ])

let test_dedupe_pairs_large () =
  (* Regression: the former non-tail recursion overflowed the stack at
     Gen.Huge-scale pair counts. *)
  let n = 400_000 in
  let pairs = List.init n (fun i -> (float_of_int i, i, i + 1)) in
  Alcotest.(check int) "all distinct pairs survive" n
    (List.length (Dme.Order.dedupe_pairs pairs))

let prop_engine_respects_bound =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 40 in
      let* n_groups = int_range 1 5 in
      let* bound = oneofl [ 0.; 10.; 50. ] in
      let* per_group = QCheck.Gen.bool in
      let* seed = int_range 0 10000 in
      return (n, n_groups, bound, per_group, seed))
  in
  QCheck.Test.make ~name:"engine+repair respects intra-group bound" ~count:120
    (QCheck.make ~print:(fun (n, g, b, pg, s) ->
         Printf.sprintf "n=%d groups=%d bound=%g per_group=%b seed=%d" n g b pg s)
       gen)
    (fun (n, n_groups, bound, per_group, seed) ->
      let rng = Workload.Rng.create (Int64.of_int seed) in
      let sinks =
        List.init n (fun i ->
            Sink.make ~id:i
              ~loc:(pt (Workload.Rng.float_range rng 0. 30000.)
                      (Workload.Rng.float_range rng 0. 30000.))
              ~cap:(Workload.Rng.float_range rng 5. 100.)
              ~group:(Workload.Rng.int rng n_groups))
      in
      let n_groups =
        1 + List.fold_left (fun m (s : Sink.t) -> Int.max m s.group) 0 sinks
      in
      let group_bounds =
        if per_group then
          Some (Array.init n_groups (fun _ -> Workload.Rng.float_range rng 0. 30.))
        else None
      in
      let inst =
        Instance.make ~bound ?group_bounds ~source:(pt 0. 0.) ~n_groups
          (Array.of_list sinks)
      in
      let routed, _ = Dme.Engine.run inst in
      let routed, rstats = Repair.run inst routed in
      let report = Evaluate.run inst routed in
      rstats.unresolved_groups = 0 && Evaluate.within_bound inst report)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dme"
    [
      ( "subtree",
        [
          Alcotest.test_case "leaf" `Quick test_subtree_leaf;
          Alcotest.test_case "shared groups" `Quick test_subtree_shared_groups;
        ] );
      ( "merge",
        [
          Alcotest.test_case "same group zero skew" `Quick
            test_merge_same_group_zero_skew;
          Alcotest.test_case "same group snaking" `Quick
            test_merge_same_group_snaking;
          Alcotest.test_case "cross group" `Quick test_merge_cross_group;
          Alcotest.test_case "cross group intervals" `Quick
            test_merge_cross_group_interval_soundness;
          Alcotest.test_case "shared one" `Quick test_merge_shared_one;
          Alcotest.test_case "shared multi" `Quick test_merge_shared_multi;
        ] );
      ( "order",
        [
          Alcotest.test_case "reduces to one" `Quick test_order_reduces_to_one;
          Alcotest.test_case "two-sink endgame" `Quick test_order_two_sink_endgame;
          Alcotest.test_case "three-sink endgame" `Quick
            test_order_three_sink_endgame;
          Alcotest.test_case "knn=0 clamped" `Quick test_order_knn_zero_clamped;
          Alcotest.test_case "dedupe pairs" `Quick test_dedupe_pairs;
          Alcotest.test_case "dedupe pairs large (stack safety)" `Quick
            test_dedupe_pairs_large;
        ] );
      ( "embed",
        [
          Alcotest.test_case "valid tree" `Quick test_embed_valid_tree;
          Alcotest.test_case "deep comb stack safety" `Quick
            test_embed_deep_comb_stack_safety;
          Alcotest.test_case "banked identity" `Slow test_embed_identity_banked;
        ]
        @ qsuite [ prop_embed_arena_identity ] );
      ( "engine",
        [
          Alcotest.test_case "zero skew" `Quick test_engine_zero_skew;
          Alcotest.test_case "stats add up" `Quick test_engine_stats_add_up;
          Alcotest.test_case "trial cache bit-identical" `Slow
            test_trial_cache_bit_identical;
          Alcotest.test_case "incremental ranking bit-identical" `Slow
            test_incremental_bit_identical;
          Alcotest.test_case "parallel ranking bit-identical" `Slow
            test_parallel_bit_identical;
        ]
        @ qsuite [ prop_engine_respects_bound ] );
    ]
