(* Tests for the lib/obs instrumentation library: counters, timers,
   histograms, the trace context, the JSON emitter and the report
   snapshot. *)

(* Must run before anything registers a counter or timer: the
   registries are global to the process, so this is the only moment the
   empty-registry rendering is observable. *)
let test_report_empty () =
  Alcotest.(check string) "empty registries" {|{"counters":{},"timers":{}}|}
    (Obs.Json.to_string (Obs.Report.snapshot ()))

let test_counter_basics () =
  let c = Obs.Counter.make "test.counter.basics" in
  Alcotest.(check string) "name" "test.counter.basics" (Obs.Counter.name c);
  Alcotest.(check int) "starts at 0" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  Alcotest.(check int) "incr + add" 7 (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c)

let test_counter_registry () =
  let c = Obs.Counter.make "test.counter.registry" in
  Obs.Counter.add c 3;
  (match Obs.Counter.find "test.counter.registry" with
   | None -> Alcotest.fail "counter not registered"
   | Some c' -> Alcotest.(check int) "find sees same cell" 3 (Obs.Counter.value c'));
  Alcotest.(check bool) "registry lists it" true
    (List.exists
       (fun c' -> Obs.Counter.name c' = "test.counter.registry")
       (Obs.Counter.all ()));
  Alcotest.(check bool) "unknown name" true
    (Obs.Counter.find "test.counter.no_such" = None)

let test_timer_accumulates () =
  let t = Obs.Timer.make "test.timer.accumulates" in
  Alcotest.(check int) "no calls yet" 0 (Obs.Timer.calls t);
  let r = Obs.Timer.time t (fun () -> 42) in
  Alcotest.(check int) "result passed through" 42 r;
  Alcotest.(check int) "one call" 1 (Obs.Timer.calls t);
  Alcotest.(check bool) "wall non-negative" true (Obs.Timer.wall_seconds t >= 0.);
  Obs.Timer.record t ~wall:0.5 ~cpu:0.25;
  Alcotest.(check int) "manual sample counts" 2 (Obs.Timer.calls t);
  Alcotest.(check bool) "wall includes sample" true (Obs.Timer.wall_seconds t >= 0.5);
  Alcotest.(check bool) "cpu includes sample" true (Obs.Timer.cpu_seconds t >= 0.25);
  Obs.Timer.reset t;
  Alcotest.(check int) "reset calls" 0 (Obs.Timer.calls t);
  Alcotest.(check (float 0.)) "reset wall" 0. (Obs.Timer.wall_seconds t)

let test_timer_times_on_exception () =
  let t = Obs.Timer.make "test.timer.exn" in
  (try Obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "sample recorded despite exception" 1 (Obs.Timer.calls t)

(* Unix.gettimeofday is not monotonic: a clock step during a timed
   section can produce a negative sample.  record must clamp it to zero
   so accumulated totals never decrease. *)
let test_timer_negative_clamp () =
  let t = Obs.Timer.make "test.timer.clamp" in
  Obs.Timer.record t ~wall:(-1.) ~cpu:(-0.5);
  Alcotest.(check int) "negative sample still counted" 1 (Obs.Timer.calls t);
  Alcotest.(check (float 0.)) "wall clamped to zero" 0.
    (Obs.Timer.wall_seconds t);
  Alcotest.(check (float 0.)) "cpu clamped to zero" 0.
    (Obs.Timer.cpu_seconds t);
  Obs.Timer.record t ~wall:0.25 ~cpu:0.125;
  Obs.Timer.record t ~wall:(-5.) ~cpu:(-5.);
  Alcotest.(check (float 0.)) "wall total never decreases" 0.25
    (Obs.Timer.wall_seconds t);
  Alcotest.(check (float 0.)) "cpu total never decreases" 0.125
    (Obs.Timer.cpu_seconds t)

(* Every code point U+0000..U+001F must survive emit -> parse: the
   emitter escapes the ones without a short form as \uXXXX and the
   parser must map them back byte-for-byte. *)
let test_json_control_chars () =
  let open Obs.Json in
  for code = 0 to 0x1f do
    let v = String (Printf.sprintf "a%cb" (Char.chr code)) in
    let s = to_string v in
    Alcotest.(check bool)
      (Printf.sprintf "U+%04X roundtrips via %s" code s)
      true
      (of_string s = v)
  done;
  Alcotest.(check string) "U+0001 escapes as \\u0001" {|"\u0001"|}
    (to_string (String "\001"));
  Alcotest.(check string) "U+001F escapes as \\u001f" {|"\u001f"|}
    (to_string (String "\031"))

(* The \u parser must take exactly four hex digits; underscores, signs
   and truncated escapes are malformed input, not zero digits. *)
let test_json_unicode_escape_audit () =
  let open Obs.Json in
  Alcotest.(check bool) "\\u0041 parses" true
    (of_string {|"\u0041"|} = String "A");
  Alcotest.(check bool) "\\u000A is newline" true
    (of_string {|"\u000A"|} = String "\n");
  Alcotest.(check bool) "mixed-case hex accepted" true
    (of_string {|"\u001F"|} = String "\031"
    && of_string {|"\u001f"|} = String "\031");
  Alcotest.(check bool) "non-latin1 degrades to ?" true
    (of_string {|"\u2603"|} = String "?");
  let fails s =
    match of_string s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (fails s))
    [
      {|"\u00_1"|};
      {|"\u00+1"|};
      {|"\u-041"|};
      {|"\u12g4"|};
      {|"\u123"|};
      {|"\u12|};
      {|"\u"|};
    ]

let test_json_to_string () =
  let open Obs.Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "-3" (to_string (Int (-3)));
  Alcotest.(check string) "float" "1.5" (to_string (Float 1.5));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (to_string (Float Float.infinity));
  Alcotest.(check string) "string escaping" {|"a\"b\\c\n"|}
    (to_string (String "a\"b\\c\n"));
  Alcotest.(check string) "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
  Alcotest.(check string) "obj" {|{"a":1,"b":[]}|}
    (to_string (Obj [ ("a", Int 1); ("b", List []) ]))

let test_json_write_file () =
  let path = Filename.temp_file "obs_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Json.write_file path (Obs.Json.Obj [ ("x", Obs.Json.Int 1) ]);
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "file contents" {|{"x":1}|} line)

let test_json_parse_roundtrip () =
  let open Obs.Json in
  let cases =
    [
      Null;
      Bool true;
      Bool false;
      Int 0;
      Int (-42);
      Float 1.5;
      Float (-0.25);
      String "";
      String "a\"b\\c\nd\tе";
      List [];
      List [ Int 1; List [ Bool false ]; Null ];
      Obj [];
      Obj [ ("a", Int 1); ("b", List [ Float 2.5 ]); ("c", Obj [ ("d", Null) ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = to_string v in
      Alcotest.(check bool) (s ^ " roundtrips") true (of_string s = v))
    cases;
  (* The emitter's lossy cases parse back as documented. *)
  Alcotest.(check bool) "nan -> null" true
    (of_string (to_string (Float Float.nan)) = Null);
  (* Whitespace, exponents and unicode escapes. *)
  Alcotest.(check bool) "whitespace" true
    (of_string " { \"a\" : [ 1 , 2 ] } " = Obj [ ("a", List [ Int 1; Int 2 ]) ]);
  Alcotest.(check bool) "exponent is float" true
    (of_string "1e3" = Float 1000.);
  Alcotest.(check bool) "unicode escape" true (of_string {|"A"|} = String "A")

let test_json_parse_errors () =
  let open Obs.Json in
  let fails s =
    match of_string s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (fails s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "+5" ];
  Alcotest.(check bool) "of_string_opt on junk" true (of_string_opt "{" = None);
  Alcotest.(check bool) "of_string_opt on good input" true
    (of_string_opt "[]" = Some (List []))

let test_json_read_file () =
  let path = Filename.temp_file "obs_json_read" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let v = Obs.Json.Obj [ ("xs", Obs.Json.List [ Obs.Json.Int 7 ]) ] in
      Obs.Json.write_file path v;
      Alcotest.(check bool) "write/read roundtrip" true
        (Obs.Json.read_file path = v))

let test_report_snapshot () =
  let c = Obs.Counter.make "test.report.counter" in
  let t = Obs.Timer.make "test.report.timer" in
  Obs.Counter.add c 11;
  Obs.Timer.record t ~wall:0.1 ~cpu:0.05;
  Alcotest.(check int) "Report.counter reads value" 11
    (Obs.Report.counter "test.report.counter");
  Alcotest.(check int) "Report.counter on unknown is 0" 0
    (Obs.Report.counter "test.report.no_such");
  let s = Obs.Json.to_string (Obs.Report.snapshot ()) in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "snapshot has counter" true
    (contains {|"test.report.counter":11|});
  Alcotest.(check bool) "snapshot has timer" true (contains {|"test.report.timer"|});
  (* Report.reset zeroes registered counters and timers. *)
  Obs.Report.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.Report.counter "test.report.counter");
  Alcotest.(check int) "timer zeroed" 0 (Obs.Timer.calls t)

let test_report_ordering () =
  let _c1 = Obs.Counter.make "test.report.order_z" in
  let _c2 = Obs.Counter.make "test.report.order_a" in
  let s = Obs.Json.to_string (Obs.Report.snapshot ()) in
  let index_of sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  (match (index_of {|"test.report.order_z"|}, index_of {|"test.report.order_a"|}) with
   | Some iz, Some ia ->
     Alcotest.(check bool) "registration order, not name order" true (iz < ia)
   | _ -> Alcotest.fail "snapshot missing a registered counter");
  (* Two consecutive snapshots render identically: ordering is stable. *)
  Alcotest.(check string) "stable across snapshots" s
    (Obs.Json.to_string (Obs.Report.snapshot ()))

let test_histogram_buckets () =
  let h = Obs.Histogram.create ~per_decade:1 "test.hist.buckets" in
  Alcotest.(check string) "name" "test.hist.buckets" (Obs.Histogram.name h);
  Alcotest.(check int) "starts empty" 0 (Obs.Histogram.count h);
  List.iter (Obs.Histogram.observe h) [ 0.5; 5.; 50.; 55. ];
  Alcotest.(check int) "four samples" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 110.5 (Obs.Histogram.sum h);
  (match Obs.Histogram.buckets h with
   | [ (lo0, hi0, n0); (lo1, hi1, n1); (lo2, hi2, n2) ] ->
     Alcotest.(check (float 1e-9)) "bucket 0 lo" 0.1 lo0;
     Alcotest.(check (float 1e-9)) "bucket 0 hi" 1. hi0;
     Alcotest.(check int) "bucket 0 count" 1 n0;
     Alcotest.(check (float 1e-9)) "bucket 1 lo" 1. lo1;
     Alcotest.(check (float 1e-9)) "bucket 1 hi" 10. hi1;
     Alcotest.(check int) "bucket 1 count" 1 n1;
     Alcotest.(check (float 1e-9)) "bucket 2 lo" 10. lo2;
     Alcotest.(check (float 1e-9)) "bucket 2 hi" 100. hi2;
     Alcotest.(check int) "bucket 2 count" 2 n2
   | bs ->
     Alcotest.fail
       (Printf.sprintf "expected 3 ascending buckets, got %d" (List.length bs)));
  (* Non-positive values underflow, +inf overflows, NaN is ignored. *)
  Obs.Histogram.observe h 0.;
  Obs.Histogram.observe h (-3.);
  Obs.Histogram.observe h Float.infinity;
  Obs.Histogram.observe h Float.nan;
  Alcotest.(check int) "underflow" 2 (Obs.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Obs.Histogram.overflow h);
  Alcotest.(check int) "count includes under/overflow, not NaN" 7
    (Obs.Histogram.count h);
  Alcotest.(check int) "buckets unchanged by outliers" 3
    (List.length (Obs.Histogram.buckets h))

let test_histogram_json () =
  let h = Obs.Histogram.create "test.hist.json" in
  (match Obs.Histogram.to_json h with
   | Obs.Json.Obj fields ->
     Alcotest.(check bool) "empty min is null" true
       (List.assoc "min" fields = Obs.Json.Null);
     Alcotest.(check bool) "empty max is null" true
       (List.assoc "max" fields = Obs.Json.Null)
   | _ -> Alcotest.fail "to_json should produce an object");
  Obs.Histogram.observe h 2.;
  Obs.Histogram.observe h 30.;
  let v = Obs.Histogram.to_json h in
  (* The export re-parses; integral floats come back as Int (documented
     emitter lossiness), so compare numerically rather than by shape. *)
  let number = function
    | Obs.Json.Int i -> float_of_int i
    | Obs.Json.Float f -> f
    | _ -> Float.nan
  in
  (match Obs.Json.of_string (Obs.Json.to_string v) with
   | Obs.Json.Obj fields ->
     Alcotest.(check (float 0.)) "count survives" 2.
       (number (List.assoc "count" fields));
     Alcotest.(check (float 1e-9)) "min survives" 2.
       (number (List.assoc "min" fields));
     Alcotest.(check (float 1e-9)) "max survives" 30.
       (number (List.assoc "max" fields))
   | _ -> Alcotest.fail "export should re-parse as an object");
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset clears count" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "reset clears buckets" 0
    (List.length (Obs.Histogram.buckets h));
  (* per_decade is clamped to at least 1. *)
  let h1 = Obs.Histogram.create ~per_decade:0 "test.hist.clamp" in
  Obs.Histogram.observe h1 5.;
  (match Obs.Histogram.buckets h1 with
   | [ (lo, hi, 1) ] ->
     Alcotest.(check (float 1e-9)) "clamped lo" 1. lo;
     Alcotest.(check (float 1e-9)) "clamped hi" 10. hi
   | _ -> Alcotest.fail "per_decade:0 should behave as 1")

let test_histogram_merge_into () =
  let a = Obs.Histogram.create ~per_decade:1 "test.hist.merge_a" in
  let b = Obs.Histogram.create ~per_decade:1 "test.hist.merge_b" in
  List.iter (Obs.Histogram.observe a) [ 0.5; 5. ];
  List.iter (Obs.Histogram.observe b) [ 50.; 0.; 700. ];
  Obs.Histogram.merge_into b ~into:a;
  Alcotest.(check int) "count folds" 5 (Obs.Histogram.count a);
  Alcotest.(check int) "underflow folds" 1 (Obs.Histogram.underflow a);
  Alcotest.(check (float 1e-9)) "sum folds" 755.5 (Obs.Histogram.sum a);
  (match Obs.Histogram.buckets a with
   | [ (_, _, 1); (_, _, 1); (_, _, 1); (_, _, 1) ] -> ()
   | bs ->
     Alcotest.fail
       (Printf.sprintf "expected 4 buckets of one, got %d" (List.length bs)));
  Alcotest.(check int) "src untouched" 3 (Obs.Histogram.count b);
  (* Merging an empty histogram is a no-op. *)
  let empty = Obs.Histogram.create ~per_decade:1 "test.hist.merge_empty" in
  Obs.Histogram.merge_into empty ~into:a;
  Alcotest.(check int) "empty merge is a no-op" 5 (Obs.Histogram.count a);
  (* Self-merge and resolution mismatch are programmer errors. *)
  (match Obs.Histogram.merge_into a ~into:a with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "self-merge must raise");
  let c = Obs.Histogram.create ~per_decade:2 "test.hist.merge_c" in
  (match Obs.Histogram.merge_into c ~into:a with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "per_decade mismatch must raise")

(* Steady-state [observe] and [merge_into] must not allocate: the
   progress heartbeat merges scratch histograms every tick and the
   scheduler ledger observes one chunk latency per chunk on the
   parallel hot path.  Growth allocates a few times early (range
   misses); after that the per-call budget is zero minor words. *)
let test_histogram_merge_no_alloc () =
  let src = Obs.Histogram.create ~per_decade:4 "test.hist.alloc_src" in
  let dst = Obs.Histogram.create ~per_decade:4 "test.hist.alloc_dst" in
  List.iter (Obs.Histogram.observe src) [ 0.001; 1.; 1000. ];
  List.iter (Obs.Histogram.observe dst) [ 0.01; 10. ];
  Obs.Histogram.merge_into src ~into:dst;
  let rounds = 10_000 in
  let per_round_of f =
    let before = Gc.minor_words () in
    for _ = 1 to rounds do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int rounds
  in
  (* Gc.minor_words itself boxes its float result — amortize the two
     samples over the loop and allow that as the only slack. *)
  let merge = per_round_of (fun () -> Obs.Histogram.merge_into src ~into:dst) in
  Alcotest.(check bool)
    (Printf.sprintf "merge_into allocates %.4f words/call" merge)
    true (merge < 0.01);
  let obs = per_round_of (fun () -> Obs.Histogram.observe dst 5.) in
  Alcotest.(check bool)
    (Printf.sprintf "observe allocates %.4f words/call" obs)
    true (obs < 0.01);
  let rst = per_round_of (fun () -> Obs.Histogram.reset src) in
  Alcotest.(check bool)
    (Printf.sprintf "reset allocates %.4f words/call" rst)
    true (rst < 0.01)

let test_histogram_quantile () =
  let h = Obs.Histogram.create "test.hist.quantile" in
  Alcotest.(check bool) "empty has no quantiles" true
    (Obs.Histogram.quantile h 0.5 = None);
  Obs.Histogram.observe h 7.;
  (* Bucket bounds clamp into [min, max], so a single-valued histogram
     answers exactly at every q. *)
  (match Obs.Histogram.quantile h 0.5 with
   | Some v -> Alcotest.(check (float 1e-9)) "single-value p50" 7. v
   | None -> Alcotest.fail "p50 of one sample");
  (match Obs.Histogram.quantile h 0.0 with
   | Some v -> Alcotest.(check (float 1e-9)) "single-value p0" 7. v
   | None -> Alcotest.fail "p0 of one sample");
  let h2 = Obs.Histogram.create "test.hist.quantile2" in
  for i = 1 to 100 do
    Obs.Histogram.observe h2 (float_of_int i)
  done;
  (match Obs.Histogram.quantile h2 0.5 with
   | Some v ->
     Alcotest.(check bool)
       (Printf.sprintf "p50 %.3f within a bucket of the median" v)
       true
       (v >= 40. && v <= 70.)
   | None -> Alcotest.fail "p50");
  (match Obs.Histogram.quantile h2 0.99 with
   | Some v ->
     Alcotest.(check bool)
       (Printf.sprintf "p99 %.3f near the top" v)
       true
       (v >= 90. && v <= 100.)
   | None -> Alcotest.fail "p99");
  (match Obs.Histogram.quantile h2 1.0 with
   | Some v -> Alcotest.(check bool) "p100 <= max" true (v <= 100.)
   | None -> Alcotest.fail "p100");
  (* Underflow-dominated quantiles answer the observed minimum. *)
  let h3 = Obs.Histogram.create "test.hist.quantile3" in
  List.iter (Obs.Histogram.observe h3) [ 0.; 0.; 5. ];
  (match Obs.Histogram.quantile h3 0.5 with
   | Some v -> Alcotest.(check (float 1e-9)) "underflow p50 is min" 0. v
   | None -> Alcotest.fail "underflow p50")

let test_trace_null () =
  let t = Obs.Trace.null in
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled t);
  Obs.Trace.instant t "nothing";
  Obs.Trace.instant t ~cat:"c" ~args:[ ("k", Obs.Json.Int 1) ] "nothing";
  let r = Obs.Trace.span t "nothing" (fun () -> 7) in
  Alcotest.(check int) "span passes result through" 7 r;
  Obs.Trace.journal t (Obs.Json.Obj [ ("x", Obs.Json.Int 1) ]);
  Obs.Trace.merge_manifest t [ ("k", Obs.Json.Int 1) ];
  ignore (Obs.Trace.histogram t "test.trace.null_hist");
  Alcotest.(check int) "no events buffered" 0
    (List.length (Obs.Trace.events t));
  Alcotest.(check int) "no journal records" 0
    (List.length (Obs.Trace.journal_records t));
  Alcotest.(check bool) "manifest stays empty" true
    (Obs.Trace.manifest t = Obs.Json.Obj []);
  Alcotest.(check int) "no histograms" 0
    (List.length (Obs.Trace.histograms t))

let test_trace_span_order () =
  let t = Obs.Trace.create () in
  Alcotest.(check bool) "enabled" true (Obs.Trace.enabled t);
  let result =
    Obs.Trace.span t ~cat:"test" "outer" (fun () ->
        Obs.Trace.instant t "first";
        Obs.Trace.span t "inner" (fun () -> Obs.Trace.instant t "second");
        42)
  in
  Alcotest.(check int) "result passed through" 42 result;
  let evs = Obs.Trace.events t in
  Alcotest.(check (list string)) "parents order before children"
    [ "outer"; "first"; "inner"; "second" ]
    (List.map (fun (e : Obs.Trace.event) -> e.name) evs);
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "seq strictly increasing" true
    (strictly_increasing (List.map (fun (e : Obs.Trace.event) -> e.seq) evs));
  List.iter
    (fun (e : Obs.Trace.event) ->
      Alcotest.(check bool) (e.name ^ " ts non-negative") true (e.ts >= 0.))
    evs;
  (match evs with
   | { phase = Obs.Trace.Complete dur; cat = "test"; _ } :: _ ->
     Alcotest.(check bool) "span duration non-negative" true (dur >= 0.)
   | _ -> Alcotest.fail "outer event should be a Complete span with its cat")

let test_trace_span_exception () =
  let t = Obs.Trace.create () in
  (try Obs.Trace.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  (match Obs.Trace.events t with
   | [ { name = "boom"; phase = Obs.Trace.Complete _; _ } ] -> ()
   | _ -> Alcotest.fail "span must emit its event even when the body raises")

let test_trace_manifest_journal () =
  let t = Obs.Trace.create () in
  Obs.Trace.merge_manifest t [ ("a", Obs.Json.Int 1); ("b", Obs.Json.Bool false) ];
  Obs.Trace.merge_manifest t [ ("a", Obs.Json.Int 2) ];
  Alcotest.(check bool) "later merge replaces, first-set order kept" true
    (Obs.Trace.manifest t
     = Obs.Json.Obj [ ("a", Obs.Json.Int 2); ("b", Obs.Json.Bool false) ]);
  Obs.Trace.journal t (Obs.Json.Obj [ ("round", Obs.Json.Int 0) ]);
  Obs.Trace.journal t (Obs.Json.Obj [ ("round", Obs.Json.Int 1) ]);
  Alcotest.(check bool) "journal keeps emission order" true
    (Obs.Trace.journal_records t
     = [
         Obs.Json.Obj [ ("round", Obs.Json.Int 0) ];
         Obs.Json.Obj [ ("round", Obs.Json.Int 1) ];
       ]);
  (* Repeated histogram names return the same cell. *)
  let h1 = Obs.Trace.histogram t "test.trace.hist" in
  let h2 = Obs.Trace.histogram t "test.trace.hist" in
  Obs.Histogram.observe h1 3.;
  Alcotest.(check int) "same histogram cell" 1 (Obs.Histogram.count h2);
  Alcotest.(check int) "one histogram registered" 1
    (List.length (Obs.Trace.histograms t))

let test_trace_custom_sink () =
  let seen = ref [] in
  let t =
    Obs.Trace.create
      ~sink:(fun (e : Obs.Trace.event) -> seen := e.name :: !seen)
      ()
  in
  Obs.Trace.instant t "a";
  Obs.Trace.span t "b" (fun () -> ());
  Alcotest.(check (list string)) "sink saw every event" [ "a"; "b" ]
    (List.rev !seen);
  Alcotest.(check int) "sinked events are not buffered" 0
    (List.length (Obs.Trace.events t))

let test_trace_multi_domain () =
  let t = Obs.Trace.create () in
  let per_domain = 10 in
  let workers =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            for j = 0 to per_domain - 1 do
              Obs.Trace.instant t
                ~args:[ ("d", Obs.Json.Int i); ("j", Obs.Json.Int j) ]
                "tick"
            done))
  in
  Array.iter Domain.join workers;
  Obs.Trace.instant t "main";
  let evs = Obs.Trace.events t in
  Alcotest.(check int) "every domain's events merged" 31 (List.length evs);
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "merged order is total (seq)" true
    (strictly_increasing (List.map (fun (e : Obs.Trace.event) -> e.seq) evs))

let test_trace_chrome_export () =
  let t = Obs.Trace.create () in
  Obs.Trace.merge_manifest t [ ("circuit", Obs.Json.String "r1") ];
  Obs.Trace.span t ~cat:"c" "s" (fun () -> Obs.Trace.instant t "i");
  Obs.Histogram.observe (Obs.Trace.histogram t "test.trace.chrome_hist") 3.;
  let v = Obs.Json.of_string (Obs.Json.to_string (Obs.Trace.to_chrome t)) in
  let fields =
    match v with
    | Obs.Json.Obj fields -> fields
    | _ -> Alcotest.fail "chrome export should be an object"
  in
  let evs =
    match List.assoc "traceEvents" fields with
    | Obs.Json.List evs -> evs
    | _ -> Alcotest.fail "traceEvents should be a list"
  in
  Alcotest.(check int) "two events exported" 2 (List.length evs);
  let field ev k =
    match ev with
    | Obs.Json.Obj f -> List.assoc_opt k f
    | _ -> None
  in
  let ts_of ev =
    match field ev "ts" with
    | Some (Obs.Json.Float x) -> x
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> Alcotest.fail "event missing ts"
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone non-decreasing" true
    (monotone (List.map ts_of evs));
  (match evs with
   | [ span; inst ] ->
     Alcotest.(check bool) "span is ph X" true
       (field span "ph" = Some (Obs.Json.String "X"));
     Alcotest.(check bool) "span has dur" true (field span "dur" <> None);
     Alcotest.(check bool) "span keeps its cat" true
       (field span "cat" = Some (Obs.Json.String "c"));
     Alcotest.(check bool) "instant is ph i" true
       (field inst "ph" = Some (Obs.Json.String "i"));
     Alcotest.(check bool) "instant scope t" true
       (field inst "s" = Some (Obs.Json.String "t"))
   | _ -> Alcotest.fail "expected exactly two events");
  (match List.assoc_opt "otherData" fields with
   | Some (Obs.Json.Obj m) ->
     Alcotest.(check bool) "manifest exported" true
       (List.assoc_opt "circuit" m = Some (Obs.Json.String "r1"))
   | _ -> Alcotest.fail "otherData should carry the manifest");
  match List.assoc_opt "histograms" fields with
  | Some (Obs.Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "histograms should be exported"

let test_trace_journal_write () =
  let t = Obs.Trace.create () in
  Obs.Trace.merge_manifest t [ ("a", Obs.Json.Int 1) ];
  Obs.Trace.merge_manifest t [ ("a", Obs.Json.Int 2); ("b", Obs.Json.Bool true) ];
  Obs.Trace.journal t
    (Obs.Json.Obj [ ("type", Obs.Json.String "round"); ("round", Obs.Json.Int 0) ]);
  Obs.Trace.journal t
    (Obs.Json.Obj [ ("type", Obs.Json.String "round"); ("round", Obs.Json.Int 1) ]);
  Obs.Histogram.observe (Obs.Trace.histogram t "test.trace.journal_hist") 4.;
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.write_journal path t;
      let ic = open_in path in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = read [] in
      close_in ic;
      Alcotest.(check int) "manifest + 2 rounds + histograms" 4
        (List.length lines);
      let parsed = List.map Obs.Json.of_string lines in
      let type_of = function
        | Obs.Json.Obj fields -> List.assoc_opt "type" fields
        | _ -> None
      in
      Alcotest.(check bool) "line 1 is the manifest" true
        (type_of (List.nth parsed 0) = Some (Obs.Json.String "manifest"));
      (match List.nth parsed 0 with
       | Obs.Json.Obj fields ->
         Alcotest.(check bool) "manifest keeps replaced value" true
           (List.assoc_opt "a" fields = Some (Obs.Json.Int 2));
         Alcotest.(check bool) "manifest keeps merged key" true
           (List.assoc_opt "b" fields = Some (Obs.Json.Bool true))
       | _ -> Alcotest.fail "manifest line should be an object");
      Alcotest.(check bool) "round records in order" true
        (type_of (List.nth parsed 1) = Some (Obs.Json.String "round")
        && type_of (List.nth parsed 2) = Some (Obs.Json.String "round"));
      Alcotest.(check bool) "final line carries histograms" true
        (type_of (List.nth parsed 3) = Some (Obs.Json.String "histograms")))

let () =
  Alcotest.run "obs"
    [
      (* Must stay first: Alcotest runs suites in declared order and the
         empty-registry rendering is only observable before any other
         test registers a counter or timer. *)
      ( "report-empty",
        [ Alcotest.test_case "empty registries" `Quick test_report_empty ] );
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "registry" `Quick test_counter_registry;
        ] );
      ( "timer",
        [
          Alcotest.test_case "accumulates" `Quick test_timer_accumulates;
          Alcotest.test_case "times on exception" `Quick
            test_timer_times_on_exception;
          Alcotest.test_case "negative samples clamp" `Quick
            test_timer_negative_clamp;
        ] );
      ( "json",
        [
          Alcotest.test_case "to_string" `Quick test_json_to_string;
          Alcotest.test_case "control chars" `Quick test_json_control_chars;
          Alcotest.test_case "unicode escapes" `Quick
            test_json_unicode_escape_audit;
          Alcotest.test_case "write_file" `Quick test_json_write_file;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "read_file" `Quick test_json_read_file;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "log buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "json export" `Quick test_histogram_json;
          Alcotest.test_case "merge_into folds in place" `Quick
            test_histogram_merge_into;
          Alcotest.test_case "steady state allocates nothing" `Quick
            test_histogram_merge_no_alloc;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantile;
        ] );
      ( "trace",
        [
          Alcotest.test_case "null trace is inert" `Quick test_trace_null;
          Alcotest.test_case "span ordering" `Quick test_trace_span_order;
          Alcotest.test_case "span on exception" `Quick
            test_trace_span_exception;
          Alcotest.test_case "manifest and journal" `Quick
            test_trace_manifest_journal;
          Alcotest.test_case "custom sink" `Quick test_trace_custom_sink;
          Alcotest.test_case "multi-domain merge" `Quick
            test_trace_multi_domain;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
          Alcotest.test_case "journal write" `Quick test_trace_journal_write;
        ] );
      ( "report",
        [
          Alcotest.test_case "snapshot" `Quick test_report_snapshot;
          Alcotest.test_case "stable ordering" `Quick test_report_ordering;
        ] );
    ]
