(* Tests for the lib/obs instrumentation library: counters, timers, the
   JSON emitter and the report snapshot. *)

let test_counter_basics () =
  let c = Obs.Counter.make "test.counter.basics" in
  Alcotest.(check string) "name" "test.counter.basics" (Obs.Counter.name c);
  Alcotest.(check int) "starts at 0" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  Alcotest.(check int) "incr + add" 7 (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c)

let test_counter_registry () =
  let c = Obs.Counter.make "test.counter.registry" in
  Obs.Counter.add c 3;
  (match Obs.Counter.find "test.counter.registry" with
   | None -> Alcotest.fail "counter not registered"
   | Some c' -> Alcotest.(check int) "find sees same cell" 3 (Obs.Counter.value c'));
  Alcotest.(check bool) "registry lists it" true
    (List.exists
       (fun c' -> Obs.Counter.name c' = "test.counter.registry")
       (Obs.Counter.all ()));
  Alcotest.(check bool) "unknown name" true
    (Obs.Counter.find "test.counter.no_such" = None)

let test_timer_accumulates () =
  let t = Obs.Timer.make "test.timer.accumulates" in
  Alcotest.(check int) "no calls yet" 0 (Obs.Timer.calls t);
  let r = Obs.Timer.time t (fun () -> 42) in
  Alcotest.(check int) "result passed through" 42 r;
  Alcotest.(check int) "one call" 1 (Obs.Timer.calls t);
  Alcotest.(check bool) "wall non-negative" true (Obs.Timer.wall_seconds t >= 0.);
  Obs.Timer.record t ~wall:0.5 ~cpu:0.25;
  Alcotest.(check int) "manual sample counts" 2 (Obs.Timer.calls t);
  Alcotest.(check bool) "wall includes sample" true (Obs.Timer.wall_seconds t >= 0.5);
  Alcotest.(check bool) "cpu includes sample" true (Obs.Timer.cpu_seconds t >= 0.25);
  Obs.Timer.reset t;
  Alcotest.(check int) "reset calls" 0 (Obs.Timer.calls t);
  Alcotest.(check (float 0.)) "reset wall" 0. (Obs.Timer.wall_seconds t)

let test_timer_times_on_exception () =
  let t = Obs.Timer.make "test.timer.exn" in
  (try Obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "sample recorded despite exception" 1 (Obs.Timer.calls t)

let test_json_to_string () =
  let open Obs.Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "-3" (to_string (Int (-3)));
  Alcotest.(check string) "float" "1.5" (to_string (Float 1.5));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (to_string (Float Float.infinity));
  Alcotest.(check string) "string escaping" {|"a\"b\\c\n"|}
    (to_string (String "a\"b\\c\n"));
  Alcotest.(check string) "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
  Alcotest.(check string) "obj" {|{"a":1,"b":[]}|}
    (to_string (Obj [ ("a", Int 1); ("b", List []) ]))

let test_json_write_file () =
  let path = Filename.temp_file "obs_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Json.write_file path (Obs.Json.Obj [ ("x", Obs.Json.Int 1) ]);
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "file contents" {|{"x":1}|} line)

let test_json_parse_roundtrip () =
  let open Obs.Json in
  let cases =
    [
      Null;
      Bool true;
      Bool false;
      Int 0;
      Int (-42);
      Float 1.5;
      Float (-0.25);
      String "";
      String "a\"b\\c\nd\tе";
      List [];
      List [ Int 1; List [ Bool false ]; Null ];
      Obj [];
      Obj [ ("a", Int 1); ("b", List [ Float 2.5 ]); ("c", Obj [ ("d", Null) ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = to_string v in
      Alcotest.(check bool) (s ^ " roundtrips") true (of_string s = v))
    cases;
  (* The emitter's lossy cases parse back as documented. *)
  Alcotest.(check bool) "nan -> null" true
    (of_string (to_string (Float Float.nan)) = Null);
  (* Whitespace, exponents and unicode escapes. *)
  Alcotest.(check bool) "whitespace" true
    (of_string " { \"a\" : [ 1 , 2 ] } " = Obj [ ("a", List [ Int 1; Int 2 ]) ]);
  Alcotest.(check bool) "exponent is float" true
    (of_string "1e3" = Float 1000.);
  Alcotest.(check bool) "unicode escape" true (of_string {|"A"|} = String "A")

let test_json_parse_errors () =
  let open Obs.Json in
  let fails s =
    match of_string s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (fails s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "+5" ];
  Alcotest.(check bool) "of_string_opt on junk" true (of_string_opt "{" = None);
  Alcotest.(check bool) "of_string_opt on good input" true
    (of_string_opt "[]" = Some (List []))

let test_json_read_file () =
  let path = Filename.temp_file "obs_json_read" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let v = Obs.Json.Obj [ ("xs", Obs.Json.List [ Obs.Json.Int 7 ]) ] in
      Obs.Json.write_file path v;
      Alcotest.(check bool) "write/read roundtrip" true
        (Obs.Json.read_file path = v))

let test_report_snapshot () =
  let c = Obs.Counter.make "test.report.counter" in
  let t = Obs.Timer.make "test.report.timer" in
  Obs.Counter.add c 11;
  Obs.Timer.record t ~wall:0.1 ~cpu:0.05;
  Alcotest.(check int) "Report.counter reads value" 11
    (Obs.Report.counter "test.report.counter");
  Alcotest.(check int) "Report.counter on unknown is 0" 0
    (Obs.Report.counter "test.report.no_such");
  let s = Obs.Json.to_string (Obs.Report.snapshot ()) in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "snapshot has counter" true
    (contains {|"test.report.counter":11|});
  Alcotest.(check bool) "snapshot has timer" true (contains {|"test.report.timer"|});
  (* Report.reset zeroes registered counters and timers. *)
  Obs.Report.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.Report.counter "test.report.counter");
  Alcotest.(check int) "timer zeroed" 0 (Obs.Timer.calls t)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "registry" `Quick test_counter_registry;
        ] );
      ( "timer",
        [
          Alcotest.test_case "accumulates" `Quick test_timer_accumulates;
          Alcotest.test_case "times on exception" `Quick
            test_timer_times_on_exception;
        ] );
      ( "json",
        [
          Alcotest.test_case "to_string" `Quick test_json_to_string;
          Alcotest.test_case "write_file" `Quick test_json_write_file;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "read_file" `Quick test_json_read_file;
        ] );
      ("report", [ Alcotest.test_case "snapshot" `Quick test_report_snapshot ]);
    ]
