(* Tests for Par.Pool: deterministic chunked parallel map over a fixed
   set of worker domains, plus the atomicity of Obs counters that the
   thread-safety contract of the mapped function relies on. *)

let with_pool jobs f =
  let pool = Par.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

(* --- map_chunked: ordering and determinism -------------------------------- *)

(* Adversarial chunk sizes: 0 (clamps to 1), 1, odd sizes that don't
   divide the input, and far larger than the input. *)
let chunks = [ None; Some 0; Some 1; Some 3; Some 7; Some 1000 ]
let jobs_sweep = [ 1; 2; 4 ]

let test_map_matches_array_map () =
  let input = Array.init 103 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          List.iter
            (fun chunk ->
              let got = Par.Pool.map_chunked pool ?chunk f input in
              Alcotest.(check (array int))
                (Printf.sprintf "jobs=%d chunk=%s" jobs
                   (match chunk with
                    | None -> "default"
                    | Some c -> string_of_int c))
                expected got)
            chunks))
    jobs_sweep

let test_map_empty_and_single () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let empty = Par.Pool.map_chunked pool string_of_int [||] in
          Alcotest.(check (array string)) "empty input" [||] empty;
          let one = Par.Pool.map_chunked pool ~chunk:5 string_of_int [| 7 |] in
          Alcotest.(check (array string)) "single element" [| "7" |] one))
    jobs_sweep

(* Each output slot must be written exactly once — count writes per index
   through an atomic per-slot tally. *)
let test_each_index_once () =
  let n = 64 in
  let writes = Array.init n (fun _ -> Atomic.make 0) in
  with_pool 4 (fun pool ->
      let _ =
        Par.Pool.map_chunked pool ~chunk:3
          (fun i ->
            Atomic.incr writes.(i);
            i)
          (Array.init n (fun i -> i))
      in
      Array.iteri
        (fun i w ->
          Alcotest.(check int)
            (Printf.sprintf "index %d computed once" i)
            1 (Atomic.get w))
        writes)

(* --- allocating vs non-allocating mapped functions ------------------------- *)

(* The result buffer is filled without the boxed ['b option array]
   double-materialization it used to have; these stress both extremes of
   what [f] returns — unboxable floats from a function that allocates
   nothing itself, and freshly heap-allocated structured values — across
   many batches, checking against [Array.map] each time. *)
let test_stress_non_allocating_f () =
  let input = Array.init 10_000 (fun i -> float_of_int i) in
  let f x = (x *. x) +. 1.5 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          for _ = 1 to 20 do
            let got = Par.Pool.map_chunked pool ~chunk:97 f input in
            Alcotest.(check bool)
              (Printf.sprintf "float map matches (jobs=%d)" jobs)
              true (got = expected)
          done))
    jobs_sweep

let test_stress_allocating_f () =
  let input = Array.init 5_000 (fun i -> i) in
  let f x = (string_of_int x, [ x; x + 1 ], float_of_int x /. 3.) in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          for _ = 1 to 10 do
            let got = Par.Pool.map_chunked pool ~chunk:61 f input in
            Alcotest.(check bool)
              (Printf.sprintf "allocating map matches (jobs=%d)" jobs)
              true (got = expected)
          done))
    jobs_sweep

(* Exactly-once must also hold when [f] allocates (a GC-triggered domain
   interleaving must not re-run or skip a chunk). *)
let test_each_index_once_allocating () =
  let n = 512 in
  let writes = Array.init n (fun _ -> Atomic.make 0) in
  with_pool 4 (fun pool ->
      let got =
        Par.Pool.map_chunked pool ~chunk:7
          (fun i ->
            Atomic.incr writes.(i);
            Bytes.make (1 + (i mod 64)) 'x')
          (Array.init n (fun i -> i))
      in
      Alcotest.(check int) "all results present" n (Array.length got);
      Array.iteri
        (fun i w ->
          Alcotest.(check int)
            (Printf.sprintf "index %d computed once" i)
            1 (Atomic.get w))
        writes)

(* --- exception propagation ------------------------------------------------- *)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let raised =
            try
              ignore
                (Par.Pool.map_chunked pool ~chunk:1
                   (fun i -> if i mod 10 = 3 then raise (Boom i) else i)
                   (Array.init 40 (fun i -> i)));
              None
            with Boom i -> Some i
          in
          (* Several chunks fail (i = 3, 13, 23, 33); the lowest-indexed
             failing chunk wins regardless of which domain ran it. *)
          Alcotest.(check (option int))
            (Printf.sprintf "lowest failing chunk's exception (jobs=%d)" jobs)
            (Some 3) raised;
          (* The pool survives a failed batch. *)
          let ok = Par.Pool.map_chunked pool succ [| 1; 2; 3 |] in
          Alcotest.(check (array int)) "pool usable after raise" [| 2; 3; 4 |] ok))
    [ 1; 4 ]

(* --- pool reuse and shutdown ----------------------------------------------- *)

let test_pool_reuse () =
  with_pool 4 (fun pool ->
      Alcotest.(check int) "jobs" 4 (Par.Pool.jobs pool);
      for round = 1 to 50 do
        let n = 1 + (round mod 17) in
        let got = Par.Pool.map_chunked pool ~chunk:2 (fun x -> x * round)
            (Array.init n (fun i -> i)) in
        let expected = Array.init n (fun i -> i * round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          expected got
      done)

let test_shutdown_then_use () =
  let pool = Par.Pool.create ~jobs:4 () in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool (* idempotent *);
  let got = Par.Pool.map_chunked pool succ (Array.init 10 (fun i -> i)) in
  Alcotest.(check (array int))
    "post-shutdown map runs inline"
    (Array.init 10 (fun i -> i + 1))
    got

let test_create_clamps () =
  let pool = Par.Pool.create ~jobs:0 () in
  Alcotest.(check int) "jobs clamped to 1" 1 (Par.Pool.jobs pool);
  Par.Pool.shutdown pool

(* Regression: an absurd --jobs used to spawn jobs - 1 domains and crash
   into OCaml 5's hard domain limit (the runtime aborts the process, so
   this test existing and completing IS the assertion); now the request
   is clamped to the documented cap and the pool works. *)
let test_create_clamps_huge_jobs () =
  let pool = Par.Pool.create ~jobs:100_000 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let jobs = Par.Pool.jobs pool in
      Alcotest.(check bool) "clamped into 1 .. max_jobs" true
        (jobs >= 1 && jobs <= Par.Pool.max_jobs ());
      Alcotest.(check bool) "cap below the runtime's domain limit" true
        (Par.Pool.max_jobs () < 128);
      let got = Par.Pool.map_chunked pool succ (Array.init 33 (fun i -> i)) in
      Alcotest.(check (array int))
        "oversized pool still maps correctly"
        (Array.init 33 (fun i -> i + 1))
        got)

(* --- flight-recorder ledgers ------------------------------------------------ *)

let phase_named name (rep : Obs.Sched.report) =
  List.find_opt
    (fun (p : Obs.Sched.phase_report) -> p.Obs.Sched.phase = name)
    rep.Obs.Sched.phases

let report_of sched =
  match Obs.Sched.report sched with
  | Some rep -> rep
  | None -> Alcotest.fail "enabled recorder yields no report"

(* Every chunk of a recorded map is attributed to exactly one slot:
   chunks_per_slot sums to the chunk count, and the per-label ledger
   carries the exact call/item/chunk tallies. *)
let test_ledger_exactly_once () =
  let n = 103 in
  let n_chunks = (n + 2) / 3 in
  let sched = Obs.Sched.create () in
  with_pool 4 (fun pool ->
      ignore
        (Par.Pool.map_chunked pool ~sched ~label:"t.map" ~chunk:3
           (fun i -> i * i)
           (Array.init n (fun i -> i))));
  Obs.Sched.note_phase sched ~phase:"t" ~wall_s:1.0;
  let rep = report_of sched in
  match phase_named "t" rep with
  | None -> Alcotest.fail "label t.map did not land in phase t"
  | Some p ->
    Alcotest.(check int) "chunks attributed exactly once" n_chunks
      (Array.fold_left ( + ) 0 p.Obs.Sched.chunks_per_slot);
    Alcotest.(check int) "phase jobs is the pool width" 4 p.Obs.Sched.jobs;
    (match p.Obs.Sched.labels with
     | [ l ] ->
       Alcotest.(check string) "label" "t.map" l.Obs.Sched.label;
       Alcotest.(check int) "one ledger" 1 l.Obs.Sched.ledgers;
       Alcotest.(check int) "items" n l.Obs.Sched.items;
       Alcotest.(check int) "chunks" n_chunks l.Obs.Sched.chunks
     | ls -> Alcotest.failf "expected one label, got %d" (List.length ls));
    (* Occupancy sampling sees one chunk-start per chunk. *)
    Alcotest.(check int) "occupancy samples = chunks" n_chunks
      (Array.fold_left (fun a (_, s) -> a + s) 0 rep.Obs.Sched.occupancy)

let busy_wait seconds =
  let t0 = Obs.Timer.now () in
  while Obs.Timer.now () -. t0 < seconds do
    ()
  done

(* On a workload of known duration, the ledger's busy time accounts for
   the work and busy + idle cannot exceed the phase wall: busy is at
   least the summed chunk durations and at most jobs x the map's wall. *)
let test_ledger_busy_accounts_wall () =
  let per_chunk = 0.005 in
  let items = 8 in
  let sched = Obs.Sched.create () in
  let wall = ref 0. in
  with_pool 2 (fun pool ->
      let t0 = Obs.Timer.now () in
      ignore
        (Par.Pool.map_chunked pool ~sched ~label:"t.spin" ~chunk:1
           (fun _ -> busy_wait per_chunk)
           (Array.init items (fun i -> i)));
      wall := Obs.Timer.now () -. t0);
  Obs.Sched.note_phase sched ~phase:"t" ~wall_s:!wall;
  let rep = report_of sched in
  match phase_named "t" rep with
  | None -> Alcotest.fail "phase t missing"
  | Some p ->
    let busy = Array.fold_left ( +. ) 0. p.Obs.Sched.busy_s in
    let spun = float_of_int items *. per_chunk in
    Alcotest.(check bool)
      (Printf.sprintf "busy %.4f covers the %.4f spun" busy spun)
      true (busy >= 0.9 *. spun);
    Alcotest.(check bool)
      (Printf.sprintf "busy %.4f <= jobs x wall %.4f" busy !wall)
      true
      (busy <= (2. *. !wall) +. 1e-3);
    Alcotest.(check bool) "par wall <= phase wall" true
      (p.Obs.Sched.par_wall_s <= p.Obs.Sched.wall_s +. 1e-9);
    Alcotest.(check bool) "serial fraction in [0,1]" true
      (p.Obs.Sched.serial_fraction >= 0. && p.Obs.Sched.serial_fraction <= 1.)

(* Two identical runs produce structurally identical ledgers: same
   phases, same labels, same call/item/chunk tallies (times differ, of
   course).  This is what makes efficiency reports comparable across
   bench runs. *)
let test_ledger_structure_deterministic () =
  let run () =
    let sched = Obs.Sched.create () in
    with_pool 4 (fun pool ->
        List.iter
          (fun (label, n, chunk) ->
            ignore
              (Par.Pool.map_chunked pool ~sched ~label ~chunk
                 (fun i -> i * 2)
                 (Array.init n (fun i -> i))))
          [ ("a.x", 50, 3); ("a.y", 20, 1); ("b.z", 64, 7); ("a.x", 50, 3) ]);
    Obs.Sched.note_phase sched ~phase:"a" ~wall_s:1.;
    Obs.Sched.note_phase sched ~phase:"b" ~wall_s:1.;
    let rep = report_of sched in
    List.map
      (fun (p : Obs.Sched.phase_report) ->
        ( p.Obs.Sched.phase,
          p.Obs.Sched.jobs,
          Array.fold_left ( + ) 0 p.Obs.Sched.chunks_per_slot,
          List.map
            (fun (l : Obs.Sched.label_report) ->
              (l.Obs.Sched.label, l.Obs.Sched.ledgers, l.Obs.Sched.items,
               l.Obs.Sched.chunks))
            p.Obs.Sched.labels ))
      rep.Obs.Sched.phases
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "ledger structure identical across runs" true (a = b)

(* The disabled recorder records nothing and the recorded map returns
   the same result as an unrecorded one. *)
let test_null_recorder_inert () =
  Alcotest.(check bool) "null is disabled" false
    (Obs.Sched.enabled Obs.Sched.null);
  Alcotest.(check bool) "null yields no report" true
    (Obs.Sched.report Obs.Sched.null = None);
  let input = Array.init 64 (fun i -> i) in
  with_pool 2 (fun pool ->
      let plain = Par.Pool.map_chunked pool ~chunk:5 succ input in
      let recorded =
        let sched = Obs.Sched.create () in
        Par.Pool.map_chunked pool ~sched ~label:"t.id" ~chunk:5 succ input
      in
      Alcotest.(check (array int)) "recording never changes results" plain
        recorded)

(* --- Obs.Counter atomicity under domains ----------------------------------- *)

let test_counter_atomic_across_domains () =
  let c = Obs.Counter.make "test.par.atomic" in
  Obs.Counter.reset c;
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    "4 domains x 25k increments, none lost"
    (4 * per_domain) (Obs.Counter.value c)

(* --- default_jobs / jobs_of_string ----------------------------------------- *)

let test_jobs_of_string () =
  let check s expected =
    Alcotest.(check (option int)) (Printf.sprintf "parse %S" s) expected
      (Par.Pool.jobs_of_string s)
  in
  check "1" (Some 1);
  check "4" (Some 4);
  check "0" None;
  check "-2" None;
  check "" None;
  check "two" None;
  check "4.5" None

let test_default_jobs_positive () =
  (* Whatever the environment says, the default is a sane positive
     parallelism within the fat-finger cap. *)
  let d = Par.Pool.default_jobs () in
  Alcotest.(check bool) "default_jobs >= 1" true (d >= 1);
  Alcotest.(check bool)
    "default_jobs within cap" true
    (d <= 8 * Domain.recommended_domain_count ())

let () =
  Alcotest.run "par"
    [
      ( "map_chunked",
        [
          Alcotest.test_case "matches Array.map for all jobs x chunks" `Quick
            test_map_matches_array_map;
          Alcotest.test_case "empty and single-element inputs" `Quick
            test_map_empty_and_single;
          Alcotest.test_case "each index computed exactly once" `Quick
            test_each_index_once;
          Alcotest.test_case "deterministic exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "stress: non-allocating float map" `Quick
            test_stress_non_allocating_f;
          Alcotest.test_case "stress: allocating map" `Quick
            test_stress_allocating_f;
          Alcotest.test_case "exactly-once with allocating f" `Quick
            test_each_index_once_allocating;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse across 50 batches" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown is idempotent, then inline" `Quick
            test_shutdown_then_use;
          Alcotest.test_case "jobs clamped to >= 1" `Quick test_create_clamps;
          Alcotest.test_case "huge --jobs request clamped, no abort" `Quick
            test_create_clamps_huge_jobs;
        ] );
      ( "sched",
        [
          Alcotest.test_case "chunks attributed exactly once" `Quick
            test_ledger_exactly_once;
          Alcotest.test_case "busy accounts the wall" `Quick
            test_ledger_busy_accounts_wall;
          Alcotest.test_case "ledger structure deterministic" `Quick
            test_ledger_structure_deterministic;
          Alcotest.test_case "null recorder is inert" `Quick
            test_null_recorder_inert;
        ] );
      ( "obs",
        [
          Alcotest.test_case "counter increments atomic across 4 domains"
            `Quick test_counter_atomic_across_domains;
        ] );
      ( "config",
        [
          Alcotest.test_case "jobs_of_string" `Quick test_jobs_of_string;
          Alcotest.test_case "default_jobs sane" `Quick
            test_default_jobs_positive;
        ] );
    ]
