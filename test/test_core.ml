(* Tests for the public router API. *)

module Pt = Geometry.Pt
open Clocktree

let pt = Pt.make

let mk_instance ?(seed = 7L) n ~n_groups ~bound =
  let rng = Workload.Rng.create seed in
  let sinks =
    Array.init n (fun i ->
        Sink.make ~id:i
          ~loc:(pt (Workload.Rng.float_range rng 0. 20000.)
                  (Workload.Rng.float_range rng 0. 20000.))
          ~cap:(Workload.Rng.float_range rng 20. 80.)
          ~group:(i mod n_groups))
  in
  Instance.make ~bound ~source:(pt 10000. 10000.) ~n_groups sinks

let test_greedy_dme_zero_skew () =
  let inst = mk_instance 60 ~n_groups:3 ~bound:10. in
  let r = Astskew.Router.greedy_dme inst in
  (* Zero-skew routing ignores groups: global skew ~0. *)
  Alcotest.(check bool) "global skew ~ 0" true (r.evaluation.global_skew <= 1e-4);
  Alcotest.(check bool) "positive wirelength" true (r.evaluation.wirelength > 0.)

let test_ext_bst_within_bound () =
  let inst = mk_instance 60 ~n_groups:3 ~bound:10. in
  let r = Astskew.Router.ext_bst inst in
  (* Global skew bounded by 10 ps, hence every group too. *)
  Alcotest.(check bool) "global skew <= bound" true
    (r.evaluation.global_skew <= 10. +. 1e-4);
  Alcotest.(check bool) "group skews <= bound" true
    (r.evaluation.max_group_skew <= 10. +. 1e-4)

let test_ast_dme_within_bound_only_per_group () =
  let inst = mk_instance 120 ~n_groups:6 ~bound:10. in
  let r = Astskew.Router.ast_dme inst in
  Alcotest.(check bool) "group skews <= bound" true
    (r.evaluation.max_group_skew <= 10. +. 1e-4);
  (* The whole point: global skew may exceed the bound. *)
  Alcotest.(check bool) "global skew is free" true
    (r.evaluation.global_skew >= r.evaluation.max_group_skew -. 1e-9)

let test_ast_beats_ext_on_intermingled () =
  (* Fixed-seed medium instance with intermingled groups: the headline
     claim of the thesis, AST-DME < EXT-BST wirelength. *)
  let spec = Workload.Circuits.{ name = "test"; n_sinks = 200; die = 40000. } in
  let inst =
    Workload.Circuits.instance spec ~n_groups:8
      ~scheme:Workload.Partition.Intermingled ~bound:10. ()
  in
  let ext = Astskew.Router.ext_bst inst in
  let ast = Astskew.Router.ast_dme inst in
  let red = Astskew.Router.reduction ~baseline:ext ast in
  Alcotest.(check bool)
    (Printf.sprintf "AST reduces wirelength (got %.2f%%)" (100. *. red))
    true (red > 0.02)

let test_mmm_dme () =
  let inst = mk_instance 80 ~n_groups:4 ~bound:10. in
  let r = Astskew.Router.mmm_dme inst in
  Alcotest.(check bool) "constraints hold" true
    (r.evaluation.max_group_skew <= 10. +. 1e-4);
  Alcotest.(check bool) "positive wirelength" true (r.evaluation.wirelength > 0.);
  (* MMM is a reasonable topology: within 2x of the greedy engine. *)
  let ast = Astskew.Router.ast_dme inst in
  Alcotest.(check bool)
    (Printf.sprintf "mmm %.0f within 2x of greedy %.0f"
       r.evaluation.wirelength ast.evaluation.wirelength)
    true
    (r.evaluation.wirelength < 2. *. ast.evaluation.wirelength)

let test_reduction_sign () =
  let inst = mk_instance 40 ~n_groups:2 ~bound:10. in
  let a = Astskew.Router.ext_bst inst in
  Alcotest.(check (float 1e-9)) "self reduction is zero" 0.
    (Astskew.Router.reduction ~baseline:a a)

let test_reduction_degenerate_baseline () =
  (* A single sink placed exactly at the source routes with zero
     wirelength; reduction must report 0., not NaN (regression for the
     0/0 divide). *)
  let sinks = [| Sink.make ~id:0 ~loc:(pt 10000. 10000.) ~cap:35. ~group:0 |] in
  let inst =
    Instance.make ~bound:10. ~source:(pt 10000. 10000.) ~n_groups:1 sinks
  in
  let base = Astskew.Router.greedy_dme inst in
  Alcotest.(check (float 1e-12)) "baseline wirelength is zero" 0.
    base.evaluation.wirelength;
  let red = Astskew.Router.reduction ~baseline:base base in
  Alcotest.(check bool) "reduction is finite" true (Float.is_finite red);
  Alcotest.(check (float 1e-12)) "reduction is zero" 0. red

let test_timings_recorded () =
  let inst = mk_instance 40 ~n_groups:2 ~bound:10. in
  let r = Astskew.Router.ast_dme inst in
  let t = r.timings in
  Alcotest.(check bool) "phase timings non-negative" true
    (t.engine_s >= 0. && t.repair_s >= 0. && t.evaluate_s >= 0.);
  Alcotest.(check bool) "total covers phases" true
    (t.total_s +. 1e-9 >= t.engine_s +. t.repair_s +. t.evaluate_s)

let test_cpu_time_recorded () =
  let inst = mk_instance 40 ~n_groups:2 ~bound:10. in
  let r = Astskew.Router.ast_dme inst in
  Alcotest.(check bool) "cpu time non-negative" true (r.cpu_seconds >= 0.)

let test_pp_result_smoke () =
  let inst = mk_instance 30 ~n_groups:2 ~bound:10. in
  let r = Astskew.Router.ast_dme inst in
  let s = Format.asprintf "%a" Astskew.Router.pp_result r in
  Alcotest.(check bool) "non-empty" true (String.length s > 10)

let test_json_of_result_probe_counters () =
  (* The probe counters the bench harness and astroute --stats-json key
     on must be present in the engine object and consistent with the
     stats record — parse the emitted JSON back rather than substring
     matching. *)
  let inst = mk_instance 60 ~n_groups:2 ~bound:10. in
  let r = Astskew.Router.ast_dme inst in
  let json = Obs.Json.of_string (Obs.Json.to_string (Astskew.Router.json_of_result r)) in
  let field name = function
    | Obs.Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  match field "engine" json with
  | None -> Alcotest.fail "missing engine object"
  | Some engine ->
    (match (field "nn_reprobes" engine, field "nn_probes_saved" engine) with
     | Some (Obs.Json.Int reprobes), Some (Obs.Json.Int saved) ->
       Alcotest.(check int) "nn_reprobes" r.engine.nn_reprobes reprobes;
       Alcotest.(check int) "nn_probes_saved" r.engine.nn_probes_saved saved;
       Alcotest.(check bool) "probes were executed" true (reprobes > 0)
     | _ -> Alcotest.fail "missing or non-int probe counters")

(* Tracing must be semantically inert: routing with a live trace
   produces the exact tree, delays, wirelength and engine stats of the
   untraced run, while the journal's per-round records sum to the
   engine's aggregate counters. *)
let test_trace_identity () =
  let inst = mk_instance 80 ~n_groups:4 ~bound:10. in
  let base = Astskew.Router.ast_dme inst in
  List.iter
    (fun jobs ->
      let trace = Obs.Trace.create () in
      let traced = Astskew.Router.ast_dme ~jobs ~trace inst in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "wirelength identical (jobs=%d)" jobs)
        base.evaluation.wirelength traced.evaluation.wirelength;
      Alcotest.(check bool)
        (Printf.sprintf "per-sink delays identical (jobs=%d)" jobs)
        true
        (base.evaluation.delays = traced.evaluation.delays);
      Alcotest.(check bool)
        (Printf.sprintf "engine stats identical (jobs=%d)" jobs)
        true
        (let degc (s : Dme.Engine.stats) =
           { s with gc = Obs.Gcstat.zero }
         in
         degc base.engine = degc traced.engine);
      let rounds =
        List.filter_map
          (function
            | Obs.Json.Obj fields
              when List.assoc_opt "type" fields
                   = Some (Obs.Json.String "round") ->
              Some fields
            | _ -> None)
          (Obs.Trace.journal_records trace)
      in
      let sum key =
        List.fold_left
          (fun acc fields ->
            match List.assoc_opt key fields with
            | Some (Obs.Json.Int n) -> acc + n
            | _ -> acc)
          0 rounds
      in
      Alcotest.(check int)
        (Printf.sprintf "journal round count (jobs=%d)" jobs)
        traced.engine.rounds (List.length rounds);
      Alcotest.(check int)
        (Printf.sprintf "journal probes sum (jobs=%d)" jobs)
        traced.engine.nn_reprobes (sum "probes");
      Alcotest.(check int)
        (Printf.sprintf "journal trial merges sum (jobs=%d)" jobs)
        traced.engine.trial.trial_merges (sum "trial_merges");
      Alcotest.(check int)
        (Printf.sprintf "journal cache hits sum (jobs=%d)" jobs)
        traced.engine.trial.cache_hits (sum "trial_cache_hits");
      Alcotest.(check bool)
        (Printf.sprintf "trace captured spans (jobs=%d)" jobs)
        true
        (Obs.Trace.events trace <> []))
    [ 1; 2 ]

(* Every router entry point stamps the run manifest and produces a
   Chrome export that re-parses with a non-empty traceEvents list. *)
let test_trace_router_manifest () =
  let inst = mk_instance 40 ~n_groups:2 ~bound:10. in
  List.iter
    (fun (name, route) ->
      let trace = Obs.Trace.create () in
      let (_ : Astskew.Router.result) = route ~trace inst in
      (match Obs.Trace.manifest trace with
       | Obs.Json.Obj fields ->
         Alcotest.(check bool) (name ^ " manifest names the router") true
           (List.assoc_opt "router" fields = Some (Obs.Json.String name));
         Alcotest.(check bool) (name ^ " manifest has engine_config") true
           (name = "ext_bst" || List.mem_assoc "engine_config" fields)
       | _ -> Alcotest.fail (name ^ ": manifest should be an object"));
      match
        Obs.Json.of_string (Obs.Json.to_string (Obs.Trace.to_chrome trace))
      with
      | Obs.Json.Obj fields ->
        (match List.assoc_opt "traceEvents" fields with
         | Some (Obs.Json.List (_ :: _)) -> ()
         | _ -> Alcotest.fail (name ^ ": traceEvents empty or missing"))
      | _ -> Alcotest.fail (name ^ ": chrome export should be an object"))
    [
      ("ast_dme", fun ~trace inst -> Astskew.Router.ast_dme ~trace inst);
      ("ext_bst", fun ~trace inst -> Astskew.Router.ext_bst ~trace inst);
      ("greedy_dme", fun ~trace inst -> Astskew.Router.greedy_dme ~trace inst);
      ("mmm_dme", fun ~trace inst -> Astskew.Router.mmm_dme ~trace inst);
    ]

let () =
  Alcotest.run "core"
    [
      ( "routers",
        [
          Alcotest.test_case "greedy-DME zero skew" `Quick test_greedy_dme_zero_skew;
          Alcotest.test_case "EXT-BST within bound" `Quick test_ext_bst_within_bound;
          Alcotest.test_case "AST-DME per-group bound only" `Quick
            test_ast_dme_within_bound_only_per_group;
          Alcotest.test_case "AST beats EXT on intermingled" `Slow
            test_ast_beats_ext_on_intermingled;
          Alcotest.test_case "MMM-DME baseline" `Quick test_mmm_dme;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "reduction" `Quick test_reduction_sign;
          Alcotest.test_case "reduction on zero-wirelength baseline" `Quick
            test_reduction_degenerate_baseline;
          Alcotest.test_case "phase timings" `Quick test_timings_recorded;
          Alcotest.test_case "cpu time" `Quick test_cpu_time_recorded;
          Alcotest.test_case "pp_result" `Quick test_pp_result_smoke;
          Alcotest.test_case "json probe counters" `Quick
            test_json_of_result_probe_counters;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "semantically inert + journal sums" `Quick
            test_trace_identity;
          Alcotest.test_case "router manifests + chrome export" `Quick
            test_trace_router_manifest;
        ] );
    ]
