(* Tests for the clustered router: the spatial partitioner's
   invariants, the clusters=1 ≡ flat identity, cross-jobs determinism
   of a genuinely clustered run, the multi-level (depth >= 2) hierarchy
   — whose leaf regions must coincide with the flat partition and whose
   forced depth-1 run must be bit-identical to the default — and the
   auditor's ability to see a skew violation that spans a cluster
   boundary. *)

module Pt = Geometry.Pt
open Clocktree

let pt = Pt.make

let sink id x y ?(cap = 20.) group = Sink.make ~id ~loc:(pt x y) ~cap ~group

let instance ?(bound = 10.) ?(n_groups = 1) sinks =
  Instance.make ~bound ~source:(pt 0. 0.) ~n_groups (Array.of_list sinks)

(* n sinks on a diagonal with a few coincident points, groups round-robin *)
let diagonal ?(n_groups = 3) n =
  instance ~n_groups
    (List.init n (fun i ->
         let c = float_of_int (i - (i mod 7)) in
         sink i c c (i mod n_groups)))

let circuit name =
  match Workload.Circuits.find name with
  | Some spec ->
    Workload.Circuits.instance spec ~n_groups:8
      ~scheme:Workload.Partition.Intermingled ~bound:10. ()
  | None -> Alcotest.failf "unknown circuit %s" name

(* --- Split --------------------------------------------------------------- *)

let test_split_bipartition () =
  (* Wide cloud: split must be along X, halves of sizes ceil/floor. *)
  let pts = [| pt 0. 0.; pt 10. 5.; pt 20. 0.; pt 30. 5.; pt 40. 0. |] in
  let ids = Array.init 5 Fun.id in
  let lo, hi = Geometry.Split.bipartition (Array.get pts) ids in
  Alcotest.(check int) "lower size" 3 (Array.length lo);
  Alcotest.(check int) "upper size" 2 (Array.length hi);
  Array.iter
    (fun i ->
      Array.iter
        (fun j ->
          if (pts.(i) : Pt.t).x >= pts.(j).x then
            Alcotest.failf "sink %d (lower) right of sink %d (upper)" i j)
        hi)
    lo

let test_split_ties () =
  (* All coincident: ties broken by id, halves still non-empty. *)
  let pts = Array.make 6 (pt 1. 1.) in
  let ids = Array.init 6 Fun.id in
  let lo, hi = Geometry.Split.bipartition (Array.get pts) ids in
  Alcotest.(check int) "lower size" 3 (Array.length lo);
  Alcotest.(check int) "upper size" 3 (Array.length hi);
  Alcotest.(check (list int)) "lower ids" [ 0; 1; 2 ] (Array.to_list lo);
  Alcotest.(check (list int)) "upper ids" [ 3; 4; 5 ] (Array.to_list hi)

(* --- Partition ----------------------------------------------------------- *)

let check_partition inst ~clusters =
  let regions = Dme.Cluster.partition inst ~clusters in
  Alcotest.(check (list string))
    "partition covers every sink exactly once" []
    (List.map
       (fun (v : Check.Audit.violation) -> v.invariant ^ ": " ^ v.detail)
       (Check.Audit.partition_cover inst regions));
  regions

let test_partition_cover () =
  let inst = diagonal 37 in
  List.iter
    (fun k ->
      let regions = check_partition inst ~clusters:k in
      Alcotest.(check int)
        (Printf.sprintf "realized count at k=%d" k)
        (Int.min (Int.max 1 k) 37)
        (Array.length regions))
    [ 0; 1; 2; 3; 5; 8; 36; 37; 38; 100 ]

let test_partition_deterministic () =
  let inst = circuit "r1" in
  let a = Dme.Cluster.partition inst ~clusters:7 in
  let b = Dme.Cluster.partition inst ~clusters:7 in
  Alcotest.(check bool) "pure function of the instance" true (a = b)

let test_auto_clusters () =
  Alcotest.(check int) "small instance" 1
    (Dme.Cluster.auto_clusters (diagonal 40));
  Alcotest.(check int) "2500 sinks" 3
    (Dme.Cluster.auto_clusters (diagonal 2500));
  (* No 64-region cap any more: the region count keeps tracking one per
     thousand sinks and the stitch goes multi-level instead. *)
  Alcotest.(check int) "70000 sinks uncapped" 70
    (Dme.Cluster.auto_clusters (diagonal 70_000))

let test_auto_depth () =
  Alcotest.(check int) "fanout cap" 64 Dme.Cluster.fanout_cap;
  List.iter
    (fun (k, d) ->
      Alcotest.(check int) (Printf.sprintf "auto_depth %d" k) d
        (Dme.Cluster.auto_depth k))
    [ (1, 1); (2, 1); (64, 1); (65, 2); (1000, 2); (4096, 2); (4097, 3) ]

let partition_prop =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 60 in
      let* k = 1 -- 10 in
      let* dup = QCheck.Gen.bool in
      let* coords = list_repeat n (pair (0 -- 1000) (0 -- 1000)) in
      return (n, k, dup, coords))
  in
  QCheck.Test.make ~name:"partition covers exactly once, regions non-empty"
    ~count:200
    (QCheck.make
       ~print:(fun (n, k, dup, _) ->
         Printf.sprintf "n=%d k=%d dup=%b" n k dup)
       gen)
    (fun (n, k, dup, coords) ->
      let sinks =
        List.mapi
          (fun i (x, y) ->
            (* dup: collapse half the sinks onto one location to stress
               the tie-break *)
            let x, y = if dup && i mod 2 = 0 then (500, 500) else (x, y) in
            sink i (float_of_int x) (float_of_int y) (i mod 3))
          coords
      in
      let inst = instance ~n_groups:3 sinks in
      let regions = Dme.Cluster.partition inst ~clusters:k in
      Check.Audit.partition_cover inst regions = []
      && Array.length regions = Int.min k n
      && Array.for_all (fun r -> Array.length r > 0) regions)

(* --- clusters=1 identity and cross-jobs determinism ----------------------- *)

let test_identity_small () =
  let inst = diagonal ~n_groups:4 50 in
  Alcotest.(check (list string))
    "clusters=1 is bit-identical to flat" []
    (List.map
       (fun (f : Check.Oracle.finding) -> f.oracle)
       (Check.Oracle.cluster_identity ~jobs:[ 1; 4 ] inst))

let test_identity_circuit name () =
  let inst = circuit name in
  Alcotest.(check (list string))
    "clusters=1 is bit-identical to flat" []
    (List.map
       (fun (f : Check.Oracle.finding) -> f.oracle)
       (Check.Oracle.cluster_identity ~jobs:[ 1; 4 ] inst))

let test_jobs_deterministic () =
  (* A genuinely clustered run must not depend on the pool size. *)
  let inst = circuit "r1" in
  let route jobs =
    let config = { Astskew.Router.ast_default_config with Dme.Engine.jobs } in
    let routed, _, detail = Dme.Cluster.run ~config ~clusters:5 inst in
    (routed, detail)
  in
  let t1, d1 = route 1 in
  let t4, d4 = route 4 in
  Alcotest.(check bool) "trees identical" true (Check.Audit.tree_equal t1 t4);
  Alcotest.(check int) "region count" 5 d1.Dme.Cluster.n_clusters;
  Alcotest.(check int) "region count independent of jobs"
    d1.Dme.Cluster.n_clusters d4.Dme.Cluster.n_clusters;
  Array.iteri
    (fun i (c : Dme.Cluster.cluster_stats) ->
      let c4 = d4.Dme.Cluster.per_cluster.(i) in
      Alcotest.(check int)
        (Printf.sprintf "region %d sink count" i)
        c.n_sinks c4.n_sinks;
      Alcotest.(check int)
        (Printf.sprintf "region %d rounds" i)
        c.stats.rounds c4.stats.rounds)
    d1.Dme.Cluster.per_cluster

(* --- multi-level (depth >= 2) hierarchy ----------------------------------- *)

let test_depth2_matches_flat_partition () =
  (* The leaf regions of a forced depth-2 hierarchy are the flat
     partition: same count, same sizes, same order — only the stitch
     above them is reorganized into a tree of super-merges. *)
  let inst = diagonal ~n_groups:4 200 in
  let flat = Dme.Cluster.partition inst ~clusters:8 in
  let routed, _, d = Dme.Cluster.run ~clusters:8 ~depth:2 inst in
  Alcotest.(check int) "leaf region count" 8 d.Dme.Cluster.n_clusters;
  Alcotest.(check int) "realized depth" 2 d.Dme.Cluster.depth;
  Alcotest.(check bool) "has intermediate super stitches" true
    (Array.length d.Dme.Cluster.super > 0);
  Alcotest.(check (list int)) "leaf region sizes match the flat partition"
    (Array.to_list (Array.map Array.length flat))
    (Array.to_list
       (Array.map
          (fun (c : Dme.Cluster.cluster_stats) -> c.n_sinks)
          d.Dme.Cluster.per_cluster));
  let report = Evaluate.run inst routed in
  Alcotest.(check (list string))
    "depth-2 stitch passes the global grouped audit" []
    (List.map
       (fun (v : Check.Audit.violation) -> v.invariant ^ ": " ^ v.detail)
       (Check.Audit.run Check.Audit.Grouped inst routed report))

let test_depth_identity_small () =
  let inst = diagonal ~n_groups:4 60 in
  Alcotest.(check (list string))
    "depth-2 hierarchy: depth-1 identity + jobs determinism" []
    (List.map
       (fun (f : Check.Oracle.finding) -> f.oracle)
       (Check.Oracle.cluster_depth_identity ~jobs:[ 2 ] inst))

let test_depth_identity_circuit () =
  let inst = circuit "r1" in
  Alcotest.(check (list string))
    "depth-2 hierarchy: depth-1 identity + jobs determinism" []
    (List.map
       (fun (f : Check.Oracle.finding) -> f.oracle)
       (Check.Oracle.cluster_depth_identity ~jobs:[ 1; 4 ] inst))

let test_clustered_audit_clean () =
  let inst = circuit "r2" in
  Alcotest.(check (list string))
    "clustered route passes the global grouped audit" []
    (List.map
       (fun (f : Check.Oracle.finding) -> f.oracle)
       (Check.Oracle.clustered inst))

(* --- cross-cluster violation detection ------------------------------------ *)

let test_cross_cluster_injection_detected () =
  (* The injected snake lengthens one leaf of the stitched tree; its
     group is spread over regions by the spatial partition (r1 is
     intermingled), so the resulting bound violation spans a cluster
     boundary.  The audit runs against the global instance and must
     still see it. *)
  let inst = circuit "r1" in
  let findings = Check.Oracle.clustered ~inject:true inst in
  Alcotest.(check bool)
    "injected cross-cluster skew violation is detected" true
    (List.exists
       (fun (f : Check.Oracle.finding) ->
         f.oracle = "clustered"
         && List.exists
              (fun (v : Check.Audit.violation) ->
                v.invariant = "within-bound")
              f.violations)
       findings)

(* --- Banked fuzz regime --------------------------------------------------- *)

let test_banked_regime () =
  Alcotest.(check bool) "parses" true
    (Check.Gen.regime_of_string "banked" = Some Check.Gen.Banked);
  Alcotest.(check bool) "excluded from the ordinary cycle" false
    (Array.mem Check.Gen.Banked Check.Gen.all_regimes);
  let case =
    Check.Gen.case ~regime:Check.Gen.Banked ~seed:7L ~index:0 ()
  in
  let n = Instance.n_sinks case.instance in
  Alcotest.(check bool) "banked size in range" true (n >= 1000 && n <= 4000);
  (* banked geometry must produce several regions under the default
     cluster count *)
  Alcotest.(check bool) "auto clusters >= 2" true
    (Dme.Cluster.auto_clusters case.instance >= 2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cluster"
    [
      ( "split",
        [
          Alcotest.test_case "bipartition" `Quick test_split_bipartition;
          Alcotest.test_case "coincident ties" `Quick test_split_ties;
        ] );
      ( "partition",
        [
          Alcotest.test_case "cover + clamp" `Quick test_partition_cover;
          Alcotest.test_case "deterministic" `Quick
            test_partition_deterministic;
          Alcotest.test_case "auto clusters" `Quick test_auto_clusters;
          Alcotest.test_case "auto depth" `Quick test_auto_depth;
        ]
        @ qsuite [ partition_prop ] );
      ( "identity",
        [
          Alcotest.test_case "small diagonal" `Quick test_identity_small;
          Alcotest.test_case "r1" `Slow (test_identity_circuit "r1");
          Alcotest.test_case "r3" `Slow (test_identity_circuit "r3");
        ] );
      ( "depth",
        [
          Alcotest.test_case "leaves match flat partition" `Quick
            test_depth2_matches_flat_partition;
          Alcotest.test_case "identity small diagonal" `Quick
            test_depth_identity_small;
          Alcotest.test_case "identity r1" `Slow test_depth_identity_circuit;
        ] );
      ( "clustered",
        [
          Alcotest.test_case "jobs-deterministic" `Slow
            test_jobs_deterministic;
          Alcotest.test_case "audit clean" `Slow test_clustered_audit_clean;
          Alcotest.test_case "cross-cluster injection detected" `Slow
            test_cross_cluster_injection_detected;
        ] );
      ( "banked",
        [ Alcotest.test_case "regime" `Quick test_banked_regime ] );
    ]
