(* Tests for the lib/check fuzzing subsystem itself, plus the frozen
   regression instances it produced during development.

   The frozen cases are generator output (shrunk where a failure was
   involved) serialised with Clocktree.Io: deterministic stand-ins for
   whole fuzz regimes, cheap enough to run on every dune runtest. *)

open Clocktree

let parse text =
  match Io.of_string text with
  | Ok inst -> inst
  | Error e -> Alcotest.failf "frozen case does not parse: %s" e

let assert_clean name inst =
  match Check.Oracle.all inst with
  | [] -> ()
  | findings ->
    Alcotest.failf "%s: %a" name
      (Format.pp_print_list Check.Oracle.pp_finding)
      findings

(* --- frozen generator cases ---------------------------------------------- *)

(* Shrunk repro of the one real find of the first fuzz campaigns (seed
   1234, case 150, extreme-rc): a 0.01-ohm driver with fF-to-pF load
   spread, where transient and Elmore intra-group skews legitimately
   diverge.  Frozen to pin the oracle gating: the exact invariants
   (Elmore upper bound, crossing monotonicity) must still hold. *)
let extreme_rc_shrunk =
  "params 0.003 0.02\n\
   driver 0.01\n\
   source 50 50\n\
   bound 25\n\
   groups 2\n\
   sink 0 0 64 2000 0\n\
   sink 1 64 54 2000 0\n\
   sink 2 2 34 20 0\n\
   sink 3 0 17 0.01 1\n\
   sink 4 35 0 0.01 1\n\
   sink 5 69 20 0.01 1\n"

(* Every sink coincident with the source: all merge distances are zero. *)
let coincident_point =
  "driver 100\n\
   source 500 500\n\
   bound 0\n\
   groups 1\n\
   sink 0 500 500 20 0\n\
   sink 1 500 500 35 0\n\
   sink 2 500 500 50 0\n"

(* Collinear sinks on a ±45° Manhattan arc, two interleaved zero-bound
   groups: merging regions are degenerate segments. *)
let collinear_diagonal =
  "driver 100\n\
   source 0 0\n\
   bound 0\n\
   groups 2\n\
   sink 0 0 1000 20 0\n\
   sink 1 250 750 30 1\n\
   sink 2 500 500 40 0\n\
   sink 3 750 250 30 1\n\
   sink 4 1000 0 20 0\n"

(* Degenerate groups: every group is a singleton, so intra-group bounds
   constrain nothing and the router degenerates to pure wirelength
   minimisation under per-group bookkeeping. *)
let singleton_groups =
  "driver 100\n\
   source 5000 5000\n\
   bound 0\n\
   groups 5\n\
   groupbound 0 0\n\
   groupbound 1 10\n\
   groupbound 2 0\n\
   groupbound 3 50\n\
   groupbound 4 0\n\
   sink 0 0 0 20 0\n\
   sink 1 10000 0 80 1\n\
   sink 2 0 10000 35 2\n\
   sink 3 10000 10000 50 3\n\
   sink 4 5000 2500 5 4\n"

(* Two zero-bound groups spread across opposite corners (the thesis'
   "intermingled" shape at minimum size). *)
let zero_bound_intermingled =
  "driver 100\n\
   source 5000 5000\n\
   bound 0\n\
   groups 2\n\
   sink 0 0 0 20 0\n\
   sink 1 10000 10000 20 0\n\
   sink 2 10000 0 20 1\n\
   sink 3 0 10000 20 1\n"

(* One sink: the tree is a single leaf wired to the source. *)
let single_sink =
  "driver 100\n\
   source 0 0\n\
   bound 0\n\
   groups 1\n\
   sink 0 7000 3000 42 0\n"

(* Exact duplicate sinks in one zero-bound group, plus a distant
   singleton group: zero-distance merges inside a bounded group. *)
let duplicate_pair_zero_bound =
  "driver 100\n\
   source 1000 1000\n\
   bound 0\n\
   groups 2\n\
   sink 0 2000 2000 25 0\n\
   sink 1 2000 2000 25 0\n\
   sink 2 0 9000 60 1\n"

let frozen_cases =
  [
    ("extreme-rc shrunk repro", extreme_rc_shrunk);
    ("coincident point", coincident_point);
    ("collinear diagonal", collinear_diagonal);
    ("singleton groups", singleton_groups);
    ("zero-bound intermingled", zero_bound_intermingled);
    ("single sink", single_sink);
    ("duplicate pair zero bound", duplicate_pair_zero_bound);
  ]

let test_frozen (name, text) () = assert_clean name (parse text)

(* --- generator ------------------------------------------------------------ *)

let test_generator_determinism () =
  let a = Check.Gen.case ~seed:42L ~index:5 () in
  let b = Check.Gen.case ~seed:42L ~index:5 () in
  Alcotest.(check string) "same instance text" (Io.to_string a.instance)
    (Io.to_string b.instance);
  let cycle = Array.length Check.Gen.all_regimes in
  Alcotest.(check bool) "regimes cycle" true
    ((Check.Gen.case ~seed:42L ~index:cycle ()).regime
    = (Check.Gen.case ~seed:42L ~index:0 ()).regime)

let test_generator_regimes_shapes () =
  (* Spot-check the regimes produce what they claim. *)
  let find regime =
    let rec go i =
      if i > 64 then Alcotest.failf "no case of regime in 64 draws"
      else
        let c = Check.Gen.case ~seed:7L ~index:i () in
        if c.regime = regime then c.instance else go (i + 1)
    in
    go 0
  in
  let collinear = find Check.Gen.Collinear in
  let on_line =
    let s0 = collinear.sinks.(0).loc in
    Array.for_all
      (fun (s : Sink.t) ->
        let d = Geometry.Pt.sub s.loc s0 in
        Float.abs d.x < 1e-6 || Float.abs d.y < 1e-6
        || Float.abs (Float.abs d.x -. Float.abs d.y) < 1e-6)
      collinear.sinks
  in
  Alcotest.(check bool) "collinear sinks on one line" true on_line;
  let tiny = find Check.Gen.Tiny_groups in
  let sizes = Instance.group_sizes tiny in
  Alcotest.(check bool) "tiny groups have <= 3 sinks" true
    (Array.for_all (fun k -> k >= 1 && k <= 3) sizes);
  let zb = find Check.Gen.Zero_bound in
  Alcotest.(check bool) "zero-bound instance has a zero bound" true
    (List.exists
       (fun g -> Instance.bound_for zb g = 0.)
       (List.init zb.n_groups Fun.id));
  let norm = find Check.Gen.Normalized in
  Alcotest.(check bool) "normalized sinks inside the unit square" true
    (Array.for_all
       (fun (s : Sink.t) ->
         s.loc.Geometry.Pt.x >= 0.
         && s.loc.Geometry.Pt.x <= 1.
         && s.loc.Geometry.Pt.y >= 0.
         && s.loc.Geometry.Pt.y <= 1.)
       norm.sinks);
  Alcotest.(check bool) "normalized instance is multi-sink" true
    (Instance.n_sinks norm >= 16)

let test_generator_huge () =
  (* Huge is excluded from the index cycle (too slow for the full oracle
     battery) but must be forcible, deterministic, and benchmark-scale. *)
  Alcotest.(check bool) "huge not in all_regimes" true
    (not (Array.mem Check.Gen.Huge Check.Gen.all_regimes));
  Alcotest.(check (option string)) "regime_of_string round-trips"
    (Some "huge")
    (Option.map Check.Gen.regime_to_string
       (Check.Gen.regime_of_string "huge"));
  let a = Check.Gen.case ~regime:Check.Gen.Huge ~seed:13L ~index:101 () in
  let b = Check.Gen.case ~regime:Check.Gen.Huge ~seed:13L ~index:101 () in
  Alcotest.(check string) "deterministic" (Io.to_string a.instance)
    (Io.to_string b.instance);
  let n = Instance.n_sinks a.instance in
  Alcotest.(check bool) "200 <= sinks <= 1500" true (n >= 200 && n <= 1500);
  Alcotest.(check bool) "several groups" true (a.instance.n_groups >= 4);
  Alcotest.(check bool) "bound at least 5 ps" true
    (List.for_all
       (fun g -> Instance.bound_for a.instance g >= 5.)
       (List.init a.instance.n_groups Fun.id))

(* --- scale invariance ------------------------------------------------------ *)

let counter name =
  match Obs.Counter.find name with
  | Some c -> c
  | None -> Alcotest.failf "counter %s not registered" name

(* Routing commutes with rescaling the layout by a power of two: scale
   every coordinate by k and the unit RC parameters by 1/k and each
   wire-delay product cancels exactly (power-of-two scalings are exact
   in binary floating point), so the planner must take the very same
   decisions — identical topology, probe counts and grid traffic — while
   every length scales by exactly k.  Run against the unit-square
   regime, the shape that used to collapse the grid index into a single
   cell under its old absolute 1.0-unit cell floor and degrade k-NN into
   full scans. *)
let test_scale_invariance () =
  let c = Check.Gen.case ~regime:Check.Gen.Normalized ~seed:23L ~index:0 () in
  let inst = c.instance in
  let k = 16384. in
  let scale_pt (p : Geometry.Pt.t) =
    Geometry.Pt.make (k *. p.Geometry.Pt.x) (k *. p.Geometry.Pt.y)
  in
  let scaled =
    Instance.make
      ~params:
        (Rc.Wire.make
           ~r:(inst.params.Rc.Wire.r /. k)
           ~c:(inst.params.Rc.Wire.c /. k))
      ~rd:inst.rd ~bound:inst.bound ?group_bounds:inst.group_bounds
      ~source:(scale_pt inst.source) ~n_groups:inst.n_groups
      (Array.map
         (fun (s : Sink.t) ->
           Sink.make ~id:s.id ~loc:(scale_pt s.loc) ~cap:s.cap ~group:s.group)
         inst.sinks)
  in
  let c_q = counter "geometry.grid.queries" in
  let c_cells = counter "geometry.grid.cells_visited" in
  let c_entries = counter "geometry.grid.entries_scanned" in
  let route i =
    let q0 = Obs.Counter.value c_q in
    let cells0 = Obs.Counter.value c_cells in
    let e0 = Obs.Counter.value c_entries in
    let r = Astskew.Router.ast_dme ~jobs:1 i in
    ( r,
      Obs.Counter.value c_q - q0,
      Obs.Counter.value c_cells - cells0,
      Obs.Counter.value c_entries - e0 )
  in
  let r0, q0, cells0, entries0 = route inst in
  let r1, q1, cells1, entries1 = route scaled in
  (* Multi-cell occupancy on the unit square: ring scans must visit many
     more cells than there are queries, which a collapsed one-cell grid
     cannot do. *)
  Alcotest.(check bool) "normalized queries ran" true (q0 > 0);
  Alcotest.(check bool)
    "normalized grid spans multiple cells" true
    (cells0 > 2 * q0);
  (* Identical access pattern at both scales: no O(n^2) blow-up on the
     sub-unit instance. *)
  Alcotest.(check int) "grid queries match" q0 q1;
  Alcotest.(check int) "cells visited match" cells0 cells1;
  Alcotest.(check int) "entries scanned match" entries0 entries1;
  Alcotest.(check int) "probe count matches" r0.engine.nn_reprobes
    r1.engine.nn_reprobes;
  Alcotest.(check int) "probes saved match" r0.engine.nn_probes_saved
    r1.engine.nn_probes_saved;
  (* Bit-identical electrical results, exactly scaled geometry. *)
  Alcotest.(check bool)
    "per-sink delays bit-identical" true
    (r0.evaluation.delays = r1.evaluation.delays);
  Alcotest.(check bool)
    "wirelength scales exactly" true
    (r1.evaluation.wirelength = k *. r0.evaluation.wirelength);
  let rec same (a : Tree.t) (b : Tree.t) =
    match (a, b) with
    | Tree.Leaf sa, Tree.Leaf sb -> sa.id = sb.id
    | Tree.Node na, Tree.Node nb ->
      nb.pos.Geometry.Pt.x = k *. na.pos.Geometry.Pt.x
      && nb.pos.Geometry.Pt.y = k *. na.pos.Geometry.Pt.y
      && nb.llen = k *. na.llen
      && nb.rlen = k *. na.rlen
      && same na.left nb.left
      && same na.right nb.right
    | _ -> false
  in
  Alcotest.(check bool)
    "identical topology, exactly scaled embedding" true
    (same r0.routed.tree r1.routed.tree)

(* --- fuzz smoke + determinism --------------------------------------------- *)

let test_fuzz_smoke () =
  let s = Check.fuzz ~cases:24 ~seed:7L () in
  Alcotest.(check int) "all cases pass" 24 s.passed;
  Alcotest.(check bool) "ok" true (Check.Runner.ok s)

let test_incremental_oracle_huge () =
  (* The incremental-identity oracle at benchmark scale, serial and
     parallel: many merge rounds of cache reuse and invalidation on a
     generated (not hand-picked) instance. *)
  let c = Check.Gen.case ~regime:Check.Gen.Huge ~seed:5L ~index:0 () in
  match Check.Oracle.incremental_identity ~jobs:[ 1; 2 ] c.instance with
  | [] -> ()
  | findings ->
    Alcotest.failf "incremental identity violated:@ %a"
      (Format.pp_print_list Check.Oracle.pp_finding)
      findings

let test_trace_oracle () =
  (* The trace-identity oracle on a generated instance: tracing is
     semantically inert and the journal agrees with the engine stats. *)
  let c = Check.Gen.case ~regime:Check.Gen.Intermingled ~seed:11L ~index:0 () in
  match Check.Oracle.trace_identity ~jobs:[ 1; 2 ] c.instance with
  | [] -> ()
  | findings ->
    Alcotest.failf "trace identity violated:@ %a"
      (Format.pp_print_list Check.Oracle.pp_finding)
      findings

let test_sched_oracle () =
  (* The flight-recorder identity oracle on a generated instance: the
     scheduler recorder and progress heartbeat are semantically inert
     and every produced report is internally consistent. *)
  let c = Check.Gen.case ~regime:Check.Gen.Intermingled ~seed:13L ~index:0 () in
  match Check.Oracle.sched_identity ~jobs:[ 1; 2; 4 ] c.instance with
  | [] -> ()
  | findings ->
    Alcotest.failf "sched identity violated:@ %a"
      (Format.pp_print_list Check.Oracle.pp_finding)
      findings

let test_sched_oracle_r1_r3 () =
  (* The same oracle on the benchmark circuits the paper reports, so the
     recorder is proven inert on real sink distributions too. *)
  List.iter
    (fun name ->
      let spec = Option.get (Workload.Circuits.find name) in
      let inst =
        Workload.Circuits.instance spec ~n_groups:8
          ~scheme:Workload.Partition.Intermingled ~bound:10. ()
      in
      match Check.Oracle.sched_identity ~jobs:[ 1; 2; 4 ] inst with
      | [] -> ()
      | findings ->
        Alcotest.failf "%s: sched identity violated:@ %a" name
          (Format.pp_print_list Check.Oracle.pp_finding)
          findings)
    [ "r1"; "r3" ]

let test_replay_matches_run () =
  let findings = Check.replay ~seed:7L ~case:3 () in
  Alcotest.(check int) "clean case replays clean" 0 (List.length findings);
  let a = Check.fuzz ~cases:6 ~seed:99L () in
  let b = Check.fuzz ~cases:6 ~seed:99L () in
  let strip (s : Check.Runner.summary) =
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("passed", Obs.Json.Int s.passed);
           ( "failures",
             Obs.Json.List
               (List.map
                  (fun (f : Check.Runner.failure) ->
                    Obs.Json.String (Check.Runner.repro_text f))
                  s.failures) );
         ])
  in
  Alcotest.(check string) "runs are deterministic" (strip a) (strip b)

(* --- injection: violations are caught and shrunk --------------------------- *)

let test_injected_violation_caught_and_shrunk () =
  (* Inject a skew-bound violation into every case; each must be caught
     and shrink to a handful of sinks (the acceptance bar is <= 8). *)
  let s = Check.fuzz ~inject:true ~cases:4 ~seed:1L () in
  Alcotest.(check int) "every injected case fails" 4
    (List.length s.failures);
  List.iter
    (fun (f : Check.Runner.failure) ->
      let n = Instance.n_sinks f.shrunk in
      Alcotest.(check bool)
        (Printf.sprintf "case %d shrunk to %d sinks" f.case.index n)
        true (n <= 8);
      Alcotest.(check bool) "shrunk instance still fails" true
        (f.shrunk_findings <> []);
      let bound_violated =
        List.exists
          (fun (x : Check.Oracle.finding) ->
            List.exists
              (fun (v : Check.Audit.violation) ->
                v.invariant = "within-bound")
              x.violations)
          f.shrunk_findings
      in
      Alcotest.(check bool) "skew bound violation reported" true
        bound_violated)
    s.failures

(* --- auditor unit checks --------------------------------------------------- *)

let test_audit_flags_broken_trees () =
  let pt = Geometry.Pt.make in
  let sink id x y group =
    Sink.make ~id ~loc:(pt x y) ~cap:20. ~group
  in
  let s0 = sink 0 0. 0. 0 and s1 = sink 1 100. 0. 0 in
  let inst = Instance.make ~source:(pt 0. 0.) ~n_groups:1 [| s0; s1 |] in
  let node left right ~llen ~rlen =
    Tree.Node { pos = pt 50. 0.; left; right; llen; rlen }
  in
  (* A short edge bypassing the Tree.node constructor. *)
  let short =
    Tree.route (pt 0. 0.) (node (Tree.Leaf s0) (Tree.Leaf s1) ~llen:10. ~rlen:50.)
  in
  let vs = Check.Audit.structure inst short in
  Alcotest.(check bool) "short edge flagged" true
    (List.exists
       (fun (v : Check.Audit.violation) ->
         v.invariant = "edge-covers-distance")
       vs);
  (* A duplicate leaf (sink 0 twice, sink 1 missing). *)
  let dup =
    Tree.route (pt 0. 0.) (node (Tree.Leaf s0) (Tree.Leaf s0) ~llen:50. ~rlen:50.)
  in
  let vs = Check.Audit.structure inst dup in
  Alcotest.(check bool) "duplicate and missing sinks flagged" true
    (List.length
       (List.filter
          (fun (v : Check.Audit.violation) -> v.invariant = "sink-coverage")
          vs)
     >= 2);
  (* A report that lies about its wirelength. *)
  let good =
    Tree.route (pt 0. 0.) (node (Tree.Leaf s0) (Tree.Leaf s1) ~llen:50. ~rlen:50.)
  in
  let rep = Evaluate.run inst good in
  let lying = { rep with Evaluate.wirelength = rep.Evaluate.wirelength +. 1. } in
  Alcotest.(check bool) "wirelength lie flagged" true
    (List.exists
       (fun (v : Check.Audit.violation) ->
         v.invariant = "wirelength-match")
       (Check.Audit.semantics inst good lying))

(* --- shrinker -------------------------------------------------------------- *)

let test_shrinker_minimises () =
  (* Failure predicate: some group holds two sinks further than 5000
     apart.  The shrinker should cut everything else away. *)
  let inst = (Check.Gen.case ~seed:3L ~index:0 ()).instance in
  let fails (i : Instance.t) =
    let far = ref false in
    Array.iter
      (fun (a : Sink.t) ->
        Array.iter
          (fun (b : Sink.t) ->
            if a.group = b.group && Geometry.Pt.dist a.loc b.loc > 5000. then
              far := true)
          i.sinks)
      i.sinks;
    !far
  in
  if fails inst then begin
    let shrunk = Check.Shrink.run ~fails inst in
    Alcotest.(check bool) "still fails" true (fails shrunk);
    Alcotest.(check bool)
      (Printf.sprintf "shrunk from %d to %d sinks" (Instance.n_sinks inst)
         (Instance.n_sinks shrunk))
      true
      (Instance.n_sinks shrunk = 2)
  end
  else Alcotest.fail "seed 3 case 0 unexpectedly has no far pair"

let test_with_sinks_renumbers () =
  let inst = parse singleton_groups in
  let kept =
    List.filter
      (fun (s : Sink.t) -> s.id = 1 || s.id = 3)
      (Array.to_list inst.sinks)
  in
  match Check.Shrink.with_sinks inst kept with
  | None -> Alcotest.fail "non-empty subset"
  | Some sub ->
    Alcotest.(check int) "two sinks" 2 (Instance.n_sinks sub);
    Alcotest.(check int) "two groups" 2 sub.n_groups;
    Alcotest.(check (array int)) "dense groups" [| 0; 1 |]
      (Array.map (fun (s : Sink.t) -> s.group) sub.sinks);
    (* Per-group bounds follow their groups through the renumbering. *)
    Alcotest.(check (float 0.)) "group 1's bound survives" 10.
      (Instance.bound_for sub 0);
    Alcotest.(check (float 0.)) "group 3's bound survives" 50.
      (Instance.bound_for sub 1)

(* --- Io round-trip on fuzzed instances (satellite) ------------------------- *)

let test_io_roundtrip_fuzzed () =
  for index = 0 to 63 do
    let case = Check.Gen.case ~seed:11L ~index () in
    let text = Io.to_string case.instance in
    match Io.of_string text with
    | Error e -> Alcotest.failf "case %d does not re-parse: %s" index e
    | Ok inst' ->
      (* print ∘ parse ∘ print = print, and every field survives exactly:
         %.17g serialisation is lossless for finite doubles. *)
      Alcotest.(check string)
        (Printf.sprintf "case %d round-trips" index)
        text (Io.to_string inst');
      Alcotest.(check bool)
        (Printf.sprintf "case %d fields exact" index)
        true
        (case.instance.bound = inst'.bound
        && case.instance.rd = inst'.rd
        && case.instance.params = inst'.params
        && case.instance.group_bounds = inst'.group_bounds
        && Geometry.Pt.equal case.instance.source inst'.source
        && case.instance.sinks = inst'.sinks)
  done

(* --- repair idempotence (satellite) ---------------------------------------- *)

let check_second_repair_is_noop name inst (routed : Tree.routed) =
  let repaired, stats = Repair.run inst routed in
  Alcotest.(check bool)
    (Printf.sprintf "%s: no second-pass wire (+%g)" name stats.added_wire)
    true
    (stats.added_wire = 0.);
  Alcotest.(check int)
    (Printf.sprintf "%s: no second-pass edge adjustments" name)
    0 stats.adjusted_edges;
  Alcotest.(check int)
    (Printf.sprintf "%s: no second-pass lift sweeps" name)
    0 stats.lift_iterations;
  Alcotest.(check bool)
    (Printf.sprintf "%s: tree unchanged" name)
    true
    (Check.Audit.tree_equal routed repaired)

let test_repair_idempotent_fuzzed () =
  for index = 0 to 31 do
    let case = Check.Gen.case ~seed:5L ~index () in
    let r = Astskew.Router.ast_dme case.instance in
    check_second_repair_is_noop
      (Printf.sprintf "case %d (%s)" index
         (Check.Gen.regime_to_string case.regime))
      case.instance r.routed
  done

let test_repair_idempotent_r1_r3 () =
  List.iter
    (fun name ->
      let spec = Option.get (Workload.Circuits.find name) in
      let inst =
        Workload.Circuits.instance spec ~n_groups:8
          ~scheme:Workload.Partition.Intermingled ~bound:10. ()
      in
      let r = Astskew.Router.ast_dme inst in
      check_second_repair_is_noop name inst r.routed)
    [ "r1"; "r2"; "r3" ]

let () =
  Alcotest.run "check"
    [
      ( "frozen-cases",
        List.map
          (fun (name, text) ->
            Alcotest.test_case name `Quick (test_frozen (name, text)))
          frozen_cases );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_determinism;
          Alcotest.test_case "regime shapes" `Quick
            test_generator_regimes_shapes;
          Alcotest.test_case "huge regime" `Slow test_generator_huge;
          Alcotest.test_case "scale invariance" `Quick test_scale_invariance;
        ] );
      ( "runner",
        [
          Alcotest.test_case "fuzz smoke" `Slow test_fuzz_smoke;
          Alcotest.test_case "incremental oracle at scale" `Slow
            test_incremental_oracle_huge;
          Alcotest.test_case "trace oracle" `Slow test_trace_oracle;
          Alcotest.test_case "sched oracle" `Slow test_sched_oracle;
          Alcotest.test_case "sched oracle r1/r3" `Slow test_sched_oracle_r1_r3;
          Alcotest.test_case "replay + determinism" `Slow
            test_replay_matches_run;
          Alcotest.test_case "injected violation caught + shrunk" `Slow
            test_injected_violation_caught_and_shrunk;
        ] );
      ( "audit",
        [ Alcotest.test_case "flags broken trees" `Quick
            test_audit_flags_broken_trees ] );
      ( "shrink",
        [
          Alcotest.test_case "minimises to the core" `Quick
            test_shrinker_minimises;
          Alcotest.test_case "with_sinks renumbers" `Quick
            test_with_sinks_renumbers;
        ] );
      ( "io-roundtrip",
        [ Alcotest.test_case "fuzzed instances" `Quick test_io_roundtrip_fuzzed ] );
      ( "repair-idempotence",
        [
          Alcotest.test_case "fuzzed trees" `Slow test_repair_idempotent_fuzzed;
          Alcotest.test_case "r1-r3" `Slow test_repair_idempotent_r1_r3;
        ] );
    ]
