(** Fixed-size domain work pool with a deterministic parallel map.

    A pool owns [jobs - 1] worker domains (zero when [jobs = 1]); the
    domain that created the pool participates in every batch, so a pool
    of [jobs = n] computes with [n] domains total.  The only primitive is
    {!map_chunked}: results are gathered in input-index order and every
    output element is computed by exactly one domain, so for a pure
    function the result is bit-identical to [Array.map] regardless of
    [jobs], chunk size or scheduling.  This is the property the DME
    engine's parallel merge ranking relies on for jobs-invariant routed
    trees.

    Thread-safety contract for the mapped function: it runs concurrently
    on several domains, so it must not mutate shared state.  Reading
    shared immutable data (or data the caller guarantees is not mutated
    for the duration of the call, e.g. a frozen {!Geometry.Grid_index})
    is safe; {!Obs.Counter} increments are atomic and therefore also
    safe.  [map_chunked] is not reentrant: the mapped function must not
    itself call into the same pool. *)

type t

(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs] is
    clamped to [1 .. max_jobs ()]: the OCaml runtime hard-aborts the
    process once ~128 domains exist, so an oversized request (say
    [--jobs 100000]) is clamped with a one-time warning on stderr rather
    than crashing.  Pools are cheap enough to create per engine run but
    are designed for reuse across many [map_chunked] calls; call
    {!shutdown} when done to join the workers. *)
val create : ?jobs:int -> unit -> t

(** Largest pool size {!create} will grant:
    [min (8 * Domain.recommended_domain_count ()) 64], comfortably below
    the runtime's domain limit while still allowing oversubscription for
    latency-hiding experiments. *)
val max_jobs : unit -> int

(** Number of domains (including the caller) a batch runs on. *)
val jobs : t -> int

(** [map_chunked t ?sched ?label ?chunk f arr] is [Array.map f arr]
    computed by all domains of the pool.  The input is split into
    contiguous chunks of [chunk] elements (clamped to
    [1 .. length arr]; default: enough chunks to balance [4 * jobs]
    ways) which domains claim from a shared atomic cursor.  If [f]
    raises, the exception of the lowest-indexed failing chunk is
    re-raised on the calling domain after the batch completes —
    deterministic, whichever domain hit it.

    When [sched] is an enabled {!Obs.Sched} recorder, the call opens a
    ledger under [label] (default ["par.map"]; by convention
    ["phase.detail"]) and accounts every chunk — latency, running slot,
    pool occupancy — to it.  Recording observes scheduling but never
    steers it: chunk claiming, result placement and error propagation
    are byte-for-byte the uninstrumented ones, and with the default
    {!Obs.Sched.null} recorder the instrumented branch is never
    entered. *)
val map_chunked :
  t -> ?sched:Obs.Sched.t -> ?label:string -> ?chunk:int ->
  ('a -> 'b) -> 'a array -> 'b array

(** Join the worker domains.  Idempotent; after shutdown the pool still
    works but runs everything on the calling domain. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f (Some pool)] with a fresh pool of
    [jobs] domains, shutting it down when [f] returns or raises; with
    [jobs <= 1] it is [f None] and no domain is spawned.  The standard
    scoped-pool pattern used by the engine, the cluster planner and
    repair. *)
val with_pool : jobs:int -> (t option -> 'a) -> 'a

(** [default_jobs ()] is the process-wide default parallelism: the value
    of the [ASTSKEW_JOBS] environment variable when it parses as a
    positive integer, else 1 (fully serial).  Never exceeds
    {!max_jobs}. *)
val default_jobs : unit -> int

(** Parse a jobs value the way [default_jobs] does: positive integers
    only. *)
val jobs_of_string : string -> int option
