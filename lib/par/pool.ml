(* Worker domains block on [work] until a batch is posted; a batch is a
   closure every participant (workers + the posting domain) runs once,
   handed its own slot index — 0 for the posting domain, 1.. for the
   workers — so per-domain accounting can attribute work without any
   shared counters.  The closure itself loops over an atomic chunk
   cursor, so scheduling only decides which domain computes which chunk
   — never what any chunk computes or where its results land. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a batch is posted or on stop *)
  finished : Condition.t;  (** signalled when the last worker leaves a batch *)
  mutable batch : (int -> unit) option;  (** receives the running slot *)
  mutable epoch : int;  (** bumped per posted batch *)
  mutable running : int;  (** workers still inside the current batch *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let rec worker_loop t slot seen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.epoch = seen do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let batch = Option.get t.batch in
    Mutex.unlock t.mutex;
    (* Batches never raise: map_chunked catches per chunk. *)
    batch slot;
    Mutex.lock t.mutex;
    t.running <- t.running - 1;
    if t.running = 0 then Condition.broadcast t.finished;
    Mutex.unlock t.mutex;
    worker_loop t slot epoch
  end

(* The OCaml runtime aborts the whole process once ~128 domains exist
   (Domain.spawn raises only up to that hard limit, and other subsystems
   may already hold domains).  Cap pool sizes well below it, scaled to
   the machine: oversubscription beyond a few x cores only adds
   scheduling noise anyway. *)
let max_jobs () = Int.min (8 * Domain.recommended_domain_count ()) 64

let clamp_warned = Atomic.make false

let create ?(jobs = 1) () =
  let requested = jobs in
  let cap = max_jobs () in
  let jobs = Int.max 1 (Int.min requested cap) in
  if requested > cap && not (Atomic.exchange clamp_warned true) then
    Printf.eprintf
      "astskew: jobs=%d exceeds the runtime domain ceiling, clamping to %d\n%!"
      requested jobs;
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      epoch = 0;
      running = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Run [batch] on every domain of the pool and wait for all of them. *)
let run_batch t batch =
  if t.workers = [] then batch 0
  else begin
    Mutex.lock t.mutex;
    t.batch <- Some batch;
    t.epoch <- t.epoch + 1;
    t.running <- List.length t.workers;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    batch 0;
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex
  end

let map_chunked t ?(sched = Obs.Sched.null) ?(label = "par.map") ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c -> Int.max 1 (Int.min c n)
      | None -> Int.max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    (* The result array is unboxed ('b array, flat for floats) and filled
       in place — no ['b option array] double-materialization, which used
       to box every element and then copy the whole array once more.  It
       cannot be preallocated before a first value exists (there is no
       'b to fill with), so the first domain to complete an element seeds
       it with [Array.make n v]; the CAS makes losers of the seeding race
       write into the winner's array.  Every slot is overwritten by its
       own chunk's value exactly once, except slots of failing chunks —
       and those are never observed because the chunk's exception
       re-raises first. *)
    let no_results : 'b array = [||] in
    let results = Atomic.make no_results in
    let store i v =
      let r = Atomic.get results in
      let r =
        if r != no_results then r
        else begin
          let fresh = Array.make n v in
          if Atomic.compare_and_set results no_results fresh then fresh
          else Atomic.get results
        end
      in
      Array.unsafe_set r i v
    in
    let errors = Array.make n_chunks None in
    let cursor = Atomic.make 0 in
    (* The recorder sees scheduling, never steers it: chunks are claimed
       from the same cursor either way, and with a disabled recorder
       [ledger] is [None] and the loop below is the historical one. *)
    let ledger =
      Obs.Sched.map_begin sched ~label ~jobs:t.jobs ~items:n ~chunks:n_chunks
    in
    let batch slot =
      let rec go () =
        let c = Atomic.fetch_and_add cursor 1 in
        if c < n_chunks then begin
          let lo = c * chunk in
          let hi = Int.min n (lo + chunk) - 1 in
          (match ledger with
           | None -> (
             try
               for i = lo to hi do
                 store i (f arr.(i))
               done
             with exn -> errors.(c) <- Some exn)
           | Some r ->
             let t0 = Obs.Sched.chunk_begin r in
             (try
                for i = lo to hi do
                  store i (f arr.(i))
                done
              with exn -> errors.(c) <- Some exn);
             Obs.Sched.chunk_end r ~slot ~t0);
          go ()
        end
      in
      go ()
    in
    run_batch t batch;
    (match ledger with None -> () | Some r -> Obs.Sched.map_end r);
    Array.iter (function Some exn -> raise exn | None -> ()) errors;
    let r = Atomic.get results in
    assert (r != no_results);
    r
  end

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = create ~jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end

let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some j when j >= 1 -> Some j
  | _ -> None

let default_jobs () =
  match Option.bind (Sys.getenv_opt "ASTSKEW_JOBS") jobs_of_string with
  | Some j -> Int.min j (max_jobs ())
  | None -> 1
