(** Exact skew repair by wire snaking.

    Stage 1 revisits every merge node bottom-up.  For each group spanning
    both children the admissible range of the delay shift
    [x = extra_left - extra_right] is an interval; intersecting the
    intervals of all spanning groups and realizing the smallest |x| by
    lengthening one child edge enforces the intra-group bound at that
    node (classic Tsay-style balancing restricted to the groups that
    meet there).  When several spanning groups demand inconsistent
    shifts — the thesis' Instance 2 situation — a single edge cannot
    satisfy them all.

    Stage 2 therefore lifts individual sinks: leaf edges are group-pure,
    so snaking the leaf edge of every sink whose delay falls below
    [group max - bound] always converges to a feasible tree.  It runs
    only when stage 1 leaves a residual violation.

    A well-planned tree needs ~0 added wire; this pass is the hard
    guarantee, not the optimizer. *)

type stats = {
  added_wire : float;  (** total snaking wire added by both stages *)
  adjusted_edges : int;
  conflict_nodes : int;
      (** merge nodes whose spanning groups demanded inconsistent shifts
          in stage 1 (resolved by stage 2) *)
  lift_iterations : int;  (** stage-2 sweeps performed, 0 when not needed *)
  unresolved_groups : int;
      (** groups still violating the bound after repair; 0 in all
          supported configurations *)
}

(** [run ?trace inst routed] repairs the tree.  With [trace] enabled the
    whole pass is wrapped in a ["repair"] span and each cycle emits
    ["balance_pass"] / ["lift_sweep"] instants; the default
    {!Obs.Trace.null} emits nothing. *)
val run : ?trace:Obs.Trace.t -> Instance.t -> Tree.routed -> Tree.routed * stats
