(** Exact skew repair by wire snaking, on the flat post-order {!Arena}.

    Stage 1 revisits every merge node bottom-up.  For each group spanning
    both children the admissible range of the delay shift
    [x = extra_left - extra_right] is an interval; intersecting the
    intervals of all spanning groups and realizing the smallest |x| by
    lengthening one child edge enforces the intra-group bound at that
    node (classic Tsay-style balancing restricted to the groups that
    meet there).  When several spanning groups demand inconsistent
    shifts — the thesis' Instance 2 situation — a single edge cannot
    satisfy them all.

    Stage 2 therefore lifts individual sinks: leaf edges are group-pure,
    so snaking the leaf edge of every sink whose delay falls below
    [group max - bound] always converges to a feasible tree.  It runs
    only when stage 1 leaves a residual violation.

    The cycle is {e incremental}: each balance pass memoizes every
    node's downstream cap and group-interval slab, and later passes
    revisit only the dirty frontier — nodes whose own edges were
    adjusted (by balance ulp-chasing or a lift sweep) plus the nodes
    above anything that changed.  A clean node's inputs are bit-identical
    to its memo, so skipping it is exact, not approximate: incremental
    repair returns the same tree and stats bitwise as the from-scratch
    walk (guarded by [Oracle.repair_identity]).

    On large instances the cycle is also {e regional}: maximal subtrees
    of at most [ceil (nodes / k)] nodes (k the same auto target as
    [Dme.Cluster.auto_clusters], so [--clustered] regions and repair
    regions coincide at scale) first run their own local
    balance/evaluate/lift fixpoints — in parallel across [Par.Pool] when
    [jobs > 1], which is safe because regions are disjoint index ranges
    and balancing node [v] reads only [v]'s subtree — and the global
    cycle then runs on the residual dirty set.  Regions depend only on
    the tree shape and [config.regions], never on the jobs count, and
    regional fixpoints accept at twice the final slack (the global cycle
    enforces the real bound), so results are independent of [jobs].

    A well-planned tree needs ~0 added wire; this pass is the hard
    guarantee, not the optimizer. *)

type config = {
  max_cycles : int;
      (** balance/lift cycle budget, per fixpoint (each regional fixpoint
          and the global cycle get this many balance passes); default
          300 *)
  jobs : int;  (** worker domains for the regional phase; default
          [Par.Pool.default_jobs ()] *)
  incremental : bool;
      (** revisit only the dirty frontier between cycles; [false] forces
          the from-scratch walk every pass (same result bitwise — this
          knob exists for the identity oracle and for debugging) *)
  regions : int option;
      (** regional-fixpoint target count: [None] derives
          [clamp 1 64 (ceil (n_sinks / 1000))] (below 2 the regional
          phase is skipped and repair is the pure global cycle);
          [Some k] forces a target, letting tests and oracles exercise
          the regional machinery on small instances *)
}

val default_config : config

type stats = {
  added_wire : float;  (** total snaking wire added by both stages *)
  adjusted_edges : int;
  conflict_nodes : int;
      (** merge nodes whose spanning groups demanded inconsistent shifts
          on their first balance visit (resolved by stage 2) *)
  lift_iterations : int;
      (** stage-2 sweeps performed (regional + global), 0 when not
          needed *)
  unresolved_groups : int;
      (** groups still violating the bound after repair; 0 in all
          supported configurations *)
  cycles : int;  (** balance passes executed (regional + global) *)
  budget_exhausted : bool;
      (** some fixpoint hit [max_cycles] before converging *)
}

(** [run_arena ?config ?trace inst a] repairs the tree in place on its
    flat arena: only the [len] column is mutated.  This is the
    arena-native pipeline's entry point — {!run} is the pointer-tree
    wrapper (flatten, repair, rebuild).  With [trace] enabled the whole
    pass is wrapped in a ["repair"] span, each global cycle emits
    ["balance_pass"] / ["lift_sweep"] instants and a ["repair_cycle"]
    journal record, the regional phase emits one ["regional_repair"]
    instant plus a ["repair_region"] journal record per region, and
    exhausting a cycle budget emits a ["budget_exhausted"] instant.

    An enabled [sched] recorder ledgers the parallel regional phase
    under ["repair.regions"]; an enabled [progress] reporter is told
    the region count, sees a completion per converged regional
    fixpoint, and gets a heartbeat tick per global cycle.  Neither
    perturbs the repair: trees and stats stay bit-identical with them
    on or off. *)
val run_arena :
  ?config:config -> ?trace:Obs.Trace.t -> ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t -> Instance.t -> Arena.t -> stats

(** {!run_arena} on [Arena.of_routed routed], rebuilding the repaired
    pointer tree afterwards. *)
val run :
  ?config:config ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  Instance.t ->
  Tree.routed ->
  Tree.routed * stats
