module Eps = Geometry.Eps

type config = {
  max_cycles : int;
  jobs : int;
  incremental : bool;
  regions : int option;
}

let default_config =
  {
    max_cycles = 300;
    jobs = Par.Pool.default_jobs ();
    incremental = true;
    regions = None;
  }

type stats = {
  added_wire : float;
  adjusted_edges : int;
  conflict_nodes : int;
  lift_iterations : int;
  unresolved_groups : int;
  cycles : int;
  budget_exhausted : bool;
}

let c_balance = Obs.Counter.make "clocktree.repair.balance_passes"
let c_lift = Obs.Counter.make "clocktree.repair.lift_sweeps"
let c_adjusted = Obs.Counter.make "clocktree.repair.adjusted_edges"
let c_regions = Obs.Counter.make "clocktree.repair.regions"
let c_exhausted = Obs.Counter.make "clocktree.repair.budget_exhausted"

(* --- group-interval slab store ----------------------------------------

   Balancing needs, per node, the per-group interval of sink delays
   measured from that node.  The old implementation built an IntMap per
   node per pass; the arena keeps slabs — short (gid, lo, hi) runs
   sorted by gid — in growable parallel arrays, one store per regional
   fixpoint plus one residual store, so the parallel phase never
   appends to a shared cursor.  A node's slab is the [goff, goff+glen)
   window of its store; re-balancing appends a fresh slab and rolls the
   cursor back when it is bit-identical to the memo, so clean passes
   cost no store growth and the store compacts itself when dead slabs
   dominate. *)

type store = {
  mutable sg : int array;
  mutable slo : float array;
  mutable shi : float array;
  mutable used : int;
  mutable live : int;
  node_lo : int;
  node_hi : int;  (** arena range owning slabs here (filtered by gstore) *)
}

let store_create ~node_lo ~node_hi cap =
  let cap = Int.max cap 8 in
  {
    sg = Array.make cap (-1);
    slo = Array.make cap 0.;
    shi = Array.make cap 0.;
    used = 0;
    live = 0;
    node_lo;
    node_hi;
  }

let store_ensure s extra =
  let need = s.used + extra in
  if need > Array.length s.sg then begin
    let cap = Int.max need (2 * Array.length s.sg) in
    let sg = Array.make cap (-1) in
    let slo = Array.make cap 0. in
    let shi = Array.make cap 0. in
    Array.blit s.sg 0 sg 0 s.used;
    Array.blit s.slo 0 slo 0 s.used;
    Array.blit s.shi 0 shi 0 s.used;
    s.sg <- sg;
    s.slo <- slo;
    s.shi <- shi
  end

type state = {
  a : Arena.t;
  inst : Instance.t;
  slack : float;
  bcap : float array;  (** memoized downstream capacitance *)
  goff : int array;
  glen : int array;
  gstore : int array;
  stores : store array;
  dirty : Bytes.t;  (** must be re-balanced next pass *)
  changed : Bytes.t;  (** per-pass scratch: processed / cap-changed *)
  visited : Bytes.t;  (** balanced at least once (conflict accounting) *)
  down : float array;
  delay : float array;
  dsink : float array;
  pg : int array;  (** lift: pure group, -1 when mixed *)
  md : float array;  (** lift: min deficit over subtree sinks *)
  amount : float array;
  carry : float array;
}

let maybe_compact st idx s =
  if s.used > (2 * s.live) + 64 then begin
    let cap = Int.max 8 (s.live + (s.live / 2) + 16) in
    let sg = Array.make cap (-1) in
    let slo = Array.make cap 0. in
    let shi = Array.make cap 0. in
    let cur = ref 0 in
    for v = s.node_lo to s.node_hi do
      if st.gstore.(v) = idx && st.glen.(v) > 0 then begin
        let off = st.goff.(v) and m = st.glen.(v) in
        Array.blit s.sg off sg !cur m;
        Array.blit s.slo off slo !cur m;
        Array.blit s.shi off shi !cur m;
        st.goff.(v) <- !cur;
        cur := !cur + m
      end
    done;
    s.sg <- sg;
    s.slo <- slo;
    s.shi <- shi;
    s.used <- !cur
  end

(* Balance one merge node: replicate the pointer-walk expressions
   operation for operation (see the old balance_pass) so the arena pass
   is bit-identical to it.  Returns whether one of the node's child
   edges was adjusted. *)
let process_internal st v ~count_conflicts ~conflicts ~adjusted ~added =
  let a = st.a in
  let params = a.Arena.params in
  let l = a.Arena.left.(v) and r = a.Arena.right.(v) in
  let cap_l = st.bcap.(l) and cap_r = st.bcap.(r) in
  let llen0 = a.Arena.len.(l) and rlen0 = a.Arena.len.(r) in
  let wl0 = Rc.Elmore.wire_delay params ~len:llen0 ~load:cap_l in
  let wr0 = Rc.Elmore.wire_delay params ~len:rlen0 ~load:cap_r in
  let ls = st.stores.(st.gstore.(l)) and rs = st.stores.(st.gstore.(r)) in
  let l_off = st.goff.(l) and l_len = st.glen.(l) in
  let r_off = st.goff.(r) and r_len = st.glen.(r) in
  (* Admissible x = delta_left - delta_right: intersect, in ascending
     group order, one interval per group spanning both children.  Exact
     max/min make the intersection order-independent; ascending order
     still mirrors the old IntMap.fold. *)
  let acc_lo = ref Float.neg_infinity and acc_hi = ref Float.infinity in
  let j = ref 0 in
  for i = 0 to l_len - 1 do
    let g = ls.sg.(l_off + i) in
    while !j < r_len && rs.sg.(r_off + !j) < g do
      incr j
    done;
    if !j < r_len && rs.sg.(r_off + !j) = g then begin
      let bound = Instance.bound_for st.inst g in
      let llo = ls.slo.(l_off + i) and lhi = ls.shi.(l_off + i) in
      let rlo = rs.slo.(r_off + !j) and rhi = rs.shi.(r_off + !j) in
      let lo = rhi +. wr0 -. bound -. (llo +. wl0) in
      let hi = bound +. rlo +. wr0 -. (lhi +. wl0) in
      acc_lo := Float.max !acc_lo lo;
      acc_hi := Float.min !acc_hi hi
    end
  done;
  let x =
    if !acc_lo > !acc_hi +. Eps.tol then begin
      if count_conflicts then incr conflicts;
      (!acc_lo +. !acc_hi) /. 2.
    end
    else Eps.clamp !acc_lo !acc_hi 0.
  in
  let delta_l = Float.max 0. x and delta_r = Float.max 0. (-.x) in
  (* The skip floor is relative to the edge delay: at extreme RC corners
     delays reach ~1e9 ps, where an absolute 1e-9 ps floor sits far
     below one ulp and a repeated pass would chase its own recomputation
     noise, adjusting edges forever.  64 ulps stays well under
     Evaluate.within_bound's acceptance slack for any delay magnitude
     the acceptance check can resolve.  An adjustment whose resulting
     length is bit-identical is dropped as the no-op it is. *)
  let extend len cap w delta =
    if delta <= Float.max 1e-9 (64. *. epsilon_float *. Float.abs w) then
      (len, w)
    else begin
      let len' = Rc.Elmore.wire_for_delay params ~load:cap ~delay:(w +. delta) in
      if len' = len then (len, w)
      else begin
        added := !added +. (len' -. len);
        incr adjusted;
        (len', w +. delta)
      end
    end
  in
  let llen, wl = extend llen0 cap_l wl0 delta_l in
  let rlen, wr = extend rlen0 cap_r wr0 delta_r in
  a.Arena.len.(l) <- llen;
  a.Arena.len.(r) <- rlen;
  st.bcap.(v) <- cap_l +. cap_r +. (params.Rc.Wire.c *. (llen +. rlen));
  (* Merged slab: shift children by their (possibly extended) edge
     delays and hull the common groups.  Append to this node's store,
     then roll back if the result matches the memo bit for bit. *)
  let vs = st.stores.(st.gstore.(v)) in
  store_ensure vs (l_len + r_len);
  (* store_ensure may have swapped the arrays; always read through the
     record fields below. *)
  let base = vs.used in
  let i = ref 0 and jj = ref 0 and out = ref base in
  while !i < l_len || !jj < r_len do
    let gl = if !i < l_len then ls.sg.(l_off + !i) else max_int in
    let gr = if !jj < r_len then rs.sg.(r_off + !jj) else max_int in
    if gl < gr then begin
      vs.sg.(!out) <- gl;
      vs.slo.(!out) <- ls.slo.(l_off + !i) +. wl;
      vs.shi.(!out) <- ls.shi.(l_off + !i) +. wl;
      incr i;
      incr out
    end
    else if gr < gl then begin
      vs.sg.(!out) <- gr;
      vs.slo.(!out) <- rs.slo.(r_off + !jj) +. wr;
      vs.shi.(!out) <- rs.shi.(r_off + !jj) +. wr;
      incr jj;
      incr out
    end
    else begin
      vs.sg.(!out) <- gl;
      vs.slo.(!out) <-
        Float.min (ls.slo.(l_off + !i) +. wl) (rs.slo.(r_off + !jj) +. wr);
      vs.shi.(!out) <-
        Float.max (ls.shi.(l_off + !i) +. wl) (rs.shi.(r_off + !jj) +. wr);
      incr i;
      incr jj;
      incr out
    end
  done;
  let m = !out - base in
  let old_off = st.goff.(v) and old_len = st.glen.(v) in
  let same =
    old_len = m
    &&
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < m do
      if
        vs.sg.(old_off + !k) <> vs.sg.(base + !k)
        || vs.slo.(old_off + !k) <> vs.slo.(base + !k)
        || vs.shi.(old_off + !k) <> vs.shi.(base + !k)
      then ok := false;
      incr k
    done;
    !ok
  in
  if same then vs.used <- base
  else begin
    vs.used <- base + m;
    vs.live <- vs.live + m - old_len;
    st.goff.(v) <- base;
    st.glen.(v) <- m
  end;
  llen <> llen0 || rlen <> rlen0

(* One balance pass over [lo, hi].  With [full] every merge node is
   processed; otherwise only the dirty frontier: nodes whose own edges
   changed since their memo (dirty) or whose children were reprocessed
   this pass (changed).  A skipped node's inputs are bit-identical to
   its memo, so skipping is exact. *)
let balance_range st ~lo ~hi ~full ~conflicts ~adjusted ~added =
  Bytes.fill st.changed lo (hi - lo + 1) '\000';
  let processed = ref 0 in
  for v = lo to hi do
    let l = st.a.Arena.left.(v) in
    if l >= 0 then begin
      let must =
        full
        || Bytes.unsafe_get st.dirty v = '\001'
        || Bytes.unsafe_get st.changed l = '\001'
        || Bytes.unsafe_get st.changed (st.a.Arena.right.(v)) = '\001'
      in
      if must then begin
        incr processed;
        let count_conflicts = Bytes.unsafe_get st.visited v = '\000' in
        if count_conflicts then Bytes.unsafe_set st.visited v '\001';
        let self =
          process_internal st v ~count_conflicts ~conflicts ~adjusted ~added
        in
        Bytes.unsafe_set st.changed v '\001';
        Bytes.unsafe_set st.dirty v (if self then '\001' else '\000')
      end
    end
  done;
  !processed

(* One lift sweep over [lo, hi] (stage 2): pure-group and min-deficit
   memos ascending, snaking amounts with carry descending, then the
   edge adjustments ascending with incremental cap maintenance.  Nodes
   whose edges or downstream caps change are marked dirty for the next
   balance pass. *)
let lift_range st ~lo ~hi ~target ~adjusted ~added =
  let a = st.a in
  let params = a.Arena.params in
  for v = lo to hi do
    let l = a.Arena.left.(v) in
    if l < 0 then begin
      let g = a.Arena.group.(v) in
      st.pg.(v) <- g;
      st.md.(v) <- target.(g) -. st.dsink.(a.Arena.sink.(v))
    end
    else begin
      let r = a.Arena.right.(v) in
      st.pg.(v) <-
        (if st.pg.(l) >= 0 && st.pg.(l) = st.pg.(r) then st.pg.(l) else -1);
      st.md.(v) <- Float.min st.md.(l) st.md.(r)
    end
  done;
  st.carry.(hi) <- 0.;
  st.amount.(hi) <- 0.;
  for v = hi downto lo do
    let l = a.Arena.left.(v) in
    if l >= 0 then begin
      let r = a.Arena.right.(v) in
      let cv = st.carry.(v) in
      let al = if st.pg.(l) >= 0 then Float.max 0. (st.md.(l) -. cv) else 0. in
      st.amount.(l) <- al;
      st.carry.(l) <- cv +. al;
      let ar = if st.pg.(r) >= 0 then Float.max 0. (st.md.(r) -. cv) else 0. in
      st.amount.(r) <- ar;
      st.carry.(r) <- cv +. ar
    end
  done;
  Bytes.fill st.changed lo (hi - lo + 1) '\000';
  let half_slack = st.slack /. 2. in
  for v = lo to hi do
    let l = a.Arena.left.(v) in
    if l >= 0 then begin
      let r = a.Arena.right.(v) in
      let adj c =
        let amt = st.amount.(c) in
        if amt > half_slack then begin
          let len = a.Arena.len.(c) in
          let cap = st.bcap.(c) in
          let w = Rc.Elmore.wire_delay params ~len ~load:cap in
          let len' =
            Rc.Elmore.wire_for_delay params ~load:cap ~delay:(w +. amt)
          in
          if len' = len then false
          else begin
            added := !added +. (len' -. len);
            incr adjusted;
            a.Arena.len.(c) <- len';
            true
          end
        end
        else false
      in
      let al = adj l in
      let ar = adj r in
      if
        al || ar
        || Bytes.unsafe_get st.changed l = '\001'
        || Bytes.unsafe_get st.changed r = '\001'
      then begin
        st.bcap.(v) <-
          st.bcap.(l) +. st.bcap.(r)
          +. (params.Rc.Wire.c *. (a.Arena.len.(l) +. a.Arena.len.(r)));
        Bytes.unsafe_set st.changed v '\001';
        Bytes.unsafe_set st.dirty v '\001'
      end
    end
  done

(* --- regional fixpoints ----------------------------------------------- *)

type region = { rlo : int; rhi : int; rstore : int }

type region_summary = {
  r_root : int;
  r_sinks : int;
  r_cycles : int;
  r_lifts : int;
  r_adjusted : int;
  r_conflicts : int;
  r_added : float;
  r_exhausted : bool;
}

(* Fixpoint regions: {!Arena.windows} — the maximal subtrees of at most
   [ceil (n / k)] nodes (and at least one merge node), k the auto-cluster
   density target — a pure function of the tree shape and
   [config.regions], never of the jobs count, so the decomposition (and
   with it every float) is identical for any parallelism.  Sharing the
   decomposition with the parallel evaluation kernels keeps the two
   policies provably in sync. *)
let select_regions (a : Arena.t) cfg =
  Array.mapi
    (fun i (lo, hi) -> { rlo = lo; rhi = hi; rstore = i + 1 })
    (Arena.windows ?count:cfg.regions a)

(* Local balance/evaluate/lift fixpoint on one region.  Delays are
   measured from the region root (delay 0 there): intra-region skews are
   offset-free, so balancing and lifting inside the region are exactly
   the global operations restricted to the subtree.  Acceptance uses
   twice the global slack — the local optimum can sit an ulp away from
   the global one, and the global cycle enforces the true slack
   afterwards; the looser local gate keeps re-repair a no-op.  Runs on
   worker domains: touches only this region's index range and store,
   and never the trace context. *)
let region_fixpoint st cfg (rg : region) =
  let a = st.a in
  let lo = rg.rlo and hi = rg.rhi in
  let n_groups = st.inst.Instance.n_groups in
  let glo = Array.make n_groups Float.infinity in
  let ghi = Array.make n_groups Float.neg_infinity in
  let target = Array.make n_groups Float.neg_infinity in
  let added = ref 0. and adjusted = ref 0 and conflicts = ref 0 in
  let store = st.stores.(rg.rstore) in
  let accept_slack = 2. *. st.slack in
  let cycles = ref 0 and lifts = ref 0 in
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    maybe_compact st rg.rstore store;
    Obs.Counter.incr c_balance;
    let _ : int =
      balance_range st ~lo ~hi ~full:(not cfg.incremental) ~conflicts
        ~adjusted ~added
    in
    incr cycles;
    Arena.downstream_rc_range ~into:st.down ~lo ~hi a;
    Arena.elmore_range ~down:st.down ~root_delay:0. ~into:st.delay ~lo ~hi a;
    Array.fill glo 0 n_groups Float.infinity;
    Array.fill ghi 0 n_groups Float.neg_infinity;
    for v = lo to hi do
      if a.Arena.left.(v) < 0 then begin
        let d = st.delay.(v) in
        st.dsink.(a.Arena.sink.(v)) <- d;
        let g = a.Arena.group.(v) in
        glo.(g) <- Float.min glo.(g) d;
        ghi.(g) <- Float.max ghi.(g) d
      end
    done;
    let ok = ref true in
    for g = 0 to n_groups - 1 do
      let w = if glo.(g) > ghi.(g) then 0. else ghi.(g) -. glo.(g) in
      if w > Instance.bound_for st.inst g +. accept_slack then ok := false
    done;
    if !ok then continue := false
    else if !cycles > cfg.max_cycles then begin
      exhausted := true;
      continue := false
    end
    else begin
      Obs.Counter.incr c_lift;
      incr lifts;
      Array.fill target 0 n_groups Float.neg_infinity;
      for v = lo to hi do
        if a.Arena.left.(v) < 0 then begin
          let g = a.Arena.group.(v) in
          target.(g) <-
            Float.max target.(g)
              (st.dsink.(a.Arena.sink.(v)) -. Instance.bound_for st.inst g)
        end
      done;
      lift_range st ~lo ~hi ~target ~adjusted ~added
    end
  done;
  {
    r_root = hi;
    r_sinks = (a.Arena.size.(hi) + 1) / 2;
    r_cycles = !cycles;
    r_lifts = !lifts;
    r_adjusted = !adjusted;
    r_conflicts = !conflicts;
    r_added = !added;
    r_exhausted = !exhausted;
  }

(* --- driver ----------------------------------------------------------- *)

let make_state (inst : Instance.t) (a : Arena.t) regions =
  let n = a.Arena.n in
  let gstore = Array.make n 0 in
  Array.iter
    (fun rg ->
      Array.fill gstore rg.rlo (rg.rhi - rg.rlo + 1) rg.rstore)
    regions;
  let stores = Array.make (Array.length regions + 1) (store_create ~node_lo:0 ~node_hi:(n - 1) 8) in
  stores.(0) <- store_create ~node_lo:0 ~node_hi:(n - 1) (n / 2);
  Array.iter
    (fun rg ->
      stores.(rg.rstore) <-
        store_create ~node_lo:rg.rlo ~node_hi:rg.rhi
          (2 * (rg.rhi - rg.rlo + 1)))
    regions;
  let st =
    {
      a;
      inst;
      slack = Evaluate.default_slack;
      bcap = Array.make n 0.;
      goff = Array.make n 0;
      glen = Array.make n 0;
      gstore;
      stores;
      dirty = Bytes.make n '\001';
      changed = Bytes.make n '\000';
      visited = Bytes.make n '\000';
      down = Array.make n 0.;
      delay = Array.make n 0.;
      dsink = Array.make (Instance.n_sinks inst) 0.;
      pg = Array.make n (-1);
      md = Array.make n 0.;
      amount = Array.make n 0.;
      carry = Array.make n 0.;
    }
  in
  (* Leaf slabs are the constant point interval at delay 0; written once,
     never replaced. *)
  for v = 0 to n - 1 do
    if a.Arena.left.(v) < 0 then begin
      st.bcap.(v) <- a.Arena.scap.(v);
      let s = stores.(gstore.(v)) in
      store_ensure s 1;
      s.sg.(s.used) <- a.Arena.group.(v);
      s.slo.(s.used) <- 0.;
      s.shi.(s.used) <- 0.;
      st.goff.(v) <- s.used;
      st.glen.(v) <- 1;
      s.used <- s.used + 1;
      s.live <- s.live + 1
    end
  done;
  st

(* In-place repair of an already-flattened tree: the arena's [len]
   column is mutated; everything else is read-only.  This is the
   arena-native router pipeline's entry point — no pointer tree is built
   or consumed. *)
let run_arena ?(config = default_config) ?(trace = Obs.Trace.null)
    ?(sched = Obs.Sched.null) ?(progress = Obs.Progress.null)
    (inst : Instance.t) (a : Arena.t) =
  let tracing = Obs.Trace.enabled trace in
  let slack = Evaluate.default_slack in
  let go () =
    let regions = select_regions a config in
    let st = make_state inst a regions in
    let n = a.Arena.n in
    (* Phase 1: regional fixpoints, in parallel when jobs > 1.  Regions
       are disjoint index ranges with disjoint stores, so workers never
       write the same word; summaries are folded in region index order,
       keeping every accumulated float deterministic for any jobs. *)
    if Array.length regions > 0 then
      Obs.Progress.add_regions progress ~depth:0 (Array.length regions);
    let fixpoint r =
      let s = region_fixpoint st config r in
      Obs.Progress.region_done progress ~depth:0;
      s
    in
    let summaries =
      if Array.length regions = 0 then [||]
      else if config.jobs <= 1 || Array.length regions < 2 then
        Array.map fixpoint regions
      else
        Par.Pool.with_pool ~jobs:config.jobs (fun pool ->
            match pool with
            | None -> Array.map fixpoint regions
            | Some p ->
              Par.Pool.map_chunked p ~sched ~label:"repair.regions" ~chunk:1
                fixpoint regions)
    in
    Obs.Counter.add c_regions (Array.length summaries);
    let added = ref 0. and adjusted = ref 0 and conflicts = ref 0 in
    let cycles = ref 0 and lifts = ref 0 in
    let exhausted = ref false in
    Array.iter
      (fun s ->
        added := !added +. s.r_added;
        adjusted := !adjusted + s.r_adjusted;
        conflicts := !conflicts + s.r_conflicts;
        cycles := !cycles + s.r_cycles;
        lifts := !lifts + s.r_lifts;
        if s.r_exhausted then exhausted := true)
      summaries;
    if tracing && Array.length summaries > 0 then begin
      Obs.Trace.instant trace ~cat:"clocktree.repair"
        ~args:[ ("regions", Obs.Json.Int (Array.length summaries)) ]
        "regional_repair";
      Array.iter
        (fun s ->
          Obs.Trace.journal trace
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.String "repair_region");
                 ("root", Obs.Json.Int s.r_root);
                 ("sinks", Obs.Json.Int s.r_sinks);
                 ("cycles", Obs.Json.Int s.r_cycles);
                 ("lifts", Obs.Json.Int s.r_lifts);
                 ("adjusted", Obs.Json.Int s.r_adjusted);
                 ("exhausted", Obs.Json.Bool s.r_exhausted);
               ]))
        summaries
    end;
    if !exhausted then Obs.Counter.incr c_exhausted;
    (* Phase 2: the global cycle, incremental over the residual dirty
       set (all of the tree on the first pass when no regional phase
       ran — every node starts dirty). *)
    let glo = Array.make inst.Instance.n_groups Float.infinity in
    let ghi = Array.make inst.Instance.n_groups Float.neg_infinity in
    let target = Array.make inst.Instance.n_groups Float.neg_infinity in
    let iter = ref 0 in
    let finished = ref false in
    let g_lifts = ref 0 and unresolved = ref 0 in
    while not !finished do
      Obs.Progress.tick progress;
      Array.iteri (fun i s -> maybe_compact st i s) st.stores;
      Obs.Counter.incr c_balance;
      if tracing then
        Obs.Trace.instant trace ~cat:"clocktree.repair"
          ~args:[ ("cycle", Obs.Json.Int !iter) ]
          "balance_pass";
      let processed =
        balance_range st ~lo:0 ~hi:(n - 1) ~full:(not config.incremental)
          ~conflicts ~adjusted ~added
      in
      incr cycles;
      let down0 = Arena.downstream_rc ~into:st.down a in
      Arena.elmore ~down:st.down ~down0 ~into:st.delay a;
      Arena.delays_by_sink ~delay:st.delay ~into:st.dsink a;
      Array.fill glo 0 (Array.length glo) Float.infinity;
      Array.fill ghi 0 (Array.length ghi) Float.neg_infinity;
      Array.iter
        (fun (s : Sink.t) ->
          glo.(s.group) <- Float.min glo.(s.group) st.dsink.(s.id);
          ghi.(s.group) <- Float.max ghi.(s.group) st.dsink.(s.id))
        inst.sinks;
      let within = ref true in
      for g = 0 to Array.length glo - 1 do
        let w = if glo.(g) > ghi.(g) then 0. else ghi.(g) -. glo.(g) in
        if w > Instance.bound_for inst g +. slack then within := false
      done;
      if tracing then
        Obs.Trace.journal trace
          (Obs.Json.Obj
             [
               ("type", Obs.Json.String "repair_cycle");
               ("cycle", Obs.Json.Int !iter);
               ("processed", Obs.Json.Int processed);
               ("adjusted", Obs.Json.Int !adjusted);
               ("added_wire", Obs.Json.Float !added);
               ("within", Obs.Json.Bool !within);
             ]);
      if !within then finished := true
      else if !iter >= config.max_cycles then begin
        for g = 0 to Array.length glo - 1 do
          let w = if glo.(g) > ghi.(g) then 0. else ghi.(g) -. glo.(g) in
          if w > Instance.bound_for inst g +. slack then incr unresolved
        done;
        exhausted := true;
        Obs.Counter.incr c_exhausted;
        if tracing then
          Obs.Trace.instant trace ~cat:"clocktree.repair"
            ~args:[ ("cycle", Obs.Json.Int !iter) ]
            "budget_exhausted";
        finished := true
      end
      else begin
        Obs.Counter.incr c_lift;
        if tracing then
          Obs.Trace.instant trace ~cat:"clocktree.repair"
            ~args:
              [
                ("cycle", Obs.Json.Int !iter);
                ("added_wire", Obs.Json.Float !added);
              ]
            "lift_sweep";
        Array.fill target 0 (Array.length target) Float.neg_infinity;
        Array.iter
          (fun (s : Sink.t) ->
            target.(s.group) <-
              Float.max target.(s.group)
                (st.dsink.(s.id) -. Instance.bound_for inst s.group))
          inst.sinks;
        lift_range st ~lo:0 ~hi:(n - 1) ~target ~adjusted ~added;
        incr g_lifts;
        incr iter
      end
    done;
    Obs.Counter.add c_adjusted !adjusted;
    {
      added_wire = !added;
      adjusted_edges = !adjusted;
      conflict_nodes = !conflicts;
      lift_iterations = !lifts + !g_lifts;
      unresolved_groups = !unresolved;
      cycles = !cycles;
      budget_exhausted = !exhausted;
    }
  in
  if tracing then Obs.Trace.span trace ~cat:"clocktree.repair" "repair" go
  else go ()

let run ?config ?trace ?sched ?progress (inst : Instance.t) (r : Tree.routed)
    =
  let a = Arena.of_routed inst.params ~rd:inst.rd r in
  let stats = run_arena ?config ?trace ?sched ?progress inst a in
  (Arena.to_routed a, stats)
