module IntMap = Map.Make (Int)
module Interval = Geometry.Interval

type stats = {
  added_wire : float;
  adjusted_edges : int;
  conflict_nodes : int;
  lift_iterations : int;
  unresolved_groups : int;
}

let c_balance = Obs.Counter.make "clocktree.repair.balance_passes"
let c_lift = Obs.Counter.make "clocktree.repair.lift_sweeps"
let c_adjusted = Obs.Counter.make "clocktree.repair.adjusted_edges"

(* Stage 1: per-node balancing.  Returns the rebuilt subtree, its
   downstream capacitance and per-group delay intervals from the root. *)
let balance_pass (inst : Instance.t) tree ~added_wire ~adjusted ~conflicts =
  let params = inst.params in
  let rec go t =
    match t with
    | Tree.Leaf s ->
      (t, s.Sink.cap, IntMap.singleton s.Sink.group (Interval.point 0.))
    | Tree.Node n ->
      let left, cap_l, iv_l = go n.left in
      let right, cap_r, iv_r = go n.right in
      let wl = Rc.Elmore.wire_delay params ~len:n.llen ~load:cap_l in
      let wr = Rc.Elmore.wire_delay params ~len:n.rlen ~load:cap_r in
      (* Admissible x = delta_left - delta_right for one spanning group:
         after shifting, the merged interval width must stay <= bound. *)
      let wanted =
        IntMap.fold
          (fun g (l : Interval.t) acc ->
            match IntMap.find_opt g iv_r with
            | None -> acc
            | Some rt ->
              let bound = Instance.bound_for inst g in
              let lo = rt.Interval.hi +. wr -. bound -. (l.lo +. wl) in
              let hi = bound +. rt.Interval.lo +. wr -. (l.hi +. wl) in
              Interval.inter acc (Interval.make lo hi))
          iv_l
          (Interval.make Float.neg_infinity Float.infinity)
      in
      let x =
        if Interval.is_empty wanted then begin
          incr conflicts;
          Interval.mid wanted
        end
        else Interval.clamp wanted 0.
      in
      let delta_l = Float.max 0. x and delta_r = Float.max 0. (-.x) in
      (* The skip floor is relative to the edge delay: at extreme RC
         corners delays reach ~1e9 ps, where an absolute 1e-9 ps floor
         sits far below one ulp and a repeated pass would chase its own
         recomputation noise, adjusting edges forever.  64 ulps stays
         well under Evaluate.within_bound's acceptance slack for any
         delay magnitude the acceptance check can resolve.  An
         adjustment whose resulting length is bit-identical is dropped
         as the no-op it is. *)
      let extend len cap w delta =
        if delta <= Float.max 1e-9 (64. *. epsilon_float *. Float.abs w) then
          (len, w)
        else begin
          let len' =
            Rc.Elmore.wire_for_delay params ~load:cap ~delay:(w +. delta)
          in
          if len' = len then (len, w)
          else begin
            added_wire := !added_wire +. (len' -. len);
            incr adjusted;
            (len', w +. delta)
          end
        end
      in
      let llen, wl = extend n.llen cap_l wl delta_l in
      let rlen, wr = extend n.rlen cap_r wr delta_r in
      let shift w iv = IntMap.map (Interval.shift w) iv in
      let merged =
        IntMap.union
          (fun _ a b -> Some (Interval.hull a b))
          (shift wl iv_l) (shift wr iv_r)
      in
      let cap = cap_l +. cap_r +. (params.c *. (llen +. rlen)) in
      (Tree.Node { n with left; right; llen; rlen }, cap, merged)
  in
  let tree, _, _ = go tree in
  tree

(* Stage 2: lift slow sinks by snaking the edges of *maximal group-pure
   subtrees* — subtrees whose sinks all belong to one group.  Such edges
   always exist (leaf edges are pure) and snaking them delays exactly one
   group; placing the wire as high as possible is also the cheapest spot
   (larger downstream capacitance means less length per picosecond).
   Each subtree edge absorbs the minimum deficit of its sinks; the
   residual is handled recursively by deeper pure edges.  The added wire
   capacitance perturbs other delays, so the caller re-runs the balance
   pass after each sweep. *)
let lift_sweep (inst : Instance.t) (routed : Tree.routed) report ~slack
    ~added_wire ~adjusted =
  let params = inst.params in
  let target = Array.make inst.n_groups Float.neg_infinity in
  Array.iter
    (fun (s : Sink.t) ->
      target.(s.group) <-
        Float.max target.(s.group)
          (report.Evaluate.delays.(s.id) -. Instance.bound_for inst s.group))
    inst.sinks;
  let deficit (s : Sink.t) =
    target.(s.group) -. report.Evaluate.delays.(s.id)
  in
  (* (is the subtree group-pure?, min deficit over its sinks) *)
  let rec pure_min = function
    | Tree.Leaf s -> (Some s.Sink.group, deficit s)
    | Tree.Node n ->
      let gl, dl = pure_min n.left and gr, dr = pure_min n.right in
      let g = match (gl, gr) with
        | Some a, Some b when a = b -> Some a
        | _ -> None
      in
      (g, Float.min dl dr)
  in
  (* Rebuild bottom-up; [carry] is the delay already added on pure edges
     above (within the same pure chain).  Returns the new subtree and its
     downstream capacitance. *)
  let rec rebuild t carry =
    match t with
    | Tree.Leaf s -> (t, s.Sink.cap)
    | Tree.Node n ->
      let handle child len =
        let amount =
          match pure_min child with
          | Some _, min_def -> Float.max 0. (min_def -. carry)
          | None, _ -> 0.
        in
        let child', cap = rebuild child (carry +. amount) in
        let len' =
          if amount > slack /. 2. then begin
            let w = Rc.Elmore.wire_delay params ~len ~load:cap in
            let len' =
              Rc.Elmore.wire_for_delay params ~load:cap ~delay:(w +. amount)
            in
            if len' = len then len
            else begin
              added_wire := !added_wire +. (len' -. len);
              incr adjusted;
              len'
            end
          end
          else len
        in
        (child', cap, len')
      in
      let left, cap_l, llen = handle n.left n.llen in
      let right, cap_r, rlen = handle n.right n.rlen in
      let cap = cap_l +. cap_r +. (params.c *. (llen +. rlen)) in
      (Tree.Node { n with left; right; llen; rlen }, cap)
  in
  let tree, _ = rebuild routed.tree 0. in
  { routed with tree }

(* The balance pass alone is exact whenever no merge node has conflicting
   spanning groups; with conflicts, alternating lift sweeps (which align
   group offsets through group-pure leaf edges) with balance passes
   (which re-establish exactness everywhere else) converges. *)
let run ?(trace = Obs.Trace.null) (inst : Instance.t) (r : Tree.routed) =
  let tracing = Obs.Trace.enabled trace in
  (* Acceptance slack matches Evaluate.within_bound's default. *)
  let slack = 1e-4 in
  let max_cycles = 300 in
  let added_wire = ref 0. in
  let adjusted = ref 0 in
  let conflicts = ref 0 in
  let rec cycle routed iter =
    let first_conflicts = if iter = 0 then conflicts else ref 0 in
    Obs.Counter.incr c_balance;
    if tracing then
      Obs.Trace.instant trace ~cat:"clocktree.repair"
        ~args:[ ("cycle", Obs.Json.Int iter) ]
        "balance_pass";
    let tree =
      balance_pass inst routed.Tree.tree ~added_wire ~adjusted
        ~conflicts:first_conflicts
    in
    let routed = { routed with Tree.tree } in
    let report = Evaluate.run inst routed in
    if Evaluate.within_bound ~slack inst report then (routed, iter, 0)
    else if iter >= max_cycles then begin
      let unresolved = ref 0 in
      Array.iteri
        (fun g w ->
          if w > Instance.bound_for inst g +. slack then incr unresolved)
        report.group_skew;
      (routed, iter, !unresolved)
    end
    else begin
      Obs.Counter.incr c_lift;
      if tracing then
        Obs.Trace.instant trace ~cat:"clocktree.repair"
          ~args:
            [
              ("cycle", Obs.Json.Int iter);
              ("added_wire", Obs.Json.Float !added_wire);
            ]
          "lift_sweep";
      let routed = lift_sweep inst routed report ~slack ~added_wire ~adjusted in
      cycle routed (iter + 1)
    end
  in
  let routed, lift_iterations, unresolved_groups =
    if tracing then
      Obs.Trace.span trace ~cat:"clocktree.repair" "repair" (fun () ->
          cycle r 0)
    else cycle r 0
  in
  Obs.Counter.add c_adjusted !adjusted;
  ( routed,
    {
      added_wire = !added_wire;
      adjusted_edges = !adjusted;
      conflict_nodes = !conflicts;
      lift_iterations;
      unresolved_groups;
    } )
