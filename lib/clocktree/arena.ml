module Pt = Geometry.Pt

type t = {
  n : int;
  n_sinks : int;
  source : Pt.t;
  source_len : float;
  rd : float;
  params : Rc.Wire.params;
  left : int array;
  right : int array;
  parent : int array;
  size : int array;
  sink : int array;
  group : int array;
  scap : float array;
  pos : Pt.t array;
  len : float array;
}

let is_leaf a v = a.left.(v) < 0

(* Iterative post-order flatten: an explicit frame stack replaces the
   recursion (degenerate combs reach depths the OCaml stack cannot).
   Each internal node is visited three times: descend left, descend
   right (recording the left subtree's root as the last index emitted),
   then emit itself. *)
let of_routed (params : Rc.Wire.params) ~rd (r : Tree.routed) =
  let n =
    let count = ref 0 in
    let stack = ref [ r.tree ] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | t :: rest ->
        incr count;
        (match t with
         | Tree.Leaf _ -> stack := rest
         | Tree.Node nd -> stack := nd.left :: nd.right :: rest)
    done;
    !count
  in
  let left = Array.make n (-1) in
  let right = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let size = Array.make n 1 in
  let sink = Array.make n (-1) in
  let group = Array.make n (-1) in
  let scap = Array.make n 0. in
  let pos = Array.make n r.source in
  let len = Array.make n 0. in
  let n_sinks = ref 0 in
  let next = ref 0 in
  (* Frame stack: node, visit stage (0 = fresh, 1 = left done), left
     child's arena index once known. *)
  let st_node = Array.make (n + 1) r.tree in
  let st_stage = Array.make (n + 1) 0 in
  let st_left = Array.make (n + 1) (-1) in
  let sp = ref 0 in
  let push t =
    st_node.(!sp) <- t;
    st_stage.(!sp) <- 0;
    incr sp
  in
  push r.tree;
  while !sp > 0 do
    let f = !sp - 1 in
    match st_node.(f) with
    | Tree.Leaf s ->
      let v = !next in
      incr next;
      decr sp;
      sink.(v) <- s.Sink.id;
      group.(v) <- s.Sink.group;
      scap.(v) <- s.Sink.cap;
      pos.(v) <- s.Sink.loc;
      incr n_sinks
    | Tree.Node nd ->
      if st_stage.(f) = 0 then begin
        st_stage.(f) <- 1;
        push nd.left
      end
      else if st_stage.(f) = 1 then begin
        st_left.(f) <- !next - 1;
        st_stage.(f) <- 2;
        push nd.right
      end
      else begin
        let l = st_left.(f) and rc = !next - 1 in
        let v = !next in
        incr next;
        decr sp;
        left.(v) <- l;
        right.(v) <- rc;
        parent.(l) <- v;
        parent.(rc) <- v;
        size.(v) <- size.(l) + size.(rc) + 1;
        pos.(v) <- nd.pos;
        len.(l) <- nd.llen;
        len.(rc) <- nd.rlen
      end
  done;
  len.(n - 1) <- r.source_len;
  {
    n;
    n_sinks = !n_sinks;
    source = r.source;
    source_len = r.source_len;
    rd;
    params;
    left;
    right;
    parent;
    size;
    sink;
    group;
    scap;
    pos;
    len;
  }

let sink_record a v =
  { Sink.id = a.sink.(v); loc = a.pos.(v); cap = a.scap.(v); group = a.group.(v) }

(* Iterative rebuild: an ascending scan with a value stack.  Post order
   puts the left subtree's value below the right's, so an internal node
   pops right then left. *)
let to_routed a =
  let stack = Array.make a.n (Tree.Leaf (sink_record a 0)) in
  let sp = ref 0 in
  for v = 0 to a.n - 1 do
    let l = a.left.(v) in
    if l < 0 then begin
      stack.(!sp) <- Tree.Leaf (sink_record a v);
      incr sp
    end
    else begin
      let r = a.right.(v) in
      let rt = stack.(!sp - 1) and lt = stack.(!sp - 2) in
      sp := !sp - 2;
      stack.(!sp) <-
        Tree.Node
          {
            pos = a.pos.(v);
            left = lt;
            right = rt;
            llen = a.len.(l);
            rlen = a.len.(r);
          };
      incr sp
    end
  done;
  { Tree.tree = stack.(0); source = a.source; source_len = a.source_len }

let total_edge_length a =
  let s = ref 0. in
  for v = 0 to a.n - 1 do
    s := !s +. a.len.(v)
  done;
  !s

(* The pi-segment half-capacitance of an edge, exactly as
   Tree.to_rctree lumps it. *)
let half (p : Rc.Wire.params) len = p.c *. len /. 2.

let downstream_rc_range ~into ~lo ~hi a =
  let p = a.params in
  for v = lo to hi do
    let l = a.left.(v) in
    if l < 0 then into.(v) <- a.scap.(v) +. half p a.len.(v)
    else begin
      let r = a.right.(v) in
      (* Rctree.downstream_cap's reverse scan folds the right child in
         before the left (higher indexes first); keep that order. *)
      into.(v) <-
        half p a.len.(v) +. half p a.len.(l) +. half p a.len.(r)
        +. into.(r) +. into.(l)
    end
  done

let downstream_rc ~into a =
  downstream_rc_range ~into ~lo:0 ~hi:(a.n - 1) a;
  half a.params a.source_len +. into.(a.n - 1)

let elmore_range ~down ~root_delay ~into ~lo ~hi a =
  let k = Rc.Wire.ps_per_ohm_ff in
  into.(hi) <- root_delay;
  for v = hi - 1 downto lo do
    into.(v) <-
      into.(a.parent.(v)) +. (k *. (a.params.r *. a.len.(v)) *. down.(v))
  done

let elmore ~down ~down0 ~into a =
  let k = Rc.Wire.ps_per_ohm_ff in
  let d0 = k *. a.rd *. down0 in
  let root = a.n - 1 in
  let root_delay =
    d0 +. (k *. (a.params.r *. a.len.(root)) *. down.(root))
  in
  elmore_range ~down ~root_delay ~into ~lo:0 ~hi:root a

let delays_by_sink ~delay ~into a =
  for v = 0 to a.n - 1 do
    if a.left.(v) < 0 then into.(a.sink.(v)) <- delay.(v)
  done

let delays_by_sink_range ~delay ~into ~lo ~hi a =
  for v = lo to hi do
    if a.left.(v) < 0 then into.(a.sink.(v)) <- delay.(v)
  done

(* --- evaluation windows ------------------------------------------------ *)

(* Disjoint maximal subtrees of at most [ceil (n / count)] nodes (with at
   least one merge node), returned as ascending contiguous index ranges.
   The same decomposition policy as the repair pass's regional fixpoints
   — a pure function of the tree shape and [count], never of the jobs
   count, so any computation split along these windows is reproducible
   for any parallelism.  The root is never inside a window (its subtree
   is the whole arena), so the residual "spine" — every node outside all
   windows — always contains it.  [count < 2] yields no windows.  The
   default [count] mirrors [Dme.Cluster]'s region density target: one
   window per thousand sinks, capped at 64. *)
let windows ?count a =
  let k =
    match count with
    | Some k -> Int.max 1 k
    | None -> Int.max 1 (Int.min 64 ((a.n_sinks + 999) / 1000))
  in
  if k < 2 then [||]
  else begin
    let threshold = (a.n + k - 1) / k in
    let out = ref [] in
    for v = a.n - 1 downto 0 do
      if
        a.size.(v) <= threshold
        && a.size.(v) >= 3
        && a.parent.(v) >= 0
        && a.size.(a.parent.(v)) > threshold
      then out := v :: !out
    done;
    Array.of_list
      (List.map (fun root -> (root - a.size.(root) + 1, root)) !out)
  end

(* Spine passes: the serial complement of a window decomposition.  Each
   computes exactly the per-node expression of its full-array kernel,
   only over the index gaps between windows — children of a spine node
   are spine nodes or window roots, and a spine node's parent is again a
   spine node (windows are whole subtrees), so evaluation order along
   gaps is well-founded in both directions. *)

let downstream_rc_gaps ~into ~windows a =
  let idx = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      if !idx < lo then downstream_rc_range ~into ~lo:!idx ~hi:(lo - 1) a;
      idx := hi + 1)
    windows;
  if !idx <= a.n - 1 then downstream_rc_range ~into ~lo:!idx ~hi:(a.n - 1) a;
  half a.params a.source_len +. into.(a.n - 1)

let elmore_gaps ~down ~down0 ~into ~windows a =
  let k = Rc.Wire.ps_per_ohm_ff in
  let root = a.n - 1 in
  let root_delay =
    (k *. a.rd *. down0) +. (k *. (a.params.r *. a.len.(root)) *. down.(root))
  in
  let fill lo hi =
    for v = hi downto lo do
      if v = root then into.(v) <- root_delay
      else
        into.(v) <-
          into.(a.parent.(v)) +. (k *. (a.params.r *. a.len.(v)) *. down.(v))
    done
  in
  let idx = ref (a.n - 1) in
  for w = Array.length windows - 1 downto 0 do
    let lo, hi = windows.(w) in
    if hi < !idx then fill (hi + 1) !idx;
    idx := lo - 1
  done;
  if !idx >= 0 then fill 0 !idx

(* Top-down fill of one window, deriving the window root's delay from
   its (already computed) parent — the identical expression the full
   descending loop of [elmore] uses for that node. *)
let elmore_window ~down ~into ~lo ~hi a =
  let k = Rc.Wire.ps_per_ohm_ff in
  let root_delay =
    into.(a.parent.(hi)) +. (k *. (a.params.r *. a.len.(hi)) *. down.(hi))
  in
  elmore_range ~down ~root_delay ~into ~lo ~hi a

let delays_by_sink_gaps ~delay ~into ~windows a =
  let idx = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      if !idx < lo then delays_by_sink_range ~delay ~into ~lo:!idx ~hi:(lo - 1) a;
      idx := hi + 1)
    windows;
  if !idx <= a.n - 1 then
    delays_by_sink_range ~delay ~into ~lo:!idx ~hi:(a.n - 1) a

let wirelength a =
  let w = Array.make a.n 0. in
  for v = 0 to a.n - 1 do
    let l = a.left.(v) in
    if l >= 0 then begin
      let r = a.right.(v) in
      w.(v) <- a.len.(l) +. a.len.(r) +. w.(l) +. w.(r)
    end
  done;
  a.source_len +. w.(a.n - 1)

let total_snaking a =
  let s = Array.make a.n 0. in
  for v = 0 to a.n - 1 do
    let l = a.left.(v) in
    if l >= 0 then begin
      let r = a.right.(v) in
      let sl = a.len.(l) -. Pt.dist a.pos.(v) a.pos.(l) in
      let sr = a.len.(r) -. Pt.dist a.pos.(v) a.pos.(r) in
      s.(v) <- Float.max 0. sl +. Float.max 0. sr +. s.(l) +. s.(r)
    end
  done;
  Float.max 0. (a.source_len -. Pt.dist a.source a.pos.(a.n - 1))
  +. s.(a.n - 1)
