(** Flat int-indexed post-order arena over a routed tree.

    The repair/evaluate loop walks the same tree hundreds of times; the
    pointer representation ({!Tree.t}) costs an allocation-heavy rebuild
    per walk and its recursive visitors overflow the stack on degenerate
    deep trees (a 10^6-sink comb is ~2·10^6 nodes deep).  The arena
    flattens the tree once into parallel arrays in {e post order} —
    children before parents, the left subtree entirely before the right,
    the root at index [n - 1] — so every bottom-up pass is an ascending
    [for] loop, every top-down pass a descending one, and every subtree
    is the contiguous index range [[v - size v + 1, v]].

    [len.(v)] is the length of the edge {e above} node [v] (from its
    parent), with [len.(root) = source_len]; this matches the RC-tree
    orientation, where each edge is a pi segment owned by its lower
    node.  Repair mutates only [len]; {!to_routed} rebuilds a
    [Tree.routed] that is bit-identical to the input when no length
    changed (see the flatten→rebuild round-trip property in the tests).

    The Elmore kernels replicate {!Tree.to_rctree} + {!Rc.Rctree.elmore}
    operation for operation — same expressions, same association order,
    same traversal order — so their results are bit-identical to the
    list-based RC path.  This is what lets {!Evaluate} and {!Repair} run
    on the arena without perturbing any routed tree or delay by an
    ulp. *)

type t = {
  n : int;  (** node count, [2 * n_sinks - 1] *)
  n_sinks : int;
  source : Geometry.Pt.t;
  source_len : float;
  rd : float;
  params : Rc.Wire.params;
  left : int array;  (** left child index, [-1] for leaves *)
  right : int array;  (** right child index, [-1] for leaves *)
  parent : int array;  (** parent index, [-1] for the root *)
  size : int array;  (** subtree node count *)
  sink : int array;  (** sink id at leaves, [-1] at internal nodes *)
  group : int array;  (** sink group at leaves, [-1] at internal nodes *)
  scap : float array;  (** sink load cap at leaves, [0.] at internal nodes *)
  pos : Geometry.Pt.t array;  (** embedded position *)
  len : float array;  (** edge length above the node; mutated by repair *)
}

val is_leaf : t -> int -> bool

(** Iterative (explicit-stack) post-order flatten.  [params]/[rd] are
    stored for the Elmore kernels. *)
val of_routed : Rc.Wire.params -> rd:float -> Tree.routed -> t

(** Iterative rebuild of the pointer tree from the arena.  Positions,
    sink records and [source]/[source_len] round-trip exactly; edge
    lengths come from the (possibly mutated) [len] column. *)
val to_routed : t -> Tree.routed

(** Sum of [len] in ascending index order (root edge — the source wire —
    included).  Two snapshots of this sum bracket a repair phase's added
    wire deterministically. *)
val total_edge_length : t -> float

(** [downstream_rc ~into a] fills [into.(v)] with the RC downstream
    capacitance of node [v] — bit-identical to
    {!Rc.Rctree.downstream_cap} on {!Tree.to_rctree}'s output
    (right-child contribution accumulated before left).  [into] has
    length [n].  Returns the source-node value [down0]
    ([half source_len + into.(root)], the full tree load seen by the
    driver). *)
val downstream_rc : into:float array -> t -> float

(** {!downstream_rc} restricted to the contiguous subtree range
    [lo, hi] (a node and its descendants).  Fills only that window of
    [into]; no source term. *)
val downstream_rc_range : into:float array -> lo:int -> hi:int -> t -> unit

(** [elmore ~down ~down0 ~into a] fills [into.(v)] with the Elmore delay
    at node [v] given the downstream caps of {!downstream_rc} —
    bit-identical to {!Rc.Rctree.elmore}. *)
val elmore : down:float array -> down0:float -> into:float array -> t -> unit

(** {!elmore} restricted to the subtree range [lo, hi]:
    [into.(hi) <- root_delay] and descendants accumulate from it.
    With [root_delay = 0.] the window holds delays measured from the
    subtree root — exact for intra-subtree skews, which are invariant
    under the dropped constant offset. *)
val elmore_range :
  down:float array ->
  root_delay:float ->
  into:float array ->
  lo:int ->
  hi:int ->
  t ->
  unit

(** [delays_by_sink ~delay ~into a] scatters per-node delays to per-sink
    ids: [into.(sink.(v)) <- delay.(v)] for every leaf [v].  [into] has
    length [n_sinks]. *)
val delays_by_sink : delay:float array -> into:float array -> t -> unit

(** {!delays_by_sink} restricted to the index range [lo, hi]. *)
val delays_by_sink_range :
  delay:float array -> into:float array -> lo:int -> hi:int -> t -> unit

(** Evaluation windows: the disjoint maximal subtrees of at most
    [ceil (n / count)] nodes (at least 3 nodes each), as ascending
    contiguous [(lo, hi)] index ranges.  A pure function of the tree
    shape and [count] — never of a jobs count — so work split along
    these windows is bit-reproducible for any parallelism.  The root is
    always outside every window.  [count] defaults to the
    [Dme.Cluster]-style density target ([clamp 1 64 (ceil (n_sinks /
    1000))]); below 2 the result is empty.  This is the same
    decomposition the repair pass uses for its regional fixpoints. *)
val windows : ?count:int -> t -> (int * int) array

(** Serial spine complement of {!downstream_rc} over a window
    decomposition: fills every node {e outside} the windows (ascending
    along the gaps; window values must already be present) with the
    exact expression of the full kernel and returns [down0]. *)
val downstream_rc_gaps :
  into:float array -> windows:(int * int) array -> t -> float

(** Serial spine complement of {!elmore}: fills every node outside the
    windows top-down (descending along the gaps), computing the root
    delay from [down0] exactly as {!elmore} does.  Must run {e before}
    the per-window passes — window roots read their parent's delay. *)
val elmore_gaps :
  down:float array ->
  down0:float ->
  into:float array ->
  windows:(int * int) array ->
  t ->
  unit

(** {!elmore_range} over one window, deriving the window root's delay
    from its parent's already-computed delay — bit-identical to the full
    descending loop restricted to [lo, hi]. *)
val elmore_window :
  down:float array -> into:float array -> lo:int -> hi:int -> t -> unit

(** {!delays_by_sink} over the gaps of a window decomposition. *)
val delays_by_sink_gaps :
  delay:float array -> into:float array -> windows:(int * int) array -> t -> unit

(** Total wirelength including the source wire; bit-identical to
    {!Tree.wirelength} of {!to_routed}. *)
val wirelength : t -> float

(** Total snaking wire; bit-identical to {!Tree.total_snaking} of
    {!to_routed}. *)
val total_snaking : t -> float
