type report = {
  wirelength : float;
  snaking : float;
  delays : float array;
  min_delay : float;
  max_delay : float;
  global_skew : float;
  group_skew : float array;
  max_group_skew : float;
}

(* Acceptance slack shared with Repair.run: a group skew within [slack]
   of its bound counts as satisfied.  Exported so the two modules cannot
   silently drift apart. *)
let default_slack = 1e-4

(* Delays are computed through the arena's RC kernels, which replicate
   the Tree.to_rctree + Rc.Rctree.elmore pipeline bit for bit (see
   Arena) — so Elmore numbers and "SPICE" numbers still describe the
   identical circuit, and the walk is iterative: evaluation survives
   degenerate deep trees (10^6-node combs) that would overflow the
   stack of the recursive RC conversion.

   With [jobs > 1] the three kernels are split along [Arena.windows]:
   each window is a whole subtree, so its bottom-up fill is
   self-contained and its top-down fill needs only its (spine) parent's
   delay — both computed with the per-node expressions of the serial
   kernels, merely reordered across independent index ranges.  Every
   node's value is produced by exactly one domain from exactly the
   serial operands, so the result is bit-identical to [jobs = 1] for any
   decomposition and any jobs count (Check.Oracle's [evaluate_identity]
   enforces this).  [regions] forces the window count (tests/oracles);
   the default derives it from the sink count, which leaves small
   instances on the plain serial path. *)
let sink_delays ?(jobs = 1) ?regions ?(sched = Obs.Sched.null)
    (inst : Instance.t) (a : Arena.t) =
  let down = Array.make a.Arena.n 0. in
  let node_delay = Array.make a.Arena.n 0. in
  let delays = Array.make (Instance.n_sinks inst) 0. in
  let serial () =
    let down0 = Arena.downstream_rc ~into:down a in
    Arena.elmore ~down ~down0 ~into:node_delay a;
    Arena.delays_by_sink ~delay:node_delay ~into:delays a
  in
  let windows =
    if jobs > 1 then Arena.windows ?count:regions a else [||]
  in
  if Array.length windows < 2 then serial ()
  else
    Par.Pool.with_pool ~jobs (fun pool ->
        match pool with
        | None -> serial ()
        | Some pool ->
          (* Bottom-up caps: windows in parallel (disjoint index ranges
             of the shared array), then the ascending spine stitch. *)
          let (_ : unit array) =
            Par.Pool.map_chunked pool ~sched ~label:"evaluate.windows"
              ~chunk:1
              (fun (lo, hi) -> Arena.downstream_rc_range ~into:down ~lo ~hi a)
              windows
          in
          let down0 = Arena.downstream_rc_gaps ~into:down ~windows a in
          (* Top-down delays: the descending spine first (window roots
             read their parent's delay), then windows in parallel, each
             scattering its own leaves' delays while it holds them. *)
          Arena.elmore_gaps ~down ~down0 ~into:node_delay ~windows a;
          let (_ : unit array) =
            Par.Pool.map_chunked pool ~sched ~label:"evaluate.windows"
              ~chunk:1
              (fun (lo, hi) ->
                Arena.elmore_window ~down ~into:node_delay ~lo ~hi a;
                Arena.delays_by_sink_range ~delay:node_delay ~into:delays ~lo
                  ~hi a)
              windows
          in
          Arena.delays_by_sink_gaps ~delay:node_delay ~into:delays ~windows a);
  delays

let delays ?jobs ?regions (inst : Instance.t) (r : Tree.routed) =
  sink_delays ?jobs ?regions inst (Arena.of_routed inst.params ~rd:inst.rd r)

let report_of_arena ?jobs ?regions ?sched (inst : Instance.t) (a : Arena.t) =
  let delays = sink_delays ?jobs ?regions ?sched inst a in
  let min_delay = Array.fold_left Float.min Float.infinity delays in
  let max_delay = Array.fold_left Float.max Float.neg_infinity delays in
  let lo = Array.make inst.n_groups Float.infinity in
  let hi = Array.make inst.n_groups Float.neg_infinity in
  Array.iter
    (fun (s : Sink.t) ->
      lo.(s.group) <- Float.min lo.(s.group) delays.(s.id);
      hi.(s.group) <- Float.max hi.(s.group) delays.(s.id))
    inst.sinks;
  let group_skew =
    Array.init inst.n_groups (fun g ->
        if lo.(g) > hi.(g) then 0. else hi.(g) -. lo.(g))
  in
  {
    wirelength = Arena.wirelength a;
    snaking = Arena.total_snaking a;
    delays;
    min_delay;
    max_delay;
    global_skew = max_delay -. min_delay;
    group_skew;
    max_group_skew = Array.fold_left Float.max 0. group_skew;
  }

let run ?jobs ?regions (inst : Instance.t) (r : Tree.routed) =
  report_of_arena ?jobs ?regions inst (Arena.of_routed inst.params ~rd:inst.rd r)

let within_bound ?(slack = default_slack) (inst : Instance.t) report =
  let ok = ref true in
  Array.iteri
    (fun g w -> if w > Instance.bound_for inst g +. slack then ok := false)
    report.group_skew;
  !ok

let pp_report ppf r =
  Format.fprintf ppf
    "wirelength %.0f (snaking %.0f), delay [%.2f, %.2f] ps, global skew %.2f ps, max group skew %.3f ps"
    r.wirelength r.snaking r.min_delay r.max_delay r.global_skew
    r.max_group_skew
