(** Exact Elmore evaluation of embedded clock trees: wirelength, per-sink
    delays, global skew and per-group skew — the quantities reported in
    the thesis' Tables I and II.

    Evaluation runs on the flat post-order {!Arena}, whose RC kernels
    are bit-identical to the {!Tree.to_rctree} + {!Rc.Rctree.elmore}
    pipeline but iterative, so arbitrarily deep (comb-shaped) trees
    evaluate without stack overflow.

    With [jobs > 1] the kernels run windowed: {!Arena.windows} subtrees
    fill in parallel and a serial spine pass stitches the gaps.  Every
    node's value is computed by the serial kernel's expression from the
    serial operands, so reports are bit-identical for any [jobs] /
    [regions] (enforced by [Check.Oracle.evaluate_identity]).  [regions]
    forces the window count; by default it derives from the sink count
    (small instances stay on the plain serial path). *)

type report = {
  wirelength : float;
  snaking : float;
  delays : float array;  (** per sink id, ps, driver included *)
  min_delay : float;
  max_delay : float;
  global_skew : float;  (** max - min over all sinks, ps *)
  group_skew : float array;  (** per-group max - min, ps *)
  max_group_skew : float;
}

(** The default acceptance slack of {!within_bound} (ps).  {!Repair.run}
    uses the same constant, so repair's convergence test and the final
    acceptance check cannot drift apart. *)
val default_slack : float

(** Per-sink Elmore delays (ps) of a routed tree, indexed by sink id. *)
val delays : ?jobs:int -> ?regions:int -> Instance.t -> Tree.routed -> float array

val run : ?jobs:int -> ?regions:int -> Instance.t -> Tree.routed -> report

(** Evaluate a tree already flattened into an arena (the arena-native
    router pipeline's representation), without re-flattening.  An
    enabled [sched] recorder ledgers the windowed kernel maps under
    ["evaluate.windows"]; recording never changes the computed report
    ([sched_identity] oracle). *)
val report_of_arena :
  ?jobs:int -> ?regions:int -> ?sched:Obs.Sched.t ->
  Instance.t -> Arena.t -> report

(** Does the tree satisfy the instance's intra-group bound (within
    [slack], default {!default_slack} ps of numerical slack)? *)
val within_bound : ?slack:float -> Instance.t -> report -> bool

val pp_report : Format.formatter -> report -> unit
