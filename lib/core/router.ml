module Instance = Clocktree.Instance
module Evaluate = Clocktree.Evaluate
module Repair = Clocktree.Repair

type timings = {
  engine_s : float;
  repair_s : float;
  evaluate_s : float;
  total_s : float;
}

type result = {
  routed : Clocktree.Tree.routed;
  evaluation : Evaluate.report;
  engine : Dme.Engine.stats;
  repair : Repair.stats;
  cpu_seconds : float;
  timings : timings;
  clustering : Dme.Cluster.stats option;
  sched : Obs.Sched.report option;
  top_heap_words : int;
}

let t_engine = Obs.Timer.make "router.engine"
let t_repair = Obs.Timer.make "router.repair"
let t_evaluate = Obs.Timer.make "router.evaluate"

(* Route [route_inst] (whose groups define the constraints the engine and
   repair enforce) and evaluate against [eval_inst] (the original problem,
   whose groups define the reported skews).  [plan] is the engine phase:
   Dme.Engine.run_arena for the greedy merge order, Dme.Mmm.run_arena for
   the fixed topology.

   The whole hot path is arena-native: the plan embeds straight into a
   flat arena, repair mutates its [len] column in place and evaluation
   reads it windowed across [jobs] domains — the boxed [Tree.routed] is
   rebuilt once at the end, purely as the external representation. *)
let solve_with ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    ?(progress = Obs.Progress.null) ?repair_max_cycles ?(jobs = 1) ~plan
    ~route_inst ~eval_inst () =
  let tracing = Obs.Trace.enabled trace in
  let phase name f =
    if tracing then Obs.Trace.span trace ~cat:"router" name f else f ()
  in
  let jobs = Int.max 1 jobs in
  (* Repair and evaluation inherit the engine's jobs so one --jobs flag
     drives every parallel phase; their results are jobs-invariant
     either way. *)
  (* The cycle budget is per fixpoint, and the global fixpoint's
     convergence tail grows with the stitched spine, so the default
     scales with the instance (the fixed 300 was exhausted by the
     3·10^5-sink bench point's last ~0.1 ps of group skew); an explicit
     [repair_max_cycles] always wins. *)
  let default_cycles =
    Int.max Repair.default_config.Repair.max_cycles
      (Instance.n_sinks route_inst / 250)
  in
  let repair_config =
    {
      Repair.default_config with
      jobs;
      max_cycles = Option.value repair_max_cycles ~default:default_cycles;
    }
  in
  let t0 = Sys.time () in
  Obs.Progress.phase progress "engine";
  let w0 = Obs.Timer.now () in
  let arena, engine =
    phase "router.engine" (fun () ->
        Obs.Timer.time t_engine (fun () -> plan route_inst))
  in
  let w1 = Obs.Timer.now () in
  (* Phase walls feed the recorder: the serial fraction of a phase is
     this wall minus the time its ledgers spent inside parallel maps. *)
  Obs.Sched.note_phase sched ~phase:"engine" ~wall_s:(w1 -. w0);
  Obs.Progress.phase progress "repair";
  let repair =
    phase "router.repair" (fun () ->
        Obs.Timer.time t_repair (fun () ->
            Repair.run_arena ~config:repair_config ~trace ~sched ~progress
              route_inst arena))
  in
  let w2 = Obs.Timer.now () in
  Obs.Sched.note_phase sched ~phase:"repair" ~wall_s:(w2 -. w1);
  (* cpu_seconds spans planning + repair, as it always has; the wall
     timings additionally cover evaluation. *)
  let cpu_seconds = Sys.time () -. t0 in
  Obs.Progress.phase progress "evaluate";
  let evaluation =
    phase "router.evaluate" (fun () ->
        Obs.Timer.time t_evaluate (fun () ->
            Evaluate.report_of_arena ~jobs ~sched eval_inst arena))
  in
  let w3 = Obs.Timer.now () in
  Obs.Sched.note_phase sched ~phase:"evaluate" ~wall_s:(w3 -. w2);
  let routed = Clocktree.Arena.to_routed arena in
  if tracing then begin
    (* Final-quality histograms: per-sink source-to-sink delay and
       per-group skew of the evaluated (post-repair) tree. *)
    let h_delay = Obs.Trace.histogram trace "router.sink_delay_ps" in
    Array.iter (Obs.Histogram.observe h_delay) evaluation.Evaluate.delays;
    let h_skew = Obs.Trace.histogram trace "router.group_skew_ps" in
    Array.iter (Obs.Histogram.observe h_skew) evaluation.Evaluate.group_skew
  end;
  let timings =
    {
      engine_s = w1 -. w0;
      repair_s = w2 -. w1;
      evaluate_s = w3 -. w2;
      (* [total_s] also covers the final boxed-tree rebuild, which
         belongs to no phase. *)
      total_s = Obs.Timer.now () -. w0;
    }
  in
  let sched_report = Obs.Sched.report sched in
  (match sched_report with
  | Some rep when tracing ->
      Obs.Trace.journal trace
        (Obs.Json.Obj
           [
             ("type", Obs.Json.String "efficiency");
             ("report", Obs.Sched.json_of_report rep);
           ])
  | _ -> ());
  Obs.Progress.finish progress;
  {
    routed;
    evaluation;
    engine;
    repair;
    cpu_seconds;
    timings;
    clustering = None;
    sched = sched_report;
    (* The process high-water mark; with a single route per process
       (bench points, astroute) this is the route's peak heap. *)
    top_heap_words = Obs.Gcstat.top_heap_words ();
  }

let solve ?config ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    ?(progress = Obs.Progress.null) ?repair_max_cycles ~route_inst ~eval_inst
    () =
  let jobs =
    match config with
    | Some (c : Dme.Engine.config) -> c.jobs
    | None -> Dme.Engine.default.jobs
  in
  solve_with ~trace ~sched ~progress ?repair_max_cycles ~jobs
    ~plan:(Dme.Engine.run_arena ?config ~trace ~sched)
    ~route_inst ~eval_inst ()

(* [jobs] overrides the engine parallelism of [config] (or of [default]
   when no config was given) and [incremental] the cross-round proposal
   caching; routed trees are invariant under both, so these only affect
   wall time. *)
let with_jobs ?jobs ?incremental ~default config =
  let config = Option.value config ~default in
  let config =
    match jobs with
    | None -> config
    | Some j -> { config with Dme.Engine.jobs = j }
  in
  match incremental with
  | None -> config
  | Some i -> { config with Dme.Engine.incremental = i }

(* AST-DME ships with the §V.F delay-target merge order on (it prevents
   late deep-vs-shallow shared-group merges that would need heavy
   snaking); the baselines use the plain nearest-neighbour order of
   greedy-DME / greedy-BST, as in the thesis' comparison.  The weight
   is dimensionless (see {!Dme.Engine.config}); 1.2 reproduces the old
   absolute 400 layout-units-per-ps tuning at r1–r5 benchmark scale
   while staying invariant under a change of layout unit. *)
let ast_default_config =
  { Dme.Engine.default with delay_order_weight = 1.2 }

let router_manifest trace name (config : Dme.Engine.config) =
  if Obs.Trace.enabled trace then
    Obs.Trace.merge_manifest trace
      [
        ("router", Obs.Json.String name);
        ("jobs", Obs.Json.Int config.jobs);
        ("incremental", Obs.Json.Bool config.incremental);
      ]

let ast_dme ?config ?jobs ?incremental ?(clustered = false) ?clusters
    ?cluster_depth ?repair_max_cycles ?(trace = Obs.Trace.null)
    ?(sched = Obs.Sched.null) ?(progress = Obs.Progress.null) inst =
  let config = with_jobs ?jobs ?incremental ~default:ast_default_config config in
  router_manifest trace "ast_dme" config;
  if not clustered then
    solve ~config ~trace ~sched ~progress ?repair_max_cycles ~route_inst:inst
      ~eval_inst:inst ()
  else begin
    (* The clustered engine returns its per-region detail alongside the
       aggregate stats [solve_with] threads through; stash it and patch
       the result.  Repair and evaluation treat the stitched tree
       exactly like a flat one — the global skew bound is theirs to
       enforce and report. *)
    let detail = ref None in
    let plan inst =
      let arena, stats, d =
        Dme.Cluster.run_arena ~config ~trace ~sched ~progress ?clusters
          ?depth:cluster_depth inst
      in
      detail := Some d;
      (arena, stats)
    in
    let r =
      solve_with ~trace ~sched ~progress ?repair_max_cycles ~jobs:config.jobs
        ~plan ~route_inst:inst ~eval_inst:inst ()
    in
    { r with clustering = !detail }
  end

(* Fuse all groups into one: intra-group bound becomes a global bound;
   with per-group bounds the tightest one applies, so the fused router
   still satisfies every original constraint. *)
let fused ?bound (inst : Instance.t) =
  let sinks =
    Array.map (fun (s : Clocktree.Sink.t) -> { s with group = 0 }) inst.sinks
  in
  let default =
    List.init inst.n_groups (fun g -> Instance.bound_for inst g)
    |> List.fold_left Float.min Float.infinity
  in
  Instance.make ~params:inst.params ~rd:inst.rd
    ~bound:(Option.value bound ~default)
    ~source:inst.source ~n_groups:1 sinks

let ext_bst ?config ?jobs ?incremental ?repair_max_cycles
    ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    ?(progress = Obs.Progress.null) inst =
  let config = with_jobs ?jobs ?incremental ~default:Dme.Engine.default config in
  router_manifest trace "ext_bst" config;
  solve ~config ~trace ~sched ~progress ?repair_max_cycles
    ~route_inst:(fused inst) ~eval_inst:inst ()

let greedy_dme ?config ?jobs ?incremental ?repair_max_cycles
    ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    ?(progress = Obs.Progress.null) inst =
  let config = with_jobs ?jobs ?incremental ~default:Dme.Engine.default config in
  router_manifest trace "greedy_dme" config;
  solve ~config ~trace ~sched ~progress ?repair_max_cycles
    ~route_inst:(fused ~bound:0. inst) ~eval_inst:inst ()

let mmm_dme ?config ?jobs ?incremental ?repair_max_cycles
    ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    ?(progress = Obs.Progress.null) inst =
  let config = with_jobs ?jobs ?incremental ~default:ast_default_config config in
  router_manifest trace "mmm_dme" config;
  (* The MMM plan itself is serial (no recorded maps), but repair and
     evaluation still ledger under the recorder. *)
  solve_with ~trace ~sched ~progress ?repair_max_cycles ~jobs:config.jobs
    ~plan:(Dme.Mmm.run_arena ~config ~trace)
    ~route_inst:inst ~eval_inst:inst ()

let reduction ~baseline result =
  let base = baseline.evaluation.wirelength in
  (* Degenerate baselines (single sink at the source) have zero
     wirelength; report "no reduction" rather than NaN/inf. *)
  if base = 0. then 0.
  else (base -. result.evaluation.wirelength) /. base

let json_of_engine_stats (s : Dme.Engine.stats) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("rounds", Int s.rounds);
      ("same_group", Int s.same_group);
      ("cross_group", Int s.cross_group);
      ("shared_one", Int s.shared_one);
      ("shared_multi", Int s.shared_multi);
      ("planned_snake", Float s.planned_snake);
      ("infeasible_merges", Int s.infeasible_merges);
      ("nn_reprobes", Int s.nn_reprobes);
      ("nn_probes_saved", Int s.nn_probes_saved);
      ("trial_merges", Int s.trial.trial_merges);
      ("trial_cache_hits", Int s.trial.cache_hits);
      ("trial_cache_misses", Int s.trial.cache_misses);
      ("trial_elided", Int s.trial.elided_trials);
      ("trial_reused", Int s.trial.reused_trials);
      ("gc", Obs.Gcstat.json s.gc);
    ]

let json_of_clustering (d : Dme.Cluster.stats) : Obs.Json.t =
  let open Obs.Json in
  let plans cs =
    List
      (Array.to_list
         (Array.map
            (fun (c : Dme.Cluster.cluster_stats) ->
              Obj
                [
                  ("cluster", Int c.cluster);
                  ("n_sinks", Int c.n_sinks);
                  ("wall_s", Float c.wall_s);
                  ("stats", json_of_engine_stats c.stats);
                ])
            cs))
  in
  Obj
    [
      ("n_clusters", Int d.n_clusters);
      ("depth", Int d.depth);
      ("top", json_of_engine_stats d.top);
      ("per_cluster", plans d.per_cluster);
      ("super", plans d.super);
    ]

let json_of_result (r : result) : Obs.Json.t =
  let open Obs.Json in
  let engine = json_of_engine_stats r.engine in
  let repair =
    let s = r.repair in
    Obj
      [
        ("added_wire", Float s.added_wire);
        ("adjusted_edges", Int s.adjusted_edges);
        ("conflict_nodes", Int s.conflict_nodes);
        ("lift_iterations", Int s.lift_iterations);
        ("unresolved_groups", Int s.unresolved_groups);
        ("cycles", Int s.cycles);
        ("budget_exhausted", Bool s.budget_exhausted);
      ]
  in
  let timings =
    Obj
      [
        ("engine_s", Float r.timings.engine_s);
        ("repair_s", Float r.timings.repair_s);
        ("evaluate_s", Float r.timings.evaluate_s);
        ("total_s", Float r.timings.total_s);
      ]
  in
  Obj
    ([
       ("wirelength", Float r.evaluation.wirelength);
       ("snaking", Float r.evaluation.snaking);
       ("global_skew_ps", Float r.evaluation.global_skew);
       ("max_group_skew_ps", Float r.evaluation.max_group_skew);
       ("cpu_seconds", Float r.cpu_seconds);
       ("timings", timings);
       ("top_heap_words", Int r.top_heap_words);
       ("engine", engine);
       ("repair", repair);
       ("clustered", Bool (r.clustering <> None));
     ]
    @ (match r.clustering with
      | None -> []
      | Some d -> [ ("clustering", json_of_clustering d) ])
    @
    match r.sched with
    | None -> []
    | Some rep -> [ ("efficiency", Obs.Sched.json_of_report rep) ])

let pp_result ppf r =
  Format.fprintf ppf "%a, %.2fs cpu, %d infeasible merges, repair +%.0f wire"
    Evaluate.pp_report r.evaluation r.cpu_seconds r.engine.infeasible_merges
    r.repair.added_wire
