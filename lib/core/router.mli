(** The three clock routers of the thesis, sharing one engine:

    - {!ast_dme} — the contribution: associative skew routing, enforcing
      the skew bound only within each sink group (Fig. 6).
    - {!ext_bst} — the baseline: all sinks fused into a single group at
      the same bound, i.e. the "extended greedy-BST" of [4] that adds
      inter-group zero/bounded skew constraints.
    - {!greedy_dme} — classic zero-skew routing (single group, bound 0).

    Every result is post-processed by {!Clocktree.Repair} so the reported
    trees always satisfy the constraints they were routed under;
    evaluation is against the original grouped instance. *)

(** Per-phase wall-clock timings of one routing call; the same phases
    are accumulated globally in the ["router.engine"], ["router.repair"]
    and ["router.evaluate"] {!Obs.Timer}s. *)
type timings = {
  engine_s : float;  (** planning + embedding (DME or MMM engine) *)
  repair_s : float;
  evaluate_s : float;
  total_s : float;
}

type result = {
  routed : Clocktree.Tree.routed;
  evaluation : Clocktree.Evaluate.report;  (** w.r.t. the original instance *)
  engine : Dme.Engine.stats;
      (** clustered runs report the aggregate over region plans and the
          top-level stitch (see {!Dme.Cluster.run}) *)
  repair : Clocktree.Repair.stats;
  cpu_seconds : float;  (** CPU time of planning + repair (no evaluation) *)
  timings : timings;
  clustering : Dme.Cluster.stats option;
      (** per-region detail when the run was clustered; [None] for the
          flat routers *)
  sched : Obs.Sched.report option;
      (** parallel-efficiency report when the run was handed an enabled
          {!Obs.Sched} recorder; [None] otherwise *)
  top_heap_words : int;
      (** [Gc.quick_stat]'s process heap high-water mark, sampled at the
          end of the run (words); with one route per process this is the
          route's peak major-heap footprint *)
}

(** The configuration [ast_dme] uses by default: the engine defaults
    plus the §V.F delay-target merge order. *)
val ast_default_config : Dme.Engine.config

(** Each router takes an optional [jobs] override for the engine's
    ranking parallelism and an optional [incremental] override for its
    cross-round proposal caching (see {!Dme.Engine.config}); both win
    over the corresponding [config] field (and, for [jobs], over the
    [ASTSKEW_JOBS] environment default).  Routed trees are bit-identical
    for any [jobs] and for [incremental] on or off, so the knobs only
    affect wall time.  The effective [jobs] also drives the repair
    pass's regional parallelism and evaluation's windowed kernels (both
    equally jobs-invariant), and [repair_max_cycles] overrides the
    per-fixpoint cycle budget, whose default is scale-relative:
    [max Repair.default_config.max_cycles (n_sinks / 250)].

    Each router also takes an optional [trace] (see {!Obs.Trace}): when
    enabled, the run merges router name, jobs, incremental and the full
    engine config into the trace manifest, wraps the three phases in
    ["router.engine"] / ["router.repair"] / ["router.evaluate"] spans,
    threads the trace through the engine, repair and embedding (spans,
    per-round journal records, histograms) and feeds the evaluated
    per-sink delays and per-group skews into the
    ["router.sink_delay_ps"] / ["router.group_skew_ps"] histograms.
    The default {!Obs.Trace.null} emits nothing; the routed tree,
    evaluation and stats are identical with tracing on or off.

    Each router further takes an optional [sched] flight recorder and an
    optional [progress] heartbeat (see {!Obs.Sched} / {!Obs.Progress}).
    An enabled recorder collects per-domain busy/idle ledgers from every
    parallel map of the run, receives the three phase walls, and yields
    the per-phase utilization / serial-fraction / Amdahl report in
    [result.sched] (also emitted as one [type = "efficiency"] journal
    record when tracing).  An enabled [progress] prints throttled
    heartbeat lines to stderr: phase entry/exit, region completions from
    the clustered planner and the repair pass, wall clock, live heap
    watermark and an ETA.  Both default to their null values and neither
    influences routing — trees, delays and stats are bit-identical with
    recorder and reporter on or off at any jobs count (the
    [sched_identity] oracle in [Check.Oracle] enforces this). *)

(** [ast_dme ~clustered:true] routes through {!Dme.Cluster.run_arena}:
    a multi-level construction that partitions the sinks into
    [clusters] spatial regions (default {!Dme.Cluster.auto_clusters}),
    plans each region in parallel across the pool's domains and
    stitches the region roots back through a bounded-fan-in hierarchy
    of [cluster_depth] levels (default {!Dme.Cluster.auto_depth} of the
    region count).  Repair and evaluation are unchanged, so the
    reported tree satisfies the same global constraints as a flat run.
    [clusters = 1] is bit-identical to the flat router; any fixed
    cluster count and depth is bit-identical across [jobs], and a
    forced depth 1 is bit-identical to the historical two-level
    construction.  [clusters] and [cluster_depth] are ignored without
    [clustered]. *)
val ast_dme :
  ?config:Dme.Engine.config ->
  ?jobs:int ->
  ?incremental:bool ->
  ?clustered:bool ->
  ?clusters:int ->
  ?cluster_depth:int ->
  ?repair_max_cycles:int ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  Clocktree.Instance.t ->
  result

val ext_bst :
  ?config:Dme.Engine.config ->
  ?jobs:int ->
  ?incremental:bool ->
  ?repair_max_cycles:int ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  Clocktree.Instance.t ->
  result

val greedy_dme :
  ?config:Dme.Engine.config ->
  ?jobs:int ->
  ?incremental:bool ->
  ?repair_max_cycles:int ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  Clocktree.Instance.t ->
  result

(** Associative-skew routing on a fixed Method-of-Means-and-Medians
    topology instead of the greedy merge order; a second baseline that
    isolates how much the merge order contributes.  The MMM engine never
    trial-merges or probes, so [jobs] and [incremental] are accepted for
    interface uniformity but have no effect. *)
val mmm_dme :
  ?config:Dme.Engine.config ->
  ?jobs:int ->
  ?incremental:bool ->
  ?repair_max_cycles:int ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  Clocktree.Instance.t ->
  result

(** Wirelength reduction of [vs] relative to [baseline], as a fraction
    (the "Reduction" column of Tables I and II).  [0.] when the baseline
    wirelength is zero (degenerate instances), never NaN. *)
val reduction : baseline:result -> result -> float

(** Machine-readable summary of a result: evaluation metrics, engine and
    repair stats, per-phase timings, the ["top_heap_words"] high-water
    mark, a ["clustered"] flag, for clustered runs a ["clustering"]
    object with per-region stats, and — when the run carried an enabled
    recorder — an ["efficiency"] object ({!Obs.Sched.json_of_report}).
    This is the ["result"] object of the [BENCH_*.json] files and of
    [astroute --stats-json]. *)
val json_of_result : result -> Obs.Json.t

val pp_result : Format.formatter -> result -> unit
