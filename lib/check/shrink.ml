module Pt = Geometry.Pt
module Instance = Clocktree.Instance
module Sink = Clocktree.Sink

let with_sinks (inst : Instance.t) kept =
  match kept with
  | [] -> None
  | kept ->
    (* Compress the surviving group indices to a dense range. *)
    let groups =
      List.sort_uniq compare (List.map (fun (s : Sink.t) -> s.group) kept)
    in
    let remap = Hashtbl.create 8 in
    List.iteri (fun i g -> Hashtbl.replace remap g i) groups;
    let n_groups = List.length groups in
    let sinks =
      Array.of_list
        (List.mapi
           (fun i (s : Sink.t) ->
             Sink.make ~id:i ~loc:s.loc ~cap:s.cap
               ~group:(Hashtbl.find remap s.group))
           kept)
    in
    let group_bounds =
      Option.map
        (fun bs ->
          Array.of_list (List.map (fun g -> bs.(g)) groups))
        inst.group_bounds
    in
    Some
      (Instance.make ~params:inst.params ~rd:inst.rd ~bound:inst.bound
         ?group_bounds ~source:inst.source ~n_groups sinks)

(* One reduction family: candidate instances, cheapest-first. *)

let drop_groups (inst : Instance.t) =
  List.init inst.n_groups (fun g ->
      with_sinks inst
        (List.filter
           (fun (s : Sink.t) -> s.group <> g)
           (Array.to_list inst.sinks)))
  |> List.filter_map Fun.id

let drop_chunks (inst : Instance.t) ~chunk =
  let n = Instance.n_sinks inst in
  if chunk <= 0 || chunk >= n then []
  else
    List.init ((n + chunk - 1) / chunk) (fun c ->
        let lo = c * chunk and hi = Int.min n ((c + 1) * chunk) in
        with_sinks inst
          (Array.to_list inst.sinks
          |> List.filteri (fun i _ -> i < lo || i >= hi)))
    |> List.filter_map Fun.id

let map_sinks (inst : Instance.t) f =
  with_sinks inst (List.map f (Array.to_list inst.sinks))

let snap_coords (inst : Instance.t) =
  let snap pitch x = Float.round (x /. pitch) *. pitch in
  List.filter_map
    (fun pitch ->
      map_sinks inst (fun s ->
          { s with loc = Pt.make (snap pitch s.loc.x) (snap pitch s.loc.y) }))
    [ 1000.; 100.; 1. ]

let snap_caps (inst : Instance.t) =
  Option.to_list (map_sinks inst (fun s -> { s with cap = 20. }))

let simplify_config (inst : Instance.t) =
  let candidates = ref [] in
  let push c = candidates := c :: !candidates in
  if inst.group_bounds <> None then
    push
      (Instance.make ~params:inst.params ~rd:inst.rd ~bound:inst.bound
         ~source:inst.source ~n_groups:inst.n_groups inst.sinks);
  if inst.params <> Rc.Wire.default || inst.rd <> 100. then
    push
      (Instance.make ?group_bounds:inst.group_bounds ~bound:inst.bound
         ~source:inst.source ~n_groups:inst.n_groups inst.sinks);
  List.rev !candidates

let run ?(max_checks = 2000) ~fails inst =
  let checks = ref 0 in
  let try_candidate inst' =
    if !checks >= max_checks then false
    else begin
      incr checks;
      match fails inst' with ok -> ok | exception _ -> false
    end
  in
  (* One greedy pass: first candidate that still fails wins. *)
  let improve inst =
    let n = Instance.n_sinks inst in
    let chunks =
      let rec halves c acc = if c < 1 then acc else halves (c / 2) (c :: acc) in
      List.concat_map (fun c -> drop_chunks inst ~chunk:c) (halves (n / 2) [])
    in
    let candidates =
      drop_groups inst @ chunks @ snap_coords inst @ snap_caps inst
      @ simplify_config inst
    in
    List.find_opt
      (fun inst' ->
        (* Only keep candidates that actually reduce or simplify. *)
        (Instance.n_sinks inst' < n || inst' <> inst) && try_candidate inst')
      candidates
  in
  let rec fixpoint inst =
    if !checks >= max_checks then inst
    else
      match improve inst with None -> inst | Some inst' -> fixpoint inst'
  in
  fixpoint inst
