module Pt = Geometry.Pt
module Instance = Clocktree.Instance
module Sink = Clocktree.Sink
module Tree = Clocktree.Tree
module Evaluate = Clocktree.Evaluate

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.invariant v.detail

type contract = Grouped | Global of float

(* Geometric slack matching Tree.node's constructor check; skew slack
   matching Evaluate.within_bound's default. *)
let geom_tol = 1e-4
let skew_slack = 1e-4

let v invariant fmt = Printf.ksprintf (fun detail -> { invariant; detail }) fmt

let finite_pt p = Float.is_finite p.Pt.x && Float.is_finite p.Pt.y

(* --- structure ----------------------------------------------------------- *)

let structure (inst : Instance.t) (r : Tree.routed) =
  let out = ref [] in
  let add x = out := x :: !out in
  let n = Instance.n_sinks inst in
  let seen = Array.make n 0 in
  let check_edge ~what parent child len =
    if not (Float.is_finite len) then
      add (v "finite-edges" "%s edge length is %g" what len)
    else begin
      if len < 0. then add (v "finite-edges" "%s edge length %g < 0" what len);
      if finite_pt parent && finite_pt child then begin
        let d = Pt.dist parent child in
        if len < d -. geom_tol then
          add
            (v "edge-covers-distance"
               "%s edge length %g < L1 distance %g of its endpoints" what len
               d)
      end
    end
  in
  let rec walk = function
    | Tree.Leaf (s : Sink.t) ->
      if s.id < 0 || s.id >= n then
        add (v "sink-coverage" "leaf sink id %d outside [0, %d)" s.id n)
      else begin
        seen.(s.id) <- seen.(s.id) + 1;
        let orig = inst.sinks.(s.id) in
        (* Group is deliberately not compared: the fused baselines route a
           copy of the instance with all groups collapsed to 0, and
           evaluation looks groups up by sink id in the instance anyway. *)
        if not (Pt.equal s.loc orig.loc && s.cap = orig.cap) then
          add
            (v "sink-coverage" "leaf sink %d differs from the instance's" s.id)
      end
    | Tree.Node nd ->
      if not (finite_pt nd.pos) then
        add (v "finite-edges" "node position %s is not finite" (Pt.to_string nd.pos));
      check_edge ~what:"left" nd.pos (Tree.pos nd.left) nd.llen;
      check_edge ~what:"right" nd.pos (Tree.pos nd.right) nd.rlen;
      walk nd.left;
      walk nd.right
  in
  walk r.tree;
  Array.iteri
    (fun id k ->
      if k = 0 then add (v "sink-coverage" "sink %d is unreachable" id)
      else if k > 1 then
        add (v "sink-coverage" "sink %d appears %d times" id k))
    seen;
  if not (finite_pt r.source) then
    add (v "finite-edges" "source position is not finite");
  check_edge ~what:"source" r.source (Tree.pos r.tree) r.source_len;
  (* The electrical view must be sane too: one pass through the same
     conversion Evaluate and the transient simulator use. *)
  if !out = [] then begin
    let rct, _ = Tree.to_rctree inst.params ~rd:inst.rd ~n_sinks:n r in
    List.iter (fun msg -> add (v "rc-tree" "%s" msg)) (Rc.Rctree.audit rct)
  end;
  List.rev !out

(* --- semantics ----------------------------------------------------------- *)

(* The report must match an independent recomputation bit-for-bit up to a
   tiny relative tolerance (both paths use the identical arithmetic, so in
   practice they agree exactly; the tolerance only guards compiler
   re-association differences). *)
let close a b =
  a = b
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let semantics (inst : Instance.t) (r : Tree.routed) (rep : Evaluate.report) =
  let out = ref [] in
  let add x = out := x :: !out in
  let n = Instance.n_sinks inst in
  if Array.length rep.delays <> n then
    add
      (v "delays-match" "report has %d delays for %d sinks"
         (Array.length rep.delays) n)
  else begin
    Array.iteri
      (fun i d ->
        if not (Float.is_finite d) then
          add (v "delays-match" "sink %d delay is %g" i d))
      rep.delays;
    let fresh = Evaluate.delays inst r in
    Array.iteri
      (fun i d ->
        if not (close d rep.delays.(i)) then
          add
            (v "delays-match" "sink %d: reported %.17g, recomputed %.17g" i
               rep.delays.(i) d))
      fresh;
    (* Aggregates recomputed from the reported delays themselves. *)
    let min_d = Array.fold_left Float.min Float.infinity rep.delays in
    let max_d = Array.fold_left Float.max Float.neg_infinity rep.delays in
    if not (close min_d rep.min_delay && close max_d rep.max_delay) then
      add (v "skew-aggregates" "min/max delay do not match the delay array");
    if not (close (max_d -. min_d) rep.global_skew) then
      add
        (v "skew-aggregates" "global skew %.17g <> max - min %.17g"
           rep.global_skew (max_d -. min_d));
    if Array.length rep.group_skew <> inst.n_groups then
      add (v "skew-aggregates" "group_skew length mismatch")
    else begin
      let lo = Array.make inst.n_groups Float.infinity in
      let hi = Array.make inst.n_groups Float.neg_infinity in
      Array.iter
        (fun (s : Sink.t) ->
          lo.(s.group) <- Float.min lo.(s.group) rep.delays.(s.id);
          hi.(s.group) <- Float.max hi.(s.group) rep.delays.(s.id))
        inst.sinks;
      Array.iteri
        (fun g w ->
          let expect = if lo.(g) > hi.(g) then 0. else hi.(g) -. lo.(g) in
          if not (close expect w) then
            add
              (v "skew-aggregates" "group %d skew %.17g, recomputed %.17g" g w
                 expect))
        rep.group_skew;
      let max_gs = Array.fold_left Float.max 0. rep.group_skew in
      if not (close max_gs rep.max_group_skew) then
        add (v "skew-aggregates" "max_group_skew does not match group_skew")
    end
  end;
  if not (close (Tree.wirelength r) rep.wirelength) then
    add
      (v "wirelength-match" "reported %.17g, tree has %.17g" rep.wirelength
         (Tree.wirelength r));
  if not (close (Tree.total_snaking r) rep.snaking) then
    add
      (v "wirelength-match" "reported snaking %.17g, tree has %.17g"
         rep.snaking (Tree.total_snaking r));
  List.rev !out

(* --- bound --------------------------------------------------------------- *)

let bound contract (inst : Instance.t) (rep : Evaluate.report) =
  match contract with
  | Grouped ->
    let out = ref [] in
    Array.iteri
      (fun g w ->
        let b = Instance.bound_for inst g in
        if w > b +. skew_slack then
          out :=
            v "within-bound" "group %d skew %.6g ps exceeds bound %g ps" g w b
            :: !out)
      rep.group_skew;
    List.rev !out
  | Global b ->
    if rep.global_skew > b +. skew_slack then
      [ v "within-bound" "global skew %.6g ps exceeds bound %g ps"
          rep.global_skew b ]
    else []

let run contract inst r rep =
  structure inst r @ semantics inst r rep @ bound contract inst rep

(* --- partition cover ------------------------------------------------------ *)

let partition_cover (inst : Instance.t) (regions : int array array) =
  let out = ref [] in
  let add x = out := x :: !out in
  let n = Instance.n_sinks inst in
  if n > 0 && Array.length regions = 0 then
    add (v "partition-cover" "no regions for %d sinks" n);
  let seen = Array.make n 0 in
  Array.iteri
    (fun r ids ->
      if Array.length ids = 0 then
        add (v "partition-nonempty" "region %d is empty" r);
      Array.iter
        (fun id ->
          if id < 0 || id >= n then
            add (v "partition-cover" "region %d holds sink id %d outside [0, %d)" r id n)
          else seen.(id) <- seen.(id) + 1)
        ids)
    regions;
  Array.iteri
    (fun id k ->
      if k = 0 then add (v "partition-cover" "sink %d is in no region" id)
      else if k > 1 then
        add (v "partition-cover" "sink %d is in %d regions" id k))
    seen;
  List.rev !out

(* --- tree equality ------------------------------------------------------- *)

let tree_equal (a : Tree.routed) (b : Tree.routed) =
  let rec eq a b =
    match (a, b) with
    | Tree.Leaf sa, Tree.Leaf sb -> sa.Sink.id = sb.Sink.id
    | Tree.Node na, Tree.Node nb ->
      Pt.equal na.pos nb.pos && na.llen = nb.llen && na.rlen = nb.rlen
      && eq na.left nb.left && eq na.right nb.right
    | _ -> false
  in
  Pt.equal a.source b.source
  && a.source_len = b.source_len
  && eq a.tree b.tree
