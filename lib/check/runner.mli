(** The fuzz driver: generate, audit, shrink, summarise.

    [run ~cases ~seed ()] replays cases [0 .. cases-1] of the
    deterministic stream identified by [seed], runs every oracle on each
    instance, and greedily shrinks any failure to a minimal repro.  It
    then appends [cases / 25] benchmark-scale cases (indices
    [cases ..]): even slots are {!Gen.Huge} checked against the
    ranking-path identity oracles ({!Oracle.par_identity} and
    {!Oracle.incremental_identity}), odd slots are {!Gen.Banked}
    checked against the clustered-routing oracles
    ({!Oracle.cluster_identity} and {!Oracle.clustered}) — the full
    battery is far too slow at thousands of sinks.  The summary is
    printable as JSON ({!json_of_summary}); a failing case's shrunk
    instance is serialised with {!Clocktree.Io} so it can be frozen as
    a regression test ({!repro_text}).

    [replay ~seed ~case ()] re-runs a single printed case — the entry
    point to paste from a failing CI log.  Pass [~regime:Gen.Huge] (or
    [~regime:Gen.Banked]) to replay a scaled case with the reduced
    oracle set matching the original check. *)

type failure = {
  case : Gen.case;
  findings : Oracle.finding list;  (** on the original instance *)
  shrunk : Clocktree.Instance.t;
  shrunk_findings : Oracle.finding list;  (** on the shrunk instance *)
}

type summary = {
  seed : int64;
  cases : int;  (** ordinary cases (regimes cycled by index) *)
  scaled_cases : int;
      (** appended benchmark-scale cases ({!Gen.Huge} / {!Gen.Banked}) *)
  passed : int;
  failures : failure list;
  elapsed_s : float;
}

val run :
  ?inject:bool ->
  ?progress:(Gen.case -> unit) ->
  cases:int ->
  seed:int64 ->
  unit ->
  summary

val replay :
  ?inject:bool ->
  ?regime:Gen.regime ->
  seed:int64 ->
  case:int ->
  unit ->
  Oracle.finding list

val ok : summary -> bool
val json_of_summary : summary -> Obs.Json.t

(** Io text of the shrunk instance, prefixed with comment lines recording
    the seed, case index, regime and violated invariants. *)
val repro_text : failure -> string
