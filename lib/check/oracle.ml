module Instance = Clocktree.Instance
module Sink = Clocktree.Sink
module Tree = Clocktree.Tree
module Evaluate = Clocktree.Evaluate
module Router = Astskew.Router

type finding = { oracle : string; violations : Audit.violation list }

let pp_finding ppf f =
  Format.fprintf ppf "@[<v 2>%s:@ %a@]" f.oracle
    (Format.pp_print_list Audit.pp_violation)
    f.violations

let guard oracle f =
  match f () with
  | [] -> []
  | violations -> [ { oracle; violations } ]
  | exception exn ->
    [
      {
        oracle = "exception";
        violations =
          [
            {
              Audit.invariant = oracle;
              detail = Printexc.to_string exn;
            };
          ];
      };
    ]

(* --- deliberate fault injection ------------------------------------------ *)

(* Snake the leaf edge of one sink that shares a group with another sink:
   the extra wire delays that sink past its group's bound, so a correct
   auditor must flag [within-bound].  Singleton groups cannot violate an
   intra-group bound, so if every group is a singleton the tree is
   returned unchanged. *)
let inject_skew_violation (inst : Instance.t) (r : Tree.routed) =
  let sizes = Instance.group_sizes inst in
  let victim =
    Array.to_seq inst.sinks
    |> Seq.filter (fun (s : Sink.t) -> sizes.(s.group) >= 2)
    |> Seq.uncons
    |> Option.map fst
  in
  match victim with
  | None -> r
  | Some victim ->
    let delta = Instance.bound_for inst victim.group +. 25. in
    let snake len load =
      let w = Rc.Elmore.wire_delay inst.params ~len ~load in
      Rc.Elmore.wire_for_delay inst.params ~load ~delay:(w +. delta)
    in
    let rec go = function
      | Tree.Leaf _ as t -> t
      | Tree.Node n ->
        let llen =
          match n.left with
          | Tree.Leaf s when s.id = victim.id -> snake n.llen s.cap
          | _ -> n.llen
        in
        let rlen =
          match n.right with
          | Tree.Leaf s when s.id = victim.id -> snake n.rlen s.cap
          | _ -> n.rlen
        in
        Tree.Node { n with left = go n.left; right = go n.right; llen; rlen }
    in
    { r with tree = go r.tree }

(* --- router contracts ---------------------------------------------------- *)

let min_bound (inst : Instance.t) =
  List.init inst.n_groups (Instance.bound_for inst)
  |> List.fold_left Float.min Float.infinity

let routers ?(inject = false) inst =
  let audit oracle contract route =
    guard oracle (fun () ->
        let result = route inst in
        let routed, report =
          if inject && contract = Audit.Grouped then begin
            let routed = inject_skew_violation inst result.Router.routed in
            (routed, Evaluate.run inst routed)
          end
          else (result.Router.routed, result.Router.evaluation)
        in
        Audit.run contract inst routed report)
  in
  audit "ast-dme" Audit.Grouped (Router.ast_dme ?config:None)
  @ audit "ext-bst" (Audit.Global (min_bound inst)) (Router.ext_bst ?config:None)
  @ audit "greedy-dme" (Audit.Global 0.) (Router.greedy_dme ?config:None)
  @ audit "mmm-dme" Audit.Grouped (Router.mmm_dme ?config:None)

(* --- trial-merge cache bit-identity -------------------------------------- *)

let cache_identity inst =
  guard "cache-identity" (fun () ->
      let off_config =
        { Router.ast_default_config with Dme.Engine.trial_cache = false }
      in
      let off = Router.ast_dme ~config:off_config inst in
      let on = Router.ast_dme inst in
      let diff = ref [] in
      if not (Audit.tree_equal off.routed on.routed) then
        diff :=
          {
            Audit.invariant = "cache-identity";
            detail = "cache-on tree differs structurally from cache-off";
          }
          :: !diff;
      Array.iteri
        (fun i d ->
          if d <> on.evaluation.delays.(i) then
            diff :=
              {
                Audit.invariant = "cache-identity";
                detail =
                  Printf.sprintf "sink %d delay: off %.17g, on %.17g" i d
                    on.evaluation.delays.(i);
              }
              :: !diff)
        off.evaluation.delays;
      if off.evaluation.wirelength <> on.evaluation.wirelength then
        diff :=
          {
            Audit.invariant = "cache-identity";
            detail =
              Printf.sprintf "wirelength: off %.17g, on %.17g"
                off.evaluation.wirelength on.evaluation.wirelength;
          }
          :: !diff;
      List.rev !diff)

(* --- parallel ranking bit-identity ---------------------------------------- *)

let par_identity ?(jobs = [ 2; 4 ]) inst =
  guard "par-identity" (fun () ->
      let serial = Router.ast_dme ~jobs:1 inst in
      let check j =
        let par = Router.ast_dme ~jobs:j inst in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff := { Audit.invariant = "par-identity"; detail } :: !diff)
            fmt
        in
        if not (Audit.tree_equal serial.routed par.routed) then
          add "jobs=%d tree differs structurally from jobs=1" j;
        Array.iteri
          (fun i d ->
            if d <> par.evaluation.delays.(i) then
              add "jobs=%d sink %d delay: serial %.17g, parallel %.17g" j i d
                par.evaluation.delays.(i))
          serial.evaluation.delays;
        if serial.evaluation.wirelength <> par.evaluation.wirelength then
          add "jobs=%d wirelength: serial %.17g, parallel %.17g" j
            serial.evaluation.wirelength par.evaluation.wirelength;
        (* Stats equality is stricter than tree equality: it proves the
           workers' trial merges and cache traffic were exactly the
           serial ones, i.e. scheduling never leaked into the cache. *)
        if serial.engine.trial <> par.engine.trial then
          add "jobs=%d trial stats differ from jobs=1" j;
        List.rev !diff
      in
      List.concat_map check jobs)

(* --- incremental ranking bit-identity -------------------------------------- *)

let incremental_identity ?(jobs = [ 1; 2 ]) inst =
  guard "incremental-identity" (fun () ->
      let off = Router.ast_dme ~jobs:1 ~incremental:false inst in
      let check j =
        let on = Router.ast_dme ~jobs:j ~incremental:true inst in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff :=
                { Audit.invariant = "incremental-identity"; detail } :: !diff)
            fmt
        in
        if not (Audit.tree_equal off.routed on.routed) then
          add "jobs=%d incremental tree differs structurally from from-scratch"
            j;
        Array.iteri
          (fun i d ->
            if d <> on.evaluation.delays.(i) then
              add "jobs=%d sink %d delay: from-scratch %.17g, incremental %.17g"
                j i d on.evaluation.delays.(i))
          off.evaluation.delays;
        if off.evaluation.wirelength <> on.evaluation.wirelength then
          add "jobs=%d wirelength: from-scratch %.17g, incremental %.17g" j
            off.evaluation.wirelength on.evaluation.wirelength;
        (* Probe accounting: the cache must only ever skip work — never
           add probes — and every rank slot is either re-probed or served
           from the cache, summing to the from-scratch probe count.
           Trial-merge stats are deliberately NOT compared: skipped
           probes legitimately skip their candidates' trial merges (see
           DESIGN.md section 10). *)
        if on.engine.nn_reprobes > off.engine.nn_reprobes then
          add "jobs=%d incremental ran MORE probes than from-scratch: %d > %d"
            j on.engine.nn_reprobes off.engine.nn_reprobes;
        if
          on.engine.nn_reprobes + on.engine.nn_probes_saved
          <> off.engine.nn_reprobes
        then
          add "jobs=%d probe accounting: %d reprobed + %d saved <> %d total" j
            on.engine.nn_reprobes on.engine.nn_probes_saved
            off.engine.nn_reprobes;
        List.rev !diff
      in
      List.concat_map check jobs)

(* --- tracing bit-identity -------------------------------------------------- *)

let trace_identity ?(jobs = [ 1; 2 ]) inst =
  guard "trace-identity" (fun () ->
      let base = Router.ast_dme ~jobs:1 inst in
      let check j =
        let trace = Obs.Trace.create () in
        let traced = Router.ast_dme ~jobs:j ~trace inst in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff := { Audit.invariant = "trace-identity"; detail } :: !diff)
            fmt
        in
        if not (Audit.tree_equal base.routed traced.routed) then
          add "jobs=%d traced tree differs structurally from untraced" j;
        Array.iteri
          (fun i d ->
            if d <> traced.evaluation.delays.(i) then
              add "jobs=%d sink %d delay: untraced %.17g, traced %.17g" j i d
                traced.evaluation.delays.(i))
          base.evaluation.delays;
        if base.evaluation.wirelength <> traced.evaluation.wirelength then
          add "jobs=%d wirelength: untraced %.17g, traced %.17g" j
            base.evaluation.wirelength traced.evaluation.wirelength;
        (* Full stats equality: observation must not perturb the engine's
           work, and jobs must not either (par-identity, replayed here
           under tracing).  GC counters are the one legitimately
           run-dependent field (tracing itself allocates), so they are
           zeroed out of the comparison. *)
        let degc (s : Dme.Engine.stats) = { s with gc = Obs.Gcstat.zero } in
        if degc base.engine <> degc traced.engine then
          add "jobs=%d traced engine stats differ from untraced jobs=1" j;
        (* The journal is the trace's accounting ledger: its per-round
           records must sum exactly to the engine's aggregate stats. *)
        let rounds =
          List.filter_map
            (function
              | Obs.Json.Obj fields
                when List.assoc_opt "type" fields
                     = Some (Obs.Json.String "round") ->
                Some fields
              | _ -> None)
            (Obs.Trace.journal_records trace)
        in
        let sum key =
          List.fold_left
            (fun acc fields ->
              match List.assoc_opt key fields with
              | Some (Obs.Json.Int i) -> acc + i
              | _ -> acc)
            0 rounds
        in
        if List.length rounds <> traced.engine.rounds then
          add "jobs=%d journal has %d round records, engine ran %d rounds" j
            (List.length rounds) traced.engine.rounds;
        if sum "probes" <> traced.engine.nn_reprobes then
          add "jobs=%d journal probes %d <> engine nn_reprobes %d" j
            (sum "probes") traced.engine.nn_reprobes;
        if sum "nn_probes_saved" <> traced.engine.nn_probes_saved then
          add "jobs=%d journal nn_probes_saved %d <> engine %d" j
            (sum "nn_probes_saved") traced.engine.nn_probes_saved;
        if sum "trial_merges" <> traced.engine.trial.trial_merges then
          add "jobs=%d journal trial_merges %d <> engine %d" j
            (sum "trial_merges") traced.engine.trial.trial_merges;
        if sum "trial_cache_hits" <> traced.engine.trial.cache_hits then
          add "jobs=%d journal trial_cache_hits %d <> engine %d" j
            (sum "trial_cache_hits") traced.engine.trial.cache_hits;
        (* The Chrome export must round-trip through the JSON parser and
           actually contain events. *)
        (match Obs.Json.of_string (Obs.Json.to_string (Obs.Trace.to_chrome trace)) with
         | Obs.Json.Obj fields ->
           (match List.assoc_opt "traceEvents" fields with
            | Some (Obs.Json.List []) ->
              add "jobs=%d chrome export has no events" j
            | Some (Obs.Json.List _) -> ()
            | _ -> add "jobs=%d chrome export lacks traceEvents" j)
         | _ -> add "jobs=%d chrome export is not a JSON object" j
         | exception Obs.Json.Parse_error _ ->
           add "jobs=%d chrome export does not re-parse" j);
        List.rev !diff
      in
      List.concat_map check jobs)

(* --- flight-recorder bit-identity ------------------------------------------ *)

let sched_identity ?(jobs = [ 1; 2; 4 ]) inst =
  guard "sched-identity" (fun () ->
      let base = Router.ast_dme ~jobs:1 inst in
      let degc (s : Dme.Engine.stats) = { s with gc = Obs.Gcstat.zero } in
      let check j =
        let sched = Obs.Sched.create () in
        (* The heartbeat reporter rides along muted: it must be as inert
           as the recorder, and this is the one place that proves it. *)
        let devnull = open_out "/dev/null" in
        let progress = Obs.Progress.create ~out:devnull () in
        let recorded =
          Fun.protect
            ~finally:(fun () -> close_out devnull)
            (fun () -> Router.ast_dme ~jobs:j ~sched ~progress inst)
        in
        let unrecorded = Router.ast_dme ~jobs:j inst in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff := { Audit.invariant = "sched-identity"; detail } :: !diff)
            fmt
        in
        if not (Audit.tree_equal base.routed recorded.routed) then
          add "jobs=%d recorded tree differs structurally from jobs=1" j;
        Array.iteri
          (fun i d ->
            if d <> recorded.evaluation.delays.(i) then
              add "jobs=%d sink %d delay: unrecorded %.17g, recorded %.17g" j i
                d recorded.evaluation.delays.(i))
          base.evaluation.delays;
        if base.evaluation.wirelength <> recorded.evaluation.wirelength then
          add "jobs=%d wirelength: unrecorded %.17g, recorded %.17g" j
            base.evaluation.wirelength recorded.evaluation.wirelength;
        (* Stats equality against a same-jobs unrecorded run (gc zeroed):
           the recorder observed scheduling without steering it. *)
        if degc unrecorded.engine <> degc recorded.engine then
          add "jobs=%d recorded engine stats differ from unrecorded" j;
        (* The report itself must be present and sane. *)
        (match recorded.Router.sched with
        | None -> add "jobs=%d recorded run yields no efficiency report" j
        | Some rep ->
            (* The report records the widest pool a map actually ran on;
               tiny instances legitimately clamp below the request (a
               single sink never fans out), so the bound is one-sided. *)
            if rep.Obs.Sched.jobs < 1 || rep.Obs.Sched.jobs > j then
              add "jobs=%d report claims jobs=%d" j rep.Obs.Sched.jobs;
            let s = rep.Obs.Sched.serial_fraction in
            if not (s >= 0. && s <= 1.) then
              add "jobs=%d serial fraction %.17g outside [0,1]" j s;
            if rep.Obs.Sched.wall_s < rep.Obs.Sched.par_wall_s then
              add "jobs=%d phase walls %.17g < parallel walls %.17g" j
                rep.Obs.Sched.wall_s rep.Obs.Sched.par_wall_s);
        if unrecorded.Router.sched <> None then
          add "jobs=%d unrecorded run yields an efficiency report" j;
        List.rev !diff
      in
      List.concat_map check jobs)

(* --- clustered routing ----------------------------------------------------- *)

let cluster_identity ?(jobs = [ 1; 2 ]) inst =
  guard "cluster-identity" (fun () ->
      let flat = Router.ast_dme ~jobs:1 inst in
      let degc (s : Dme.Engine.stats) = { s with gc = Obs.Gcstat.zero } in
      let check j =
        let clu =
          Router.ast_dme ~jobs:j ~clustered:true ~clusters:1 inst
        in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff := { Audit.invariant = "cluster-identity"; detail } :: !diff)
            fmt
        in
        if not (Audit.tree_equal flat.routed clu.routed) then
          add "jobs=%d clusters=1 tree differs structurally from flat" j;
        Array.iteri
          (fun i d ->
            if d <> clu.evaluation.delays.(i) then
              add "jobs=%d sink %d delay: flat %.17g, clustered %.17g" j i d
                clu.evaluation.delays.(i))
          flat.evaluation.delays;
        if flat.evaluation.wirelength <> clu.evaluation.wirelength then
          add "jobs=%d wirelength: flat %.17g, clustered %.17g" j
            flat.evaluation.wirelength clu.evaluation.wirelength;
        (* Aggregate stats equality (gc zeroed, as ever): the single
           region's plan must be exactly the flat plan and the top-level
           stitch over one root must add zero work — scheduling,
           sub-instance construction and reglobalization all invisible. *)
        if degc flat.engine <> degc clu.engine then
          add "jobs=%d clusters=1 engine stats differ from flat" j;
        (match clu.clustering with
         | Some d when d.Dme.Cluster.n_clusters = 1 -> ()
         | Some d ->
           add "jobs=%d clusters=1 reports %d clusters" j d.Dme.Cluster.n_clusters
         | None -> add "jobs=%d clustered run reports no clustering detail" j);
        List.rev !diff
      in
      List.concat_map check jobs)

let clustered ?(inject = false) ?clusters inst =
  let k =
    match clusters with
    | Some k -> k
    | None -> Int.max 2 (Int.min 4 (Instance.n_sinks inst))
  in
  guard "clustered" (fun () ->
      let part =
        Audit.partition_cover inst (Dme.Cluster.partition inst ~clusters:k)
      in
      let result = Router.ast_dme ~clustered:true ~clusters:k inst in
      let routed, report =
        if inject then begin
          (* The victim's group is spread over regions by the spatial
             partition, so the snaked leaf violates the bound across a
             cluster boundary — the auditor must still see it: the skew
             contract is global to the stitched tree, not per region. *)
          let routed = inject_skew_violation inst result.Router.routed in
          (routed, Evaluate.run inst routed)
        end
        else (result.Router.routed, result.Router.evaluation)
      in
      part @ Audit.run Audit.Grouped inst routed report)

(* --- repair bit-identity --------------------------------------------------- *)

let repair_identity ?(jobs = [ 2; 4 ]) inst =
  guard "repair-identity" (fun () ->
      let module Repair = Clocktree.Repair in
      (* One plan, many repairs: the oracle isolates the repair pass
         from the (separately guarded) engine. *)
      let routed, _ = Dme.Engine.run ~config:Router.ast_default_config inst in
      let serial regions =
        {
          Repair.default_config with
          jobs = 1;
          incremental = false;
          regions;
        }
      in
      (* Two families: the default decomposition (no regional phase on
         oracle-sized instances), and a forced 4-way decomposition that
         exercises the regional fixpoints + parallel phase on every
         case.  Within a family, incremental and parallel variants must
         reproduce the serial from-scratch repair bit for bit — trees,
         delays and stats. *)
      let check (family, regions) =
        let base = serial regions in
        let base_t, base_s = Repair.run ~config:base inst routed in
        let base_d = Evaluate.delays inst base_t in
        let variants =
          ("incremental jobs=1", { base with Repair.incremental = true })
          :: List.map
               (fun j ->
                 ( Printf.sprintf "incremental jobs=%d" j,
                   { base with Repair.incremental = true; jobs = j } ))
               jobs
        in
        List.concat_map
          (fun (label, cfg) ->
            let t, s = Repair.run ~config:cfg inst routed in
            let diff = ref [] in
            let add fmt =
              Printf.ksprintf
                (fun detail ->
                  diff :=
                    { Audit.invariant = "repair-identity"; detail } :: !diff)
                fmt
            in
            if not (Audit.tree_equal base_t t) then
              add "%s %s: repaired tree differs from serial from-scratch"
                family label;
            let d = Evaluate.delays inst t in
            Array.iteri
              (fun i dv ->
                if dv <> d.(i) then
                  add "%s %s sink %d delay: serial %.17g, variant %.17g" family
                    label i dv d.(i))
              base_d;
            if s <> base_s then
              add
                "%s %s: repair stats differ from serial from-scratch \
                 (added_wire %.17g vs %.17g, adjusted %d vs %d, cycles %d vs \
                 %d, lifts %d vs %d)"
                family label base_s.Repair.added_wire s.Repair.added_wire
                base_s.Repair.adjusted_edges s.Repair.adjusted_edges
                base_s.Repair.cycles s.Repair.cycles
                base_s.Repair.lift_iterations s.Repair.lift_iterations;
            List.rev !diff)
          variants
      in
      List.concat_map check
        [ ("auto-regions", None); ("forced-regions", Some 4) ])

(* --- windowed evaluation bit-identity -------------------------------------- *)

let evaluate_identity ?(jobs = [ 2; 4 ]) inst =
  guard "evaluate-identity" (fun () ->
      (* One routed tree, many evaluations: the serial report is the
         specification, the windowed kernels must reproduce it bit for
         bit.  Oracle-sized instances derive fewer than 2 windows, so
         the decomposition is forced ([regions = 4]) to make the
         parallel path actually run. *)
      let r = Router.ast_dme ~jobs:1 inst in
      let base = r.Router.evaluation in
      let arena =
        Clocktree.Arena.of_routed inst.Instance.params ~rd:inst.Instance.rd
          r.Router.routed
      in
      let check j =
        let w = Evaluate.report_of_arena ~jobs:j ~regions:4 inst arena in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff := { Audit.invariant = "evaluate-identity"; detail } :: !diff)
            fmt
        in
        let fcheck name a b =
          if a <> b then
            add "jobs=%d %s: serial %.17g, windowed %.17g" j name a b
        in
        fcheck "wirelength" base.Evaluate.wirelength w.Evaluate.wirelength;
        fcheck "snaking" base.Evaluate.snaking w.Evaluate.snaking;
        fcheck "min_delay" base.Evaluate.min_delay w.Evaluate.min_delay;
        fcheck "max_delay" base.Evaluate.max_delay w.Evaluate.max_delay;
        fcheck "global_skew" base.Evaluate.global_skew w.Evaluate.global_skew;
        fcheck "max_group_skew" base.Evaluate.max_group_skew
          w.Evaluate.max_group_skew;
        Array.iteri
          (fun i d ->
            if d <> w.Evaluate.delays.(i) then
              add "jobs=%d sink %d delay: serial %.17g, windowed %.17g" j i d
                w.Evaluate.delays.(i))
          base.Evaluate.delays;
        Array.iteri
          (fun g s ->
            if s <> w.Evaluate.group_skew.(g) then
              add "jobs=%d group %d skew: serial %.17g, windowed %.17g" j g s
                w.Evaluate.group_skew.(g))
          base.Evaluate.group_skew;
        List.rev !diff
      in
      List.concat_map check jobs)

(* --- arena-direct embedding bit-identity ------------------------------------ *)

let embed_identity ?(jobs = [ 1; 2; 4 ]) inst =
  guard "embed-identity" (fun () ->
      let module Arena = Clocktree.Arena in
      (* One merge plan, many embeddings: the recursive boxed-tree
         reference flattened through [Arena.of_routed] is the
         specification; the arena-direct embedding must populate every
         column identically, serial or parallel. *)
      let root, _ = Dme.Engine.plan ~config:Router.ast_default_config inst in
      let spec =
        Arena.of_routed inst.Instance.params ~rd:inst.Instance.rd
          (Dme.Embed.run_reference inst root)
      in
      let check j =
        let a =
          Par.Pool.with_pool ~jobs:j (fun pool ->
              Dme.Embed.run_arena ?pool inst root)
        in
        let diff = ref [] in
        let add fmt =
          Printf.ksprintf
            (fun detail ->
              diff := { Audit.invariant = "embed-identity"; detail } :: !diff)
            fmt
        in
        if a.Arena.n <> spec.Arena.n then
          add "jobs=%d arena has %d nodes, reference %d" j a.Arena.n
            spec.Arena.n
        else begin
          if a.Arena.source_len <> spec.Arena.source_len then
            add "jobs=%d source_len: direct %.17g, reference %.17g" j
              a.Arena.source_len spec.Arena.source_len;
          let icol name (c : int array) (s : int array) =
            Array.iteri
              (fun v x ->
                if x <> s.(v) then
                  add "jobs=%d node %d %s: direct %d, reference %d" j v name x
                    s.(v))
              c
          in
          icol "left" a.Arena.left spec.Arena.left;
          icol "right" a.Arena.right spec.Arena.right;
          icol "parent" a.Arena.parent spec.Arena.parent;
          icol "size" a.Arena.size spec.Arena.size;
          icol "sink" a.Arena.sink spec.Arena.sink;
          icol "group" a.Arena.group spec.Arena.group;
          let fcol name (c : float array) (s : float array) =
            Array.iteri
              (fun v x ->
                if x <> s.(v) then
                  add "jobs=%d node %d %s: direct %.17g, reference %.17g" j v
                    name x s.(v))
              c
          in
          fcol "scap" a.Arena.scap spec.Arena.scap;
          fcol "len" a.Arena.len spec.Arena.len;
          Array.iteri
            (fun v (p : Geometry.Pt.t) ->
              let q = spec.Arena.pos.(v) in
              if p.Geometry.Pt.x <> q.Geometry.Pt.x
                 || p.Geometry.Pt.y <> q.Geometry.Pt.y
              then
                add "jobs=%d node %d pos: direct (%.17g, %.17g), reference \
                     (%.17g, %.17g)"
                  j v p.Geometry.Pt.x p.Geometry.Pt.y q.Geometry.Pt.x
                  q.Geometry.Pt.y)
            a.Arena.pos
        end;
        List.rev !diff
      in
      List.concat_map check jobs)

(* --- multi-level clustering ------------------------------------------------- *)

let cluster_depth_identity ?(jobs = [ 2; 4 ]) inst =
  guard "cluster-depth-identity" (fun () ->
      (* k = 4 is the smallest cluster count whose depth-2 hierarchy is
         non-degenerate (fan-out 2 over two levels). *)
      let k = 4 in
      let degc (s : Dme.Engine.stats) = { s with gc = Obs.Gcstat.zero } in
      let diff = ref [] in
      let add fmt =
        Printf.ksprintf
          (fun detail ->
            diff :=
              { Audit.invariant = "cluster-depth-identity"; detail } :: !diff)
          fmt
      in
      let compare_runs label (a : Router.result) (b : Router.result) =
        if not (Audit.tree_equal a.Router.routed b.Router.routed) then
          add "%s: trees differ structurally" label;
        Array.iteri
          (fun i d ->
            if d <> b.Router.evaluation.Evaluate.delays.(i) then
              add "%s sink %d delay: %.17g vs %.17g" label i d
                b.Router.evaluation.Evaluate.delays.(i))
          a.Router.evaluation.Evaluate.delays;
        if
          a.Router.evaluation.Evaluate.wirelength
          <> b.Router.evaluation.Evaluate.wirelength
        then
          add "%s wirelength: %.17g vs %.17g" label
            a.Router.evaluation.Evaluate.wirelength
            b.Router.evaluation.Evaluate.wirelength;
        if degc a.Router.engine <> degc b.Router.engine then
          add "%s: aggregate engine stats differ" label
      in
      (* Depth 1 is the historical two-level construction; it must be
         what the default depth resolves to at this cluster count. *)
      let auto = Router.ast_dme ~jobs:1 ~clustered:true ~clusters:k inst in
      let d1 =
        Router.ast_dme ~jobs:1 ~clustered:true ~clusters:k ~cluster_depth:1
          inst
      in
      compare_runs "depth=1 vs auto" d1 auto;
      (* A forced depth-2 hierarchy: jobs-invariant, audit-clean, and
         honestly reported in the clustering detail. *)
      let d2 =
        Router.ast_dme ~jobs:1 ~clustered:true ~clusters:k ~cluster_depth:2
          inst
      in
      List.iter
        (fun j ->
          let d2j =
            Router.ast_dme ~jobs:j ~clustered:true ~clusters:k ~cluster_depth:2
              inst
          in
          compare_runs (Printf.sprintf "depth=2 jobs=%d vs jobs=1" j) d2j d2)
        jobs;
      (match d2.Router.clustering with
       | None -> add "depth=2 run reports no clustering detail"
       | Some d ->
         let kr = Int.min k (Int.max 1 (Instance.n_sinks inst)) in
         if d.Dme.Cluster.n_clusters <> kr then
           add "depth=2 reports %d clusters, expected %d"
             d.Dme.Cluster.n_clusters kr;
         if kr = k && d.Dme.Cluster.depth <> 2 then
           add "depth=2 realized depth %d" d.Dme.Cluster.depth;
         if kr = k && Array.length d.Dme.Cluster.super = 0 then
           add "depth=2 reports no super-stitch plans";
         let covered =
           Array.fold_left
             (fun acc (c : Dme.Cluster.cluster_stats) ->
               acc + c.Dme.Cluster.n_sinks)
             0 d.Dme.Cluster.per_cluster
         in
         if covered <> Instance.n_sinks inst then
           add "depth=2 regions cover %d sinks of %d" covered
             (Instance.n_sinks inst));
      let audit =
        Audit.run Audit.Grouped inst d2.Router.routed d2.Router.evaluation
      in
      List.rev !diff @ audit)

(* --- Elmore vs transient ------------------------------------------------- *)

let delay_models ?(resolution = 300) inst =
  guard "delay-models" (fun () ->
      let r = Router.ast_dme inst in
      let rct, sink_index =
        Tree.to_rctree inst.params ~rd:inst.rd ~n_sinks:(Instance.n_sinks inst)
          r.routed
      in
      let elmore = Rc.Rctree.elmore rct in
      let sim = Rc.Transient.step_response_auto ~resolution rct in
      let max_elmore = Array.fold_left Float.max 0. elmore in
      (* Discretization slack: the simulator reports crossings on a grid
         of pitch max_elmore / resolution. *)
      let dt = max_elmore /. float_of_int resolution in
      let slack = (3. *. dt) +. 1e-9 in
      let out = ref [] in
      let add invariant fmt =
        Printf.ksprintf
          (fun detail -> out := { Audit.invariant; detail } :: !out)
          fmt
      in
      Array.iteri
        (fun sink idx ->
          let te = elmore.(idx) in
          let tt = sim.crossing.(idx) in
          if Float.is_nan tt then
            add "transient-crossed" "sink %d never reached 50%%" sink
          else if tt > te +. slack then
            (* Elmore bounds the 50% crossing from above (Gupta et al.);
               no useful universal lower bound exists — resistance
               shielding can push the true crossing to a tiny fraction of
               the Elmore estimate. *)
            add "elmore-upper-bound"
              "sink %d: transient %.6g ps exceeds Elmore %.6g ps" sink tt te)
        sink_index;
      (* Charging an RC tree from the root, every node's voltage trails
         its parent's, so 50% crossings are non-decreasing downstream. *)
      for i = 1 to Rc.Rctree.size rct - 1 do
        let p = Rc.Rctree.parent rct i in
        let tp = sim.crossing.(p) and ti = sim.crossing.(i) in
        if Float.is_finite tp && Float.is_finite ti && ti < tp -. slack then
          add "crossing-monotone"
            "node %d crosses at %.6g ps before its parent %d at %.6g ps" i ti
            p tp
      done;
      (* Chapter III: intra-group skews agree between the models far more
         tightly than absolute delays do.  The claim is about realistic
         interconnect; under adversarial electrical parameters (near-zero
         driver resistance, fF-to-pF load spreads) higher-order effects
         legitimately skew Elmore-balanced trees, so the check is gated
         to the envelope the thesis speaks to. *)
      let realistic =
        inst.params = Rc.Wire.default
        && inst.rd >= 10.
        && Array.for_all
             (fun (s : Sink.t) -> s.cap >= 1. && s.cap <= 1000.)
             inst.sinks
      in
      if !out = [] && realistic then begin
        let skews delays =
          let lo = Array.make inst.n_groups Float.infinity in
          let hi = Array.make inst.n_groups Float.neg_infinity in
          Array.iter
            (fun (s : Sink.t) ->
              lo.(s.group) <- Float.min lo.(s.group) delays.(s.id);
              hi.(s.group) <- Float.max hi.(s.group) delays.(s.id))
            inst.sinks;
          Array.init inst.n_groups (fun g -> Float.max 0. (hi.(g) -. lo.(g)))
        in
        let per_sink arr = Array.map (fun i -> arr.(i)) sink_index in
        let sk_e = skews (per_sink elmore) in
        let sk_t = skews (per_sink sim.crossing) in
        Array.iteri
          (fun g se ->
            let st = sk_t.(g) in
            let tol = (0.25 *. Float.max se st) +. (6. *. dt) +. 1e-9 in
            if Float.abs (se -. st) > tol then
              add "skew-agreement"
                "group %d: Elmore skew %.6g ps vs transient %.6g ps" g se st)
          sk_e
      end;
      List.rev !out)

let all ?(inject = false) inst =
  routers ~inject inst @ cache_identity inst @ par_identity inst
  @ incremental_identity inst @ trace_identity inst @ sched_identity inst
  @ cluster_identity inst @ cluster_depth_identity inst
  @ repair_identity inst @ evaluate_identity inst @ embed_identity inst
  @ clustered ~inject inst @ delay_models inst

let reproduces ?inject ~of_run inst =
  let names = List.map (fun f -> f.oracle) of_run in
  let relevant name = List.mem name names in
  let findings = all ?inject inst in
  List.exists (fun f -> relevant f.oracle) findings
