(** Property-based fuzzing and invariant auditing for the whole routing
    stack: {!Gen} makes difficult instances, {!Audit} checks routed
    trees, {!Oracle} cross-checks the routers and delay models, {!Shrink}
    minimises failures and {!Runner} drives a whole fuzz run.

    The one-call entry points: [Check.fuzz ~cases ~seed ()] for a run,
    [Check.replay ~seed ~case ()] for one case from a printed repro. *)

module Gen = Gen
module Audit = Audit
module Oracle = Oracle
module Shrink = Shrink
module Runner = Runner

let fuzz = Runner.run
let replay = Runner.replay
