(** Differential oracles: run the library's routers and delay models
    against each other on one instance and audit every output against its
    own contract.

    - {!routers}: AST-DME, EXT-BST, greedy-DME and MMM-DME each produce a
      structurally/semantically valid tree satisfying the skew contract
      they were routed under (grouped bound for AST/MMM, fused global
      bound for EXT-BST, zero skew for greedy).  Wirelength orderings
      between routers are deliberately {e not} asserted — on grouped
      instances no router dominates another in general.
    - {!cache_identity}: the trial-merge cache is semantically inert —
      AST-DME with [trial_cache] off and on produce identical trees.
    - {!par_identity}: parallel cost ranking is deterministic — AST-DME
      with [jobs] > 1 produces the exact tree, sink delays, wirelength
      {e and} trial-cache statistics of the serial [jobs = 1] run.
    - {!incremental_identity}: the cross-round proposal cache is
      semantically inert — AST-DME with [incremental] on produces the
      exact tree, delays and wirelength of the from-scratch run while
      never probing more, and its probe accounting balances.
    - {!trace_identity}: structured tracing is semantically inert —
      AST-DME with a live {!Obs.Trace} produces the exact tree, delays,
      wirelength and engine stats of the untraced run, the journal's
      per-round sums match the engine's aggregate stats, and the Chrome
      export round-trips through {!Obs.Json}.
    - {!sched_identity}: the parallel-efficiency flight recorder and
      the progress heartbeat are semantically inert — AST-DME with a
      live {!Obs.Sched} and a muted {!Obs.Progress} produces the exact
      tree, delays, wirelength and engine stats of the unrecorded run
      at every jobs count, and the resulting report is present and
      sane (serial fraction in [0,1], phase walls >= parallel walls).
    - {!cluster_identity}: the two-level clustered router degenerates
      exactly — with [clusters = 1] it produces the flat router's tree,
      delays, wirelength and engine stats, for every jobs count.
    - {!repair_identity}: incremental / regional / parallel skew repair
      is bit-identical to the serial from-scratch pass — same tree,
      delays and stats for any jobs count, with regions both auto-derived
      and forced.
    - {!cluster_depth_identity}: multi-level clustering degenerates and
      scales exactly — a forced [cluster_depth = 1] reproduces the
      default (historical two-level) run bit for bit, and a forced
      depth-2 hierarchy is jobs-invariant, audit-clean and honestly
      reported in the clustering detail.
    - {!evaluate_identity}: the windowed parallel evaluation kernels
      reproduce the serial report bit for bit for every jobs count,
      with the decomposition forced so the parallel path actually runs
      on oracle-sized instances.
    - {!embed_identity}: the arena-direct embedding (serial and
      parallel) populates every arena column exactly as flattening the
      recursive reference embedder's boxed tree would.
    - {!clustered}: a genuinely clustered run ([clusters >= 2]) yields a
      covering partition and a stitched tree that passes the full audit
      under the global grouped contract.
    - {!delay_models}: Elmore and backward-Euler transient 50%-crossing
      delays agree on the routed RC tree wherever an exact relation
      exists: every sink crosses, no crossing exceeds its Elmore delay
      (Elmore is an upper bound for RC trees under step input), and
      crossings are non-decreasing from the root down (node voltages
      trail their parents' while charging).  The thesis' Chapter III
      claim — intra-group skews of the two models agree within a small
      tolerance — is additionally asserted for realistic interconnect
      parameters (default wire RC, rd >= 10 ohm, loads within 1-1000 fF);
      under adversarial RC the claim is legitimately false, which the
      fuzzer itself demonstrated.

    A raised exception anywhere is converted into a finding with oracle
    name ["exception"], so fuzzing surfaces crashes as ordinary
    failures. *)

type finding = {
  oracle : string;  (** "ast-dme", "cache-identity", "delay-models", ... *)
  violations : Audit.violation list;
}

val pp_finding : Format.formatter -> finding -> unit

val routers : ?inject:bool -> Clocktree.Instance.t -> finding list
val cache_identity : Clocktree.Instance.t -> finding list

(** Route with [jobs = 1] then with each entry of [jobs] (default
    [[2; 4]]) and report any difference in tree structure, per-sink
    delays, wirelength or trial-merge statistics. *)
val par_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Route from scratch ([incremental = false], [jobs = 1]) then
    incrementally with each entry of [jobs] (default [[1; 2]]) and report
    any difference in tree structure, per-sink delays or wirelength, any
    probe-count increase, and any violation of the accounting identity
    [nn_reprobes + nn_probes_saved = from-scratch probes].  Trial-merge
    stats are deliberately not compared: skipped probes skip their
    candidates' trial merges (see DESIGN.md section 10). *)
val incremental_identity :
  ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Route untraced with [jobs = 1], then traced (fresh {!Obs.Trace})
    with each entry of [jobs] (default [[1; 2]]) and report any
    difference in tree structure, per-sink delays, wirelength or engine
    stats (tracing must be semantically inert), any disagreement
    between the journal's per-round sums (probes, probes saved, trial
    merges, trial-cache hits, round count) and the engine's aggregate
    stats, and any failure of the Chrome export to re-parse via
    {!Obs.Json.of_string} with a non-empty [traceEvents] list. *)
val trace_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Route unrecorded with [jobs = 1], then with a fresh {!Obs.Sched}
    recorder and a muted {!Obs.Progress} reporter at each entry of
    [jobs] (default [[1; 2; 4]]), and report any difference in tree
    structure, per-sink delays, wirelength or engine stats (gc zeroed)
    against a same-jobs unrecorded run — recording observes scheduling,
    it must never steer it.  Additionally asserts the recorded result
    carries an efficiency report with the right jobs count, a serial
    fraction in [0, 1] and phase walls >= parallel walls, and that the
    unrecorded result carries none. *)
val sched_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Route flat with [jobs = 1], then clustered with [clusters = 1] for
    each entry of [jobs] (default [[1; 2]]), and report any difference
    in tree structure, per-sink delays, wirelength or engine stats (gc
    zeroed): the degenerate single-region run must be bit-identical to
    the flat router — partitioning, sub-instance re-indexing and the
    top-level stitch all semantically invisible. *)
val cluster_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Route clustered at [clusters = 4] with a forced [cluster_depth] of
    1 (must be bit-identical to the default-depth run — tree, delays,
    wirelength, aggregate engine stats with gc zeroed) and of 2 (must
    be bit-identical across [jobs = 1] and each entry of [jobs],
    default [[2; 4]], report a covering region set, realized depth 2
    with non-empty super-stitch detail, and pass the full grouped
    audit). *)
val cluster_depth_identity :
  ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Route once serially, then re-evaluate the routed tree through the
    windowed kernels ([regions = 4] forced, each entry of [jobs],
    default [[2; 4]]) and report any field of the report — delays,
    wirelength, snaking, extrema, group skews — that is not bit-equal
    to the serial evaluation. *)
val evaluate_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Plan once with the AST engine, then embed arena-direct under each
    entry of [jobs] (default [[1; 2; 4]]) and compare every arena
    column — topology, sizes, sink ids, groups, caps, positions, edge
    lengths — bit for bit against the recursive reference embedder's
    tree flattened through [Arena.of_routed]. *)
val embed_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Plan once with the AST engine, then repair under two decomposition
    families — the default (auto regions, i.e. the pure global cycle on
    oracle-sized instances) and a forced 4-way regional split that
    exercises the regional-fixpoint machinery on every case — and
    report any difference between the serial from-scratch repair
    ([jobs = 1], [incremental = false]) and its incremental variants at
    [jobs = 1] and each entry of [jobs] (default [[2; 4]]): tree
    structure, per-sink delays and the full repair stats must be
    bit-identical (see {!Clocktree.Repair}'s determinism contract). *)
val repair_identity : ?jobs:int list -> Clocktree.Instance.t -> finding list

(** Audit the clustered router's output: the spatial partition covers
    every sink exactly once with non-empty regions
    ({!Audit.partition_cover}), and the stitched tree passes the full
    {!Audit.run} under the {e global} [Grouped] contract — the skew
    bound holds across cluster boundaries, not merely per region.
    [clusters] defaults to [min 4 n_sinks] (at least 2, pre-clamp);
    [inject] snakes one leaf before auditing, as in {!routers}. *)
val clustered :
  ?inject:bool -> ?clusters:int -> Clocktree.Instance.t -> finding list

val delay_models : ?resolution:int -> Clocktree.Instance.t -> finding list

(** Every oracle in sequence; the empty list means the case passed.
    [inject] deliberately snakes one leaf edge of the AST tree before
    auditing, to prove violations are caught (used by the fuzz
    self-test). *)
val all : ?inject:bool -> Clocktree.Instance.t -> finding list

(** Re-run only the oracles whose names appear in [of_run], e.g. to check
    that a shrunk instance still reproduces the original failure. *)
val reproduces : ?inject:bool -> of_run:finding list -> Clocktree.Instance.t -> bool
