(** Invariant auditor for routed clock trees.

    Three layers, each returning the (possibly empty) list of violated
    invariants:

    - {!structure}: the tree is well-formed — every instance sink appears
      as exactly one leaf and is byte-identical to the instance's record;
      positions and edge lengths are finite; every edge is at least as
      long as the L1 distance between its endpoints (the excess being
      snaking wire); the derived RC tree is electrically sane.
    - {!semantics}: an {!Clocktree.Evaluate.report} is consistent with
      the tree it claims to describe — delays, wirelength, snaking and
      all skew aggregates match an independent recomputation.
    - {!bound}: the tree satisfies the skew contract it was routed
      under ({!Grouped} for AST-DME/MMM-DME, {!Global} for the fused
      EXT-BST and zero-skew baselines). *)

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** Skew contract of a router's output (see {!Astskew.Router}). *)
type contract =
  | Grouped  (** per-group skew within each group's own bound *)
  | Global of float  (** global skew within the given bound *)

val structure :
  Clocktree.Instance.t -> Clocktree.Tree.routed -> violation list

val semantics :
  Clocktree.Instance.t ->
  Clocktree.Tree.routed ->
  Clocktree.Evaluate.report ->
  violation list

val bound :
  contract -> Clocktree.Instance.t -> Clocktree.Evaluate.report -> violation list

(** [partition_cover inst regions] audits a spatial partition of the
    instance's sink ids (see {!Dme.Cluster.partition}): every sink id
    appears in exactly one region, every region is non-empty, and at
    least one region exists when the instance has sinks. *)
val partition_cover :
  Clocktree.Instance.t -> int array array -> violation list

(** All three layers in order. *)
val run :
  contract ->
  Clocktree.Instance.t ->
  Clocktree.Tree.routed ->
  Clocktree.Evaluate.report ->
  violation list

(** Structural equality of routed trees, exact on floats — the
    "bit-identical" relation the trial-merge cache promises. *)
val tree_equal : Clocktree.Tree.routed -> Clocktree.Tree.routed -> bool
