type failure = {
  case : Gen.case;
  findings : Oracle.finding list;
  shrunk : Clocktree.Instance.t;
  shrunk_findings : Oracle.finding list;
}

type summary = {
  seed : int64;
  cases : int;
  scaled_cases : int;
  passed : int;
  failures : failure list;
  elapsed_s : float;
}

let check ?inject (case : Gen.case) =
  match Oracle.all ?inject case.instance with
  | [] -> None
  | findings ->
    let shrunk =
      Shrink.run
        ~fails:(Oracle.reproduces ?inject ~of_run:findings)
        case.instance
    in
    let shrunk_findings = Oracle.all ?inject shrunk in
    Some { case; findings; shrunk; shrunk_findings }

(* Huge cases run (and shrink against) the ranking-path, repair and
   evaluation identity oracles alone: the full battery would take
   minutes per 1500-sink instance, and scale stresses exactly the
   ranking, repair and windowed-evaluation paths — which is what these
   audit.  The incremental oracle runs at jobs = 2 so cache reuse and
   parallel probing are exercised together; repair-identity at this
   size auto-derives multiple regions, so the regional-fixpoint
   machinery is exercised against the serial from-scratch pass on every
   huge case; sched-identity at jobs = 2 proves the flight recorder
   stays inert exactly where its ledgers are busiest. *)
let huge_oracles inst =
  Oracle.par_identity inst
  @ Oracle.incremental_identity ~jobs:[ 2 ] inst
  @ Oracle.repair_identity ~jobs:[ 2 ] inst
  @ Oracle.evaluate_identity ~jobs:[ 2 ] inst
  @ Oracle.sched_identity ~jobs:[ 2 ] inst

(* Banked cases target the clustered path: the degenerate clusters=1 run
   must be bit-identical to flat (at jobs 2, so region scheduling rides
   along), a forced depth-2 hierarchy must be jobs-invariant and
   audit-clean, and a genuinely clustered run must pass the full audit
   under the global grouped contract. *)
let banked_oracles inst =
  Oracle.cluster_identity ~jobs:[ 2 ] inst
  @ Oracle.cluster_depth_identity ~jobs:[ 2 ] inst
  @ Oracle.clustered inst

let oracles_for (regime : Gen.regime) =
  match regime with
  | Gen.Huge -> huge_oracles
  | Gen.Banked -> banked_oracles
  | _ -> assert false

let check_scaled (case : Gen.case) =
  let oracles = oracles_for case.regime in
  match oracles case.instance with
  | [] -> None
  | findings ->
    let fails inst = oracles inst <> [] in
    let shrunk = Shrink.run ~fails case.instance in
    let shrunk_findings = oracles shrunk in
    Some { case; findings; shrunk; shrunk_findings }

let run ?inject ?(progress = fun _ -> ()) ~cases ~seed () =
  let t0 = Obs.Timer.now () in
  let failures = ref [] in
  for index = 0 to cases - 1 do
    let case = Gen.case ~seed ~index () in
    progress case;
    match check ?inject case with
    | None -> ()
    | Some failure -> failures := failure :: !failures
  done;
  (* One benchmark-scale case per 25 ordinary ones, at indices just past
     the ordinary range so repros stay addressable as (seed, index,
     regime).  Even slots run Huge against the ranking-path identity
     oracles, odd slots run Banked against the clustered-routing
     oracles. *)
  let scaled_cases = cases / 25 in
  for k = 0 to scaled_cases - 1 do
    let regime = if k mod 2 = 0 then Gen.Huge else Gen.Banked in
    let case = Gen.case ~regime ~seed ~index:(cases + k) () in
    progress case;
    match check_scaled case with
    | None -> ()
    | Some failure -> failures := failure :: !failures
  done;
  let failures = List.rev !failures in
  {
    seed;
    cases;
    scaled_cases;
    passed = cases + scaled_cases - List.length failures;
    failures;
    elapsed_s = Obs.Timer.now () -. t0;
  }

let replay ?inject ?regime ~seed ~case () =
  let c = Gen.case ?regime ~seed ~index:case () in
  match c.regime with
  | Gen.Huge | Gen.Banked -> (oracles_for c.regime) c.instance
  | _ -> Oracle.all ?inject c.instance

let ok s = s.failures = []

let json_of_failure f =
  let open Obs.Json in
  let violations vs =
    List
      (List.map
         (fun (v : Audit.violation) ->
           Obj
             [ ("invariant", String v.invariant); ("detail", String v.detail) ])
         vs)
  in
  let findings fs =
    List
      (List.map
         (fun (x : Oracle.finding) ->
           Obj
             [ ("oracle", String x.oracle); ("violations", violations x.violations) ])
         fs)
  in
  Obj
    [
      ("case", Int f.case.index);
      ("regime", String (Gen.regime_to_string f.case.regime));
      ("n_sinks", Int (Clocktree.Instance.n_sinks f.case.instance));
      ("findings", findings f.findings);
      ("shrunk_sinks", Int (Clocktree.Instance.n_sinks f.shrunk));
      ("shrunk_findings", findings f.shrunk_findings);
    ]

let json_of_summary s =
  let open Obs.Json in
  Obj
    [
      ("seed", String (Int64.to_string s.seed));
      ("cases", Int s.cases);
      ("scaled_cases", Int s.scaled_cases);
      ("passed", Int s.passed);
      ("failed", Int (List.length s.failures));
      ("elapsed_s", Float s.elapsed_s);
      ("failures", List (List.map json_of_failure s.failures));
    ]

let repro_text f =
  let b = Buffer.create 1024 in
  Printf.bprintf b "# fuzz failure: seed %Ld case %d regime %s\n"
    f.case.seed f.case.index
    (Gen.regime_to_string f.case.regime);
  Printf.bprintf b "# replay: Check.replay%s ~seed:%LdL ~case:%d ()\n"
    (match f.case.regime with
     | Gen.Huge -> " ~regime:Check.Gen.Huge"
     | Gen.Banked -> " ~regime:Check.Gen.Banked"
     | _ -> "")
    f.case.seed f.case.index;
  List.iter
    (fun (x : Oracle.finding) ->
      List.iter
        (fun (v : Audit.violation) ->
          Printf.bprintf b "# %s / %s: %s\n" x.oracle v.invariant v.detail)
        x.violations)
    f.shrunk_findings;
  Buffer.add_string b (Clocktree.Io.to_string f.shrunk);
  Buffer.contents b
