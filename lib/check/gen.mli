(** Random-instance generator for the fuzzing subsystem.

    Each {!regime} targets one family of "difficult instances" in the
    thesis' sense: sink-group structures or electrical corners that
    stress a different part of the planner / repair / evaluation stack.
    Everything is driven by {!Workload.Rng}, so a [(seed, index)] pair
    identifies an instance exactly — across runs and platforms. *)

type regime =
  | Uniform  (** uniform sinks, a few groups — the baseline workload *)
  | Intermingled  (** every group spread across the whole die (Table II) *)
  | Clustered  (** spatially clustered groups (Table I) *)
  | Collinear  (** all sinks on one horizontal/vertical/±45° line *)
  | Duplicates  (** coincident sink locations, possibly on the source *)
  | Tiny_groups  (** many degenerate groups of 1-3 sinks *)
  | Extreme_rc  (** extreme unit RC, driver resistance and load caps *)
  | Zero_bound  (** zero or mixed per-group skew bounds *)
  | Normalized
      (** unit-square die: every coordinate in [0, 1].  Stresses
          coordinate-scale assumptions — most directly the grid index's
          cell sizing, which must stay relative to the instance's extent
          (an absolute floor collapses the whole die into one cell and
          k-NN into full scans) *)
  | Huge
      (** benchmark-scale instances (200 to ~1500 sinks).  Too slow for
          the full oracle battery, so it is excluded from
          {!all_regimes}; {!Runner.run} samples it separately against
          the parallel-identity oracle only. *)
  | Banked
      (** clustered-router-scale instances (10^3 to ~4*10^3 sinks) in a
          few dense spatial banks with empty space between — the
          geometry the two-level partitioner must split cleanly, with
          groups spanning banks so the top-level stitch carries real
          cross-region constraints.  Excluded from {!all_regimes} like
          [Huge]; {!Runner.run} samples it separately against the
          clustered-routing oracles. *)

(** The regimes cycled by index in {!case} — everything except [Huge]
    and [Banked]. *)
val all_regimes : regime array
val regime_to_string : regime -> string
val regime_of_string : string -> regime option

(** One fuzz case: the instance plus the coordinates that regenerate it. *)
type case = {
  seed : int64;  (** master fuzz seed *)
  index : int;  (** case number within the run *)
  regime : regime;
  instance : Clocktree.Instance.t;
}

(** Deterministically rebuild case [index] of a run started from [seed].
    The regime cycles through {!all_regimes} by index unless [regime]
    forces one (the generator stream depends only on [(seed, index)], so
    a forced regime is exactly as reproducible). *)
val case : ?regime:regime -> seed:int64 -> index:int -> unit -> case

(** Sample one instance of the given regime from the generator state. *)
val instance : Workload.Rng.t -> regime -> Clocktree.Instance.t
