(** Greedy instance minimiser for failing fuzz cases.

    [run ~fails inst] repeatedly tries structure-preserving reductions —
    dropping whole sink groups, ddmin-style chunks of sinks, single
    sinks, snapping coordinates and capacitances to coarse values,
    resetting electrical parameters to defaults — keeping a candidate
    whenever [fails] still holds on it, until no reduction applies.
    [fails] should be true on [inst] itself; the result is a (locally)
    minimal instance that still fails, suitable for freezing as a
    regression test.

    Each candidate re-runs [fails] (typically a full router + audit), so
    shrinking is worth its cost only on the small instances the fuzz
    generator produces. *)

val run :
  ?max_checks:int ->
  fails:(Clocktree.Instance.t -> bool) ->
  Clocktree.Instance.t ->
  Clocktree.Instance.t

(** Rebuild a valid instance from a subset of the sinks: ids are
    renumbered densely, groups compressed, per-group bounds filtered.
    [None] if the subset is empty. *)
val with_sinks :
  Clocktree.Instance.t -> Clocktree.Sink.t list -> Clocktree.Instance.t option
