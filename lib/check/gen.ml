module Pt = Geometry.Pt
module Rng = Workload.Rng
module Instance = Clocktree.Instance
module Sink = Clocktree.Sink

type regime =
  | Uniform
  | Intermingled
  | Clustered
  | Collinear
  | Duplicates
  | Tiny_groups
  | Extreme_rc
  | Zero_bound
  | Normalized
  | Huge
  | Banked

(* [Huge] and [Banked] are deliberately absent: instances of hundreds to
   thousands of sinks are far too slow for the full oracle battery that
   every cycled case runs.  The runner samples them separately at a
   reduced rate — Huge against the ranking-path identity oracles, Banked
   against the clustered-routing oracles. *)
let all_regimes =
  [|
    Uniform;
    Intermingled;
    Clustered;
    Collinear;
    Duplicates;
    Tiny_groups;
    Extreme_rc;
    Zero_bound;
    Normalized;
  |]

let regime_to_string = function
  | Uniform -> "uniform"
  | Intermingled -> "intermingled"
  | Clustered -> "clustered"
  | Collinear -> "collinear"
  | Duplicates -> "duplicates"
  | Tiny_groups -> "tiny-groups"
  | Extreme_rc -> "extreme-rc"
  | Zero_bound -> "zero-bound"
  | Normalized -> "normalized"
  | Huge -> "huge"
  | Banked -> "banked"

let regime_of_string s =
  List.find_opt
    (fun r -> regime_to_string r = s)
    (Huge :: Banked :: Array.to_list all_regimes)

type case = {
  seed : int64;
  index : int;
  regime : regime;
  instance : Instance.t;
}

(* Shared knobs.  Instances stay small (<= ~40 sinks) so each fuzz case
   can afford several full router runs plus a transient simulation. *)

let gen_bound rng = Rng.choice rng [| 0.; 1.; 5.; 10.; 25. |]

(* Some coordinates are snapped to a coarse grid to provoke exact ties in
   distances and merging-region computations. *)
let coord rng ~die =
  let x = Rng.float_range rng 0. die in
  if Rng.bool rng then Float.round (x /. 64.) *. 64. else x

let gen_groups rng ~n_groups n =
  (* Round-robin base assignment keeps every group inhabited; a shuffle
     removes the spatial correlation with sink order. *)
  let groups = Array.init n (fun i -> i mod n_groups) in
  Rng.shuffle rng groups;
  groups

let gen_group_bounds rng ~n_groups ~bound =
  if Rng.int rng 3 > 0 then None
  else
    Some
      (Array.init n_groups (fun _ ->
           Rng.choice rng [| 0.; bound; 2. *. bound; 50. |]))

let finish rng ?params ?rd ?group_bounds ~die ~bound ~n_groups locs caps groups
    =
  let n = Array.length locs in
  let sinks =
    Array.init n (fun i ->
        Sink.make ~id:i ~loc:locs.(i) ~cap:caps.(i) ~group:groups.(i))
  in
  let source =
    if Rng.bool rng then Pt.make (die /. 2.) (die /. 2.)
    else Pt.make (Rng.float_range rng 0. die) (Rng.float_range rng 0. die)
  in
  Instance.make ?params ?rd ?group_bounds ~bound ~source ~n_groups sinks

let default_caps rng n = Array.init n (fun _ -> Rng.float_range rng 5. 100.)

let uniform ?(die = 20000.) rng ~scheme =
  let n = 2 + Rng.int rng 39 in
  let n_groups = 1 + Rng.int rng (Int.min 6 n) in
  let locs = Array.init n (fun _ -> Pt.make (coord rng ~die) (coord rng ~die)) in
  let groups =
    match scheme with
    | None -> gen_groups rng ~n_groups n
    | Some scheme ->
      Workload.Partition.assign scheme (Rng.split rng) ~die ~n_groups locs
  in
  let bound = gen_bound rng in
  let group_bounds = gen_group_bounds rng ~n_groups ~bound in
  finish rng ?group_bounds ~die ~bound ~n_groups locs (default_caps rng n)
    groups

let collinear rng =
  let die = 20000. in
  let n = 2 + Rng.int rng 14 in
  let n_groups = 1 + Rng.int rng (Int.min 4 n) in
  let anchor = Pt.make (coord rng ~die) (coord rng ~die) in
  let dir =
    Rng.choice rng [| Pt.make 1. 0.; Pt.make 0. 1.; Pt.make 1. 1.; Pt.make 1. (-1.) |]
  in
  let locs =
    Array.init n (fun _ ->
        let t = Float.round (Rng.float_range rng 0. (die /. 2.)) in
        Pt.add anchor (Pt.scale t dir))
  in
  let groups = gen_groups rng ~n_groups n in
  finish rng ~die ~bound:(gen_bound rng) ~n_groups locs (default_caps rng n)
    groups

let duplicates rng =
  let die = 10000. in
  let n = 2 + Rng.int rng 14 in
  let n_groups = 1 + Rng.int rng (Int.min 4 n) in
  let source = Pt.make (die /. 2.) (die /. 2.) in
  (* A handful of base locations, one of them the source itself; several
     sinks land on the same point. *)
  let n_base = 1 + Rng.int rng 4 in
  let base =
    Array.init n_base (fun i ->
        if i = 0 && Rng.bool rng then source
        else Pt.make (coord rng ~die) (coord rng ~die))
  in
  let locs = Array.init n (fun _ -> Rng.choice rng base) in
  let groups = gen_groups rng ~n_groups n in
  let caps = default_caps rng n in
  let sinks =
    Array.init n (fun i ->
        Sink.make ~id:i ~loc:locs.(i) ~cap:caps.(i) ~group:groups.(i))
  in
  Instance.make ~bound:(gen_bound rng) ~source ~n_groups sinks

let tiny_groups rng =
  let die = 20000. in
  let n = 3 + Rng.int rng 21 in
  (* Group sizes of 1-3: at least (n+2)/3 groups. *)
  let n_groups = ((n + 2) / 3) + Rng.int rng (n - ((n + 2) / 3) + 1) in
  let locs = Array.init n (fun _ -> Pt.make (coord rng ~die) (coord rng ~die)) in
  let groups = gen_groups rng ~n_groups n in
  let bound = gen_bound rng in
  let group_bounds = gen_group_bounds rng ~n_groups ~bound in
  finish rng ?group_bounds ~die ~bound ~n_groups locs (default_caps rng n)
    groups

let extreme_rc rng =
  let die = Rng.choice rng [| 100.; 5000.; 200000. |] in
  let n = 2 + Rng.int rng 14 in
  let n_groups = 1 + Rng.int rng (Int.min 4 n) in
  let params =
    Rc.Wire.make
      ~r:(Rng.choice rng [| 1e-5; 0.003; 0.5; 5. |])
      ~c:(Rng.choice rng [| 1e-4; 0.02; 1.; 5. |])
  in
  let rd = Rng.choice rng [| 0.01; 100.; 1e4 |] in
  let caps = Array.init n (fun _ -> Rng.choice rng [| 0.01; 20.; 2000. |]) in
  let locs = Array.init n (fun _ -> Pt.make (coord rng ~die) (coord rng ~die)) in
  let groups = gen_groups rng ~n_groups n in
  finish rng ~params ~rd ~die ~bound:(gen_bound rng) ~n_groups locs caps groups

let zero_bound rng =
  let die = 20000. in
  let n = 2 + Rng.int rng 19 in
  let n_groups = 1 + Rng.int rng (Int.min 5 n) in
  let locs = Array.init n (fun _ -> Pt.make (coord rng ~die) (coord rng ~die)) in
  let groups = gen_groups rng ~n_groups n in
  let group_bounds =
    if Rng.bool rng then None
    else Some (Array.init n_groups (fun _ -> Rng.choice rng [| 0.; 0.; 10. |]))
  in
  finish rng ?group_bounds ~die ~bound:0. ~n_groups locs (default_caps rng n)
    groups

(* Unit-square die: the whole instance lives in [0, 1] x [0, 1].  The
   coordinate magnitudes sit three to five orders below the other
   regimes', so anything that hard-codes an absolute layout unit (the
   grid index's old 1.0-unit cell floor, say) degenerates here.  Enough
   sinks that a correctly extent-relative grid spans several cells, and
   the tie-provoking snap is relative to the die like everything else. *)
let normalized rng =
  let die = 1.0 in
  let n = 16 + Rng.int rng 25 in
  let n_groups = 1 + Rng.int rng (Int.min 6 n) in
  let coord () =
    let x = Rng.float_range rng 0. die in
    if Rng.bool rng then Float.round (x *. 256.) /. 256. else x
  in
  let locs = Array.init n (fun _ -> Pt.make (coord ()) (coord ())) in
  let groups = gen_groups rng ~n_groups n in
  let bound = gen_bound rng in
  let group_bounds = gen_group_bounds rng ~n_groups ~bound in
  finish rng ?group_bounds ~die ~bound ~n_groups locs (default_caps rng n)
    groups

(* Benchmark-scale instances (hundreds to ~1500 sinks, r4/r5 territory):
   wide enough to exercise many-round multi-merge scheduling and the
   parallel ranking path on realistically deep merge trees.  Bounds stay
   >= 5 ps — zero-bound stress at this scale belongs to [Zero_bound]. *)
let huge rng =
  let die = 100000. in
  let n = 200 + Rng.int rng 1301 in
  let n_groups = 4 + Rng.int rng 13 in
  let locs = Array.init n (fun _ -> Pt.make (coord rng ~die) (coord rng ~die)) in
  let scheme =
    if Rng.bool rng then Workload.Partition.Intermingled
    else Workload.Partition.Clustered
  in
  let groups = Workload.Partition.assign scheme (Rng.split rng) ~die ~n_groups locs in
  let bound = Rng.choice rng [| 5.; 10.; 25. |] in
  finish rng ~die ~bound ~n_groups locs (default_caps rng n) groups

(* Spatially banked sinks at clustered-router scale (10^3 to ~4*10^3):
   a handful of dense blobs with near-empty space between them, the
   geometry the top-down median partitioner has to split cleanly — banks
   straddling a median cut, duplicate-heavy cells inside a bank, and
   group memberships that span banks so the top-level stitch carries
   real shared-group constraints across region boundaries. *)
let banked rng =
  let die = 100000. in
  let n = 1000 + Rng.int rng 3001 in
  let banks = 4 + Rng.int rng 13 in
  let centers =
    Array.init banks (fun _ ->
        Pt.make (Rng.float_range rng 0. die) (Rng.float_range rng 0. die))
  in
  let spread = die /. (4. *. Float.sqrt (float_of_int banks)) in
  let clamp x = Float.min die (Float.max 0. x) in
  let locs =
    Array.init n (fun _ ->
        let c = Rng.choice rng centers in
        Pt.make
          (clamp (c.Pt.x +. Rng.float_range rng (-.spread) spread))
          (clamp (c.Pt.y +. Rng.float_range rng (-.spread) spread)))
  in
  let n_groups = 4 + Rng.int rng 13 in
  let scheme =
    if Rng.bool rng then Workload.Partition.Intermingled
    else Workload.Partition.Clustered
  in
  let groups = Workload.Partition.assign scheme (Rng.split rng) ~die ~n_groups locs in
  let bound = Rng.choice rng [| 5.; 10.; 25. |] in
  finish rng ~die ~bound ~n_groups locs (default_caps rng n) groups

let instance rng regime =
  match regime with
  | Uniform -> uniform rng ~scheme:None
  | Intermingled -> uniform rng ~scheme:(Some Workload.Partition.Intermingled)
  | Clustered -> uniform rng ~scheme:(Some Workload.Partition.Clustered)
  | Collinear -> collinear rng
  | Duplicates -> duplicates rng
  | Tiny_groups -> tiny_groups rng
  | Extreme_rc -> extreme_rc rng
  | Zero_bound -> zero_bound rng
  | Normalized -> normalized rng
  | Huge -> huge rng
  | Banked -> banked rng

let case ?regime ~seed ~index () =
  (* Each case draws from its own generator state so cases are
     independent of each other and of the order they run in. *)
  let rng = Rng.create (Int64.add seed (Int64.of_int (0x10001 * index))) in
  let regime =
    match regime with
    | Some r -> r
    | None -> all_regimes.(index mod Array.length all_regimes)
  in
  { seed; index; regime; instance = instance rng regime }
