(** Uniform-grid spatial index over representative points.

    Used by the merge-ordering stage to generate nearest-neighbour
    candidates in roughly O(1) per query.  Distances here are between the
    stored representative points (L1); callers refine candidates with
    exact region distances. *)

type 'a t

(** [create ~cell] builds an empty index with square cells of side
    [cell] (> 0). *)
val create : cell:float -> 'a t

(** [add t ~id p v] indexes value [v] under [id] at point [p].  An
    existing entry with the same [id] must be removed first. *)
val add : 'a t -> id:int -> Pt.t -> 'a -> unit

(** [remove t ~id p] removes the entry; [p] must be the point it was added
    at.  Unknown ids are ignored. *)
val remove : 'a t -> id:int -> Pt.t -> unit

val size : 'a t -> int

(** [nearest t ?skip p] is the entry whose point is L1-nearest to [p],
    ignoring entries for which [skip] holds.  [None] when no eligible
    entry exists. *)
val nearest : 'a t -> ?skip:(int -> bool) -> Pt.t -> (int * Pt.t * 'a) option

(** [k_nearest t ?skip p k] is up to [k] eligible entries ordered by
    increasing L1 point distance. *)
val k_nearest :
  'a t -> ?skip:(int -> bool) -> Pt.t -> int -> (int * Pt.t * 'a) list

(** [k_nearest_probe t ?skip p k] is {!k_nearest} plus the query's
    {e exclusion bound}: [Some d] promises that every eligible entry
    {e not} in the returned list lies at L1 distance >= [d] (the k-th
    candidate's distance) from [p] — the lower bound the DME incremental
    ranking needs to prove that entries it never evaluated cannot beat a
    cached proposal.  [None] means the scan was exhaustive: the list
    contains {e every} eligible entry, so nothing was excluded. *)
val k_nearest_probe :
  'a t -> ?skip:(int -> bool) -> Pt.t -> int -> (int * Pt.t * 'a) list * float option

(** [cell_of t p] is the grid-cell key of point [p] — exposed so callers
    tracking cached query results can detect mutations landing in a
    specific entry's cell (same-cell bucket churn may reorder distance
    ties, see {!k_nearest_probe}). *)
val cell_of : 'a t -> Pt.t -> int * int

(** All entries within L1 distance [r] of [p].  A negative [r] or an
    empty index returns [[]] without scanning. *)
val within : 'a t -> Pt.t -> float -> (int * Pt.t * 'a) list

(** [iter_within t p r f] applies [f] to every entry within L1 distance
    [r] of [p], without materializing the {!within} list.  Visit order is
    unspecified; callers must be order-insensitive. *)
val iter_within : 'a t -> Pt.t -> float -> (int -> Pt.t -> 'a -> unit) -> unit

(** [for_all_within t p r f] is [List.for_all f (within t p r)] without
    the list.  The scan is {e not} cut short by a failing entry, so the
    grid visit counters do not depend on which entry fails. *)
val for_all_within : 'a t -> Pt.t -> float -> (int -> Pt.t -> 'a -> bool) -> bool

val iter : 'a t -> (int -> Pt.t -> 'a -> unit) -> unit
