(** Deterministic median bipartition of point sets, the geometric kernel
    of the top-down clustering partitioner (see [Dme.Cluster]).

    All functions take the points by an [point_of : int -> Pt.t] lookup
    over an id array rather than materialized point arrays, so callers
    can split index sets over a shared sink table without copying. *)

type axis = X | Y

(** Coordinate of a point along one axis. *)
val coord : axis -> Pt.t -> float

(** The axis of the larger bounding-box extent; ties go to [X], so a
    square (or empty) extent splits vertically. *)
val longer_axis : lo:Pt.t -> hi:Pt.t -> axis

(** Bounding box of a set of points, as [(lo, hi)] corner points.
    [(+inf, +inf), (-inf, -inf)] for an empty set. *)
val extent : (int -> Pt.t) -> int array -> Pt.t * Pt.t

(** [median ~axis point_of ids] splits [ids] into two halves at the
    median along [axis]: the lower half gets [ceil (n / 2)] ids, so both
    halves are non-empty whenever [n >= 2] (raises [Invalid_argument]
    for [n < 2]).  The split is a pure function of the id {e set}:
    entries sort by [(coordinate, id)], so duplicate coordinates break
    ties by id and the input array's order never matters. *)
val median : axis:axis -> (int -> Pt.t) -> int array -> int array * int array

(** [bipartition point_of ids] is {!median} along the {!longer_axis} of
    the set's {!extent} — one step of the top-down MMM-style
    partition. *)
val bipartition : (int -> Pt.t) -> int array -> int array * int array
