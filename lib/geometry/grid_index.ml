type 'a entry = { pt : Pt.t; value : 'a }

(* Query instrumentation: queries = nearest/k_nearest/within calls,
   rings/cells/entries = work done by the ring scans those queries run. *)
let c_queries = Obs.Counter.make "geometry.grid.queries"
let c_rings = Obs.Counter.make "geometry.grid.rings_scanned"
let c_cells = Obs.Counter.make "geometry.grid.cells_visited"
let c_entries = Obs.Counter.make "geometry.grid.entries_scanned"

(* Cells are keyed by two nested int tables (gx, then gy) rather than one
   [(int * int)]-keyed table: ring scans probe hundreds of cells per
   query, and an int key is hashed without boxing where a tuple key costs
   an allocation per probe.  Each cell's bucket is a pair of parallel
   growable arrays scanned with a plain for-loop: [Hashtbl.iter]
   allocates its internal traversal closure on every call, which at one
   call per visited occupied cell dominated the query-path allocation.
   Entries iterate in insertion order (removal shifts, preserving it),
   which fixes distance-tie arrival order in [k_nearest_probe]. *)
type 'a bucket = {
  mutable ids : int array;
  mutable ents : 'a entry array;
  mutable blen : int;
}

let bucket_make id e =
  { ids = Array.make 4 id; ents = Array.make 4 e; blen = 1 }

(* Replace semantics on an existing id, like the Hashtbl it replaced.
   Buckets hold the handful of entries sharing one grid cell, so the
   linear scans here are short. *)
let bucket_add b id e =
  let rec find i = if i >= b.blen then -1 else if b.ids.(i) = id then i else find (i + 1) in
  match find 0 with
  | i when i >= 0 -> b.ents.(i) <- e
  | _ ->
    let cap = Array.length b.ids in
    if b.blen = cap then begin
      let ids = Array.make (2 * cap) id and ents = Array.make (2 * cap) e in
      Array.blit b.ids 0 ids 0 cap;
      Array.blit b.ents 0 ents 0 cap;
      b.ids <- ids;
      b.ents <- ents
    end;
    b.ids.(b.blen) <- id;
    b.ents.(b.blen) <- e;
    b.blen <- b.blen + 1

(* Returns whether [id] was present; keeps insertion order by shifting. *)
let bucket_remove b id =
  let rec find i = if i >= b.blen then -1 else if b.ids.(i) = id then i else find (i + 1) in
  match find 0 with
  | -1 -> false
  | i ->
    for j = i to b.blen - 2 do
      b.ids.(j) <- b.ids.(j + 1);
      b.ents.(j) <- b.ents.(j + 1)
    done;
    b.blen <- b.blen - 1;
    (* Drop the stale tail reference so removed values can be collected
       while the bucket lives on. *)
    if b.blen > 0 then b.ents.(b.blen) <- b.ents.(0);
    true

type 'a t = {
  cell : float;
  cols : (int, (int, 'a bucket) Hashtbl.t) Hashtbl.t;
  rows : (int, int) Hashtbl.t;
      (* occupied-bucket count per gy: the ring scan's bounding box needs
         the extreme occupied row, and folding the row table is one flat
         pass where folding every column's cell table allocates a closure
         per occupied column on every query *)
  mutable count : int;
}

let create ~cell =
  if cell <= 0. then invalid_arg "Grid_index.create: cell must be positive";
  { cell; cols = Hashtbl.create 257; rows = Hashtbl.create 257; count = 0 }

let incr_row t gy =
  match Hashtbl.find t.rows gy with
  | exception Not_found -> Hashtbl.replace t.rows gy 1
  | c -> Hashtbl.replace t.rows gy (c + 1)

let decr_row t gy =
  match Hashtbl.find t.rows gy with
  | exception Not_found -> ()
  | 1 -> Hashtbl.remove t.rows gy
  | c -> Hashtbl.replace t.rows gy (c - 1)

let[@inline] gx_of t (p : Pt.t) = int_of_float (Float.floor (p.x /. t.cell))
let[@inline] gy_of t (p : Pt.t) = int_of_float (Float.floor (p.y /. t.cell))
let cell_of t p = (gx_of t p, gy_of t p)

let add t ~id p v =
  let gx = gx_of t p and gy = gy_of t p in
  let col =
    match Hashtbl.find_opt t.cols gx with
    | Some c -> c
    | None ->
      let c = Hashtbl.create 17 in
      Hashtbl.add t.cols gx c;
      c
  in
  (match Hashtbl.find_opt col gy with
   | Some b -> bucket_add b id { pt = p; value = v }
   | None ->
     Hashtbl.add col gy (bucket_make id { pt = p; value = v });
     incr_row t gy);
  t.count <- t.count + 1

let remove t ~id p =
  let gx = gx_of t p and gy = gy_of t p in
  match Hashtbl.find_opt t.cols gx with
  | None -> ()
  | Some col -> (
    match Hashtbl.find_opt col gy with
    | None -> ()
    | Some b ->
      if bucket_remove b id then begin
        t.count <- t.count - 1;
        if b.blen = 0 then begin
          Hashtbl.remove col gy;
          decr_row t gy;
          if Hashtbl.length col = 0 then Hashtbl.remove t.cols gx
        end
      end)

let size t = t.count

(* Visit cells in expanding square rings around the query cell.  A hit at
   ring [r] guarantees no closer hit exists beyond ring
   [ceil (best / cell) + 1], which bounds the scan; the bounding box of
   occupied cells bounds it even when the caller's stop condition never
   fires (e.g. fewer entries than requested). *)
(* Returns the first ring NOT visited, so callers can tell whether the
   scan ended because [stop] fired (the ring-distance bound subsumed the
   remaining cells) or because the occupied bounding box ran out — the
   distinction drives the probe invalidation radius below. *)
let fold_rings t (p : Pt.t) ~stop f =
  let cx = gx_of t p and cy = gy_of t p in
  (* max over occupied cells of max (|dx|, |dy|) equals
     max (max |dx| over occupied columns, max |dy| over occupied rows):
     each axis maximum is attained by some occupied cell, and every
     cell's Chebyshev distance is bounded by the pair.  Two flat folds
     (one closure each) replace the nested per-column fold. *)
  let max_ring =
    let mx =
      Hashtbl.fold
        (fun gx _ acc -> Int.max acc (Int.abs (gx - cx)))
        t.cols 0
    in
    Hashtbl.fold
      (fun gy _ acc -> Int.max acc (Int.abs (gy - cy)))
      t.rows mx
  in
  (* [Hashtbl.find] + [Not_found] rather than [find_opt]: misses dominate
     on the outer rings and must not allocate a [Some] per probed cell.
     Bucket entries are scanned with a for-loop — no traversal closure. *)
  let visit_col col gy =
    Obs.Counter.incr c_cells;
    match Hashtbl.find col gy with
    | exception Not_found -> ()
    | b ->
      for i = 0 to b.blen - 1 do
        Obs.Counter.incr c_entries;
        f b.ids.(i) b.ents.(i)
      done
  in
  let visit gx gy =
    match Hashtbl.find t.cols gx with
    | exception Not_found -> Obs.Counter.incr c_cells
    | col -> visit_col col gy
  in
  let rec ring r =
    if r > max_ring || stop r then r
    else begin
      Obs.Counter.incr c_rings;
      if r = 0 then visit cx cy
      else begin
        (* Walk the top and bottom edges column-major so each occupied
           column is resolved once per edge pair. *)
        for gx = cx - r to cx + r do
          match Hashtbl.find t.cols gx with
          | exception Not_found ->
            Obs.Counter.incr c_cells;
            Obs.Counter.incr c_cells
          | col ->
            visit_col col (cy - r);
            visit_col col (cy + r)
        done;
        for gy = cy - r + 1 to cy + r - 1 do
          visit (cx - r) gy;
          visit (cx + r) gy
        done
      end;
      ring (r + 1)
    end
  in
  ring 0

let nearest t ?(skip = fun _ -> false) p =
  Obs.Counter.incr c_queries;
  if t.count = 0 then None
  else begin
    let best_id = ref (-1) in
    let best_pt = ref Pt.zero in
    let best_dist = ref Float.infinity in
    let best_value = ref None in
    let stop r =
      (* Cells at ring r are at least (r-1) * cell away in L-infinity,
         hence at least that far in L1. *)
      !best_id >= 0 && float_of_int (r - 1) *. t.cell > !best_dist
    in
    ignore
      (fold_rings t p ~stop (fun id e ->
           if not (skip id) then begin
             (* L1 distance written out: see [k_nearest_probe]. *)
             let q = e.pt in
             let d =
               Float.abs (p.Pt.x -. q.Pt.x) +. Float.abs (p.Pt.y -. q.Pt.y)
             in
             if d < !best_dist then begin
               best_dist := d;
               best_id := id;
               best_pt := e.pt;
               best_value := Some e.value
             end
           end));
    match !best_value with
    | None -> None
    | Some v -> Some (!best_id, !best_pt, v)
  end

(* Per-domain heap scratch for [k_nearest_probe].  The entry array stays
   per-call (it is polymorphic in the index's value type); the numeric
   arrays are monomorphic and reused across queries.  Safe because the
   scan's callbacks ([skip]) never re-enter the query path. *)
type knn_scratch = {
  mutable khd : float array;
  mutable khs : int array;
  mutable khid : int array;
}

let knn_scratch_key =
  Domain.DLS.new_key (fun () -> { khd = [||]; khs = [||]; khid = [||] })

let k_nearest_probe t ?(skip = fun _ -> false) p k =
  Obs.Counter.incr c_queries;
  if t.count = 0 || k <= 0 then ([], None)
  else begin
    (* Bounded selection: a binary max-heap keeps the k best candidates
       seen so far, ordered by (distance, arrival) — O(log k) per
       accepted entry instead of a full re-sort.  The heap root is the
       running k-th distance, which drives the ring-scan stop condition.
       Distance ties prefer the later-visited entry, reproducing the
       (reverse accumulation + stable sort) order of the original
       implementation bit for bit.  The heap lives in parallel scratch
       arrays (distance / arrival / id / entry) so that scanning an entry
       allocates nothing: thousands of entries are offered per query and
       only k survive. *)
    let cap = Int.min k t.count in
    let sc = Domain.DLS.get knn_scratch_key in
    if Array.length sc.khd < cap then begin
      sc.khd <- Array.make cap 0.;
      sc.khs <- Array.make cap 0;
      sc.khid <- Array.make cap 0
    end;
    let hd = sc.khd in
    let hs = sc.khs in
    let hid = sc.khid in
    (* Seeded with the first accepted entry; never read before. *)
    let hent = ref [||] in
    let size = ref 0 in
    let arrival = ref 0 in
    (* The heap order — "candidate 1 ranks strictly after candidate 2"
       iff [d1 > d2 || (d1 = d2 && s1 < s2)] — is written out at every
       comparison site: routing it through a shared helper would box two
       floats per call, and the scan compares thousands of times per
       query. *)
    let swap i j =
      let he = !hent in
      let d = hd.(i) and s = hs.(i) and id = hid.(i) and e = he.(i) in
      hd.(i) <- hd.(j);
      hs.(i) <- hs.(j);
      hid.(i) <- hid.(j);
      he.(i) <- he.(j);
      hd.(j) <- d;
      hs.(j) <- s;
      hid.(j) <- id;
      he.(j) <- e
    in
    let rec sift_up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if
          hd.(i) > hd.(parent)
          || (hd.(i) = hd.(parent) && hs.(i) < hs.(parent))
        then begin
          swap i parent;
          sift_up parent
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m =
        if l < !size && (hd.(l) > hd.(i) || (hd.(l) = hd.(i) && hs.(l) < hs.(i)))
        then l
        else i
      in
      let m =
        if r < !size && (hd.(r) > hd.(m) || (hd.(r) = hd.(m) && hs.(r) < hs.(m)))
        then r
        else m
      in
      if m <> i then begin
        swap i m;
        sift_down m
      end
    in
    (* Distance is computed inside the offer so it never crosses a
       closure boundary boxed; the L1 distance is written out because a
       [Pt.dist] call is not inlined in -opaque (dev-profile) builds and
       would box its result for every scanned entry. *)
    let offer id e =
      let s = !arrival in
      incr arrival;
      let q = e.pt in
      let d = Float.abs (p.Pt.x -. q.Pt.x) +. Float.abs (p.Pt.y -. q.Pt.y) in
      if !size < cap then begin
        if Array.length !hent = 0 then hent := Array.make cap e;
        let i = !size in
        hd.(i) <- d;
        hs.(i) <- s;
        hid.(i) <- id;
        (!hent).(i) <- e;
        incr size;
        sift_up i
      end
      else if hd.(0) > d || (hd.(0) = d && hs.(0) < s) then begin
        hd.(0) <- d;
        hs.(0) <- s;
        hid.(0) <- id;
        (!hent).(0) <- e;
        sift_down 0
      end
    in
    let stop r = !size = k && float_of_int (r - 1) *. t.cell > hd.(0) in
    let ended =
      fold_rings t p ~stop (fun id e -> if not (skip id) then offer id e)
    in
    (* Exclusion bound.  When the heap filled ([size = k]) every eligible
       entry left out of the result was either rejected by the heap —
       only possible at distance >= the running k-th distance, which
       never grows — or never offered because the ring scan stopped, i.e.
       its ring satisfied (r - 1) * cell > kth.  Either way it lies at L1
       distance >= the final k-th distance from [p].  A heap that never
       filled accepted every eligible offer, and [fold_rings] visits the
       whole occupied bounding box unless [stop] fires, so the result is
       exhaustive and no entry was excluded at all. *)
    ignore ended;
    let radius = if !size = k then Some hd.(0) else None in
    (* Pop the heap worst-first, prepending: (distance, arrival) keys are
       unique (arrival stamps are), so the pop order is the unique total
       order by descending (d, earliest-arrival-on-ties) and prepending
       yields exactly the ascending-distance, later-arrival-on-ties list
       the previous sort produced — without materialising an intermediate
       list or a sort. *)
    let entries = ref [] in
    while !size > 0 do
      let he = !hent in
      entries := (hid.(0), he.(0).pt, he.(0).value) :: !entries;
      decr size;
      let last = !size in
      if last > 0 then begin
        hd.(0) <- hd.(last);
        hs.(0) <- hs.(last);
        hid.(0) <- hid.(last);
        he.(0) <- he.(last);
        sift_down 0
      end
    done;
    (!entries, radius)
  end

let k_nearest t ?skip p k = fst (k_nearest_probe t ?skip p k)

let iter_within t p r f =
  Obs.Counter.incr c_queries;
  (* A negative radius can match nothing and an empty index has nothing
     to scan; bail out before fold_rings walks rings for free. *)
  if t.count = 0 || r < 0. then ()
  else begin
    let stop ring = float_of_int (ring - 1) *. t.cell > r in
    ignore
      (fold_rings t p ~stop (fun id e ->
           (* L1 distance written out: see [k_nearest_probe]. *)
           let q = e.pt in
           if Float.abs (p.Pt.x -. q.Pt.x) +. Float.abs (p.Pt.y -. q.Pt.y) <= r
           then f id q e.value))
  end

let within t p r =
  let acc = ref [] in
  iter_within t p r (fun id pt v -> acc := (id, pt, v) :: !acc);
  !acc

let for_all_within t p r f =
  let ok = ref true in
  (* No early abort: the ball scan is already bounded by [r], and keeping
     a single full-scan code path means the visit counters (and thus the
     traced workload) do not depend on which entry fails first. *)
  iter_within t p r (fun id pt v -> if not (f id pt v) then ok := false);
  !ok

let iter t f =
  Hashtbl.iter
    (fun _ col ->
      Hashtbl.iter
        (fun _ b ->
          for i = 0 to b.blen - 1 do
            let e = b.ents.(i) in
            f b.ids.(i) e.pt e.value
          done)
        col)
    t.cols
