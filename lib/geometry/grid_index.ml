type 'a entry = { pt : Pt.t; value : 'a }

(* Query instrumentation: queries = nearest/k_nearest/within calls,
   rings/cells/entries = work done by the ring scans those queries run. *)
let c_queries = Obs.Counter.make "geometry.grid.queries"
let c_rings = Obs.Counter.make "geometry.grid.rings_scanned"
let c_cells = Obs.Counter.make "geometry.grid.cells_visited"
let c_entries = Obs.Counter.make "geometry.grid.entries_scanned"

type 'a t = {
  cell : float;
  cells : (int * int, (int, 'a entry) Hashtbl.t) Hashtbl.t;
  mutable count : int;
}

let create ~cell =
  if cell <= 0. then invalid_arg "Grid_index.create: cell must be positive";
  { cell; cells = Hashtbl.create 257; count = 0 }

let key t (p : Pt.t) =
  ( int_of_float (Float.floor (p.x /. t.cell)),
    int_of_float (Float.floor (p.y /. t.cell)) )

let cell_of = key

let add t ~id p v =
  let k = key t p in
  let bucket =
    match Hashtbl.find_opt t.cells k with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 7 in
      Hashtbl.add t.cells k b;
      b
  in
  Hashtbl.replace bucket id { pt = p; value = v };
  t.count <- t.count + 1

let remove t ~id p =
  let k = key t p in
  match Hashtbl.find_opt t.cells k with
  | None -> ()
  | Some b ->
    if Hashtbl.mem b id then begin
      Hashtbl.remove b id;
      t.count <- t.count - 1;
      if Hashtbl.length b = 0 then Hashtbl.remove t.cells k
    end

let size t = t.count

(* Visit cells in expanding square rings around the query cell.  A hit at
   ring [r] guarantees no closer hit exists beyond ring
   [ceil (best / cell) + 1], which bounds the scan; the bounding box of
   occupied cells bounds it even when the caller's stop condition never
   fires (e.g. fewer entries than requested). *)
(* Returns the first ring NOT visited, so callers can tell whether the
   scan ended because [stop] fired (the ring-distance bound subsumed the
   remaining cells) or because the occupied bounding box ran out — the
   distinction drives the probe invalidation radius below. *)
let fold_rings t (p : Pt.t) ~stop f =
  let cx, cy = key t p in
  let max_ring =
    Hashtbl.fold
      (fun (gx, gy) _ acc ->
        Int.max acc (Int.max (Int.abs (gx - cx)) (Int.abs (gy - cy))))
      t.cells 0
  in
  let visit gx gy =
    Obs.Counter.incr c_cells;
    match Hashtbl.find_opt t.cells (gx, gy) with
    | Some b ->
      Hashtbl.iter
        (fun id e ->
          Obs.Counter.incr c_entries;
          f id e)
        b
    | None -> ()
  in
  let rec ring r =
    if r > max_ring || stop r then r
    else begin
      Obs.Counter.incr c_rings;
      if r = 0 then visit cx cy
      else begin
        for gx = cx - r to cx + r do
          visit gx (cy - r);
          visit gx (cy + r)
        done;
        for gy = cy - r + 1 to cy + r - 1 do
          visit (cx - r) gy;
          visit (cx + r) gy
        done
      end;
      ring (r + 1)
    end
  in
  ring 0

let nearest t ?(skip = fun _ -> false) p =
  Obs.Counter.incr c_queries;
  if t.count = 0 then None
  else begin
    let best = ref None in
    let best_dist = ref Float.infinity in
    let stop r =
      (* Cells at ring r are at least (r-1) * cell away in L-infinity,
         hence at least that far in L1. *)
      match !best with
      | None -> false
      | Some _ -> float_of_int (r - 1) *. t.cell > !best_dist
    in
    ignore
      (fold_rings t p ~stop (fun id e ->
           if not (skip id) then begin
             let d = Pt.dist p e.pt in
             if d < !best_dist then begin
               best_dist := d;
               best := Some (id, e.pt, e.value)
             end
           end));
    !best
  end

let k_nearest_probe t ?(skip = fun _ -> false) p k =
  Obs.Counter.incr c_queries;
  if t.count = 0 || k <= 0 then ([], None)
  else begin
    (* Bounded selection: a binary max-heap keeps the k best candidates
       seen so far, ordered by (distance, arrival) — O(log k) per
       accepted entry instead of the former full re-sort.  The heap root
       is the running k-th distance, which drives the ring-scan stop
       condition exactly as before.  Distance ties prefer the
       later-visited entry, reproducing the (reverse accumulation +
       stable sort) order of the previous implementation bit for bit. *)
    let cap = Int.min k t.count in
    let heap : (float * int * (int * Pt.t * 'a)) option array =
      Array.make cap None
    in
    let size = ref 0 in
    let arrival = ref 0 in
    let key i =
      match heap.(i) with
      | Some (d, s, _) -> (d, s)
      | None -> assert false
    in
    (* [worse a b]: [a] ranks strictly after [b] among candidates. *)
    let worse (d1, s1) (d2, s2) = d1 > d2 || (d1 = d2 && s1 < s2) in
    let swap i j =
      let tmp = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- tmp
    in
    let rec sift_up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if worse (key i) (key parent) then begin
          swap i parent;
          sift_up parent
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = if l < !size && worse (key l) (key i) then l else i in
      let m = if r < !size && worse (key r) (key m) then r else m in
      if m <> i then begin
        swap i m;
        sift_down m
      end
    in
    let offer d entry =
      let s = !arrival in
      incr arrival;
      if !size < cap then begin
        heap.(!size) <- Some (d, s, entry);
        incr size;
        sift_up (!size - 1)
      end
      else if worse (key 0) (d, s) then begin
        heap.(0) <- Some (d, s, entry);
        sift_down 0
      end
    in
    let stop r =
      !size = k
      &&
      let kth, _ = key 0 in
      float_of_int (r - 1) *. t.cell > kth
    in
    let ended =
      fold_rings t p ~stop (fun id e ->
          if not (skip id) then offer (Pt.dist p e.pt) (id, e.pt, e.value))
    in
    (* Exclusion bound.  When the heap filled ([size = k]) every eligible
       entry left out of the result was either rejected by the heap —
       only possible at distance >= the running k-th distance, which
       never grows — or never offered because the ring scan stopped, i.e.
       its ring satisfied (r - 1) * cell > kth.  Either way it lies at L1
       distance >= the final k-th distance from [p].  A heap that never
       filled accepted every eligible offer, and [fold_rings] visits the
       whole occupied bounding box unless [stop] fires, so the result is
       exhaustive and no entry was excluded at all. *)
    ignore ended;
    let radius =
      if !size = k then
        let kth, _ = key 0 in
        Some kth
      else None
    in
    let kept = ref [] in
    for i = 0 to !size - 1 do
      match heap.(i) with
      | Some c -> kept := c :: !kept
      | None -> assert false
    done;
    let entries =
      !kept
      |> List.sort (fun (d1, s1, _) (d2, s2, _) ->
             match Float.compare d1 d2 with
             | 0 -> Int.compare s2 s1
             | c -> c)
      |> List.map (fun (_, _, entry) -> entry)
    in
    (entries, radius)
  end

let k_nearest t ?skip p k = fst (k_nearest_probe t ?skip p k)

let within t p r =
  Obs.Counter.incr c_queries;
  (* A negative radius can match nothing and an empty index has nothing
     to scan; bail out before fold_rings walks rings for free. *)
  if t.count = 0 || r < 0. then []
  else begin
    let acc = ref [] in
    let stop ring = float_of_int (ring - 1) *. t.cell > r in
    ignore
      (fold_rings t p ~stop (fun id e ->
           if Pt.dist p e.pt <= r then acc := (id, e.pt, e.value) :: !acc));
    !acc
  end

let iter t f =
  Hashtbl.iter (fun _ b -> Hashtbl.iter (fun id e -> f id e.pt e.value) b)
    t.cells
