(** Octilinear convex regions of the Manhattan plane.

    An octagon is the set [{ p : xl <= x <= xh, yl <= y <= yh,
    sl <= x+y <= sh, dl <= x-y <= dh }] kept in canonical (tight) form.
    The class contains points, Manhattan arcs (the ±45° merging segments of
    DME), axis-aligned rectangles and tilted rectangles (TRRs), and is
    closed under intersection, convex hull of unions, and Minkowski
    inflation by an L1 ball — every operation deferred-merge embedding
    needs.  Canonical form is computed exactly with the octagon-domain
    closure (Floyd–Warshall on the 4-node potential graph followed by the
    unary strengthening step), which makes L1 set distance a closed-form
    maximum of support gaps. *)

type t

(** Tight bounds of a non-empty octagon; [s] is [x+y] and [d] is [x-y]. *)
type bounds = {
  xl : float;
  xh : float;
  yl : float;
  yh : float;
  sl : float;
  sh : float;
  dl : float;
  dh : float;
}

val empty : t
val is_empty : t -> bool

(** [bounds o] is [None] on the empty octagon. *)
val bounds : t -> bounds option

(** Rebuild an octagon from bounds that are {e already canonical} (e.g.
    read back from an {!Octslab} slot).  No closure is run, so the
    round-trip [bounds] → [of_canonical_bounds] is bit-exact; feeding
    loose bounds breaks every canonical-form invariant — use
    {!of_bounds} for those. *)
val of_canonical_bounds : bounds -> t

(** Build from raw (possibly loose or inconsistent) bounds; the result is
    canonicalized and may be empty.  Use [Float.infinity] /
    [Float.neg_infinity] for absent upper / lower bounds. *)
val of_bounds :
  xl:float ->
  xh:float ->
  yl:float ->
  yh:float ->
  sl:float ->
  sh:float ->
  dl:float ->
  dh:float ->
  t

val of_point : Pt.t -> t

(** Axis-aligned bounding box of two points. *)
val box : Pt.t -> Pt.t -> t

(** Octilinear segment between two points.  The segment must be horizontal,
    vertical or of slope ±1 (a Manhattan arc); otherwise
    [Invalid_argument] is raised. *)
val of_segment : Pt.t -> Pt.t -> t

(** L1 ball (diamond) of radius [r] centred at a point; [r >= 0]. *)
val ball : Pt.t -> float -> t

val contains : t -> Pt.t -> bool
val inter : t -> t -> t

(** Convex hull of the union. *)
val hull : t -> t -> t

val hull_list : t list -> t

(** Minkowski sum with the L1 ball of radius [r] — the tilted rectangular
    region (TRR) of DME when applied to a Manhattan arc.  [r >= 0]. *)
val inflate : float -> t -> t

val translate : Pt.t -> t -> t

(** Minimum L1 distance between two non-empty octagons (0 when they
    intersect).  Raises [Invalid_argument] on empty input. *)
val dist : t -> t -> float

(** Minimum L1 distance from a point. *)
val dist_pt : t -> Pt.t -> float

(** A point of the region nearest (in L1) to the given point.  On the
    empty octagon raises [Invalid_argument]. *)
val nearest_point : t -> Pt.t -> Pt.t

(** A representative interior point (midpoint-based). *)
val pick_point : t -> Pt.t

(** [closest_pair a b] is a pair [(pa, pb)] with [pa] in [a], [pb] in [b]
    and [Pt.dist pa pb = dist a b]. *)
val closest_pair : t -> t -> Pt.t * Pt.t

(** Shortest-distance region between two octagons: the set of points lying
    on some L1-shortest path between them, i.e.
    [{ p : dist_pt a p + dist_pt b p = dist a b }].  Computed as the hull
    of [samples] exact slices [(a ⊕ t) ∩ (b ⊕ (D-t))]; an inner
    approximation that is exact for generic inputs. *)
val sdr : ?samples:int -> t -> t -> t

(** Is the region a single point (within tolerance)? *)
val is_point : t -> bool

val x_range : t -> Interval.t
val y_range : t -> Interval.t

(** L1 diameter: max L1 distance between two points of the region. *)
val diameter : t -> float

(** Midpoint-based representative, cheap; equals the point for point
    regions. *)
val center : t -> Pt.t

(** Boundary vertices in counter-clockwise order (at most 8); for display
    and area computations.  Empty list on the empty octagon. *)
val vertices : t -> Pt.t list

val area : t -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
