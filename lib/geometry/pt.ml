type t = { x : float; y : float }

let[@inline] make x y = { x; y }
let zero = { x = 0.; y = 0. }

(* [dist] runs per scanned grid entry inside the ranking loops; the
   [@inline] keeps its float result unboxed at the call sites. *)
let[@inline] dist p q = Float.abs (p.x -. q.x) +. Float.abs (p.y -. q.y)

let[@inline] dist_linf p q =
  Float.max (Float.abs (p.x -. q.x)) (Float.abs (p.y -. q.y))

let add p q = { x = p.x +. q.x; y = p.y +. q.y }
let sub p q = { x = p.x -. q.x; y = p.y -. q.y }
let scale k p = { x = k *. p.x; y = k *. p.y }
let mid p q = { x = (p.x +. q.x) /. 2.; y = (p.y +. q.y) /. 2. }
let[@inline] s p = p.x +. p.y
let[@inline] d p = p.x -. p.y
let of_sd s d = { x = (s +. d) /. 2.; y = (s -. d) /. 2. }
let equal p q = Eps.equal p.x q.x && Eps.equal p.y q.y

let compare p q =
  match Float.compare p.x q.x with 0 -> Float.compare p.y q.y | c -> c

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y
let to_string p = Format.asprintf "%a" pp p
