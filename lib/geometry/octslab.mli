(** Flat structure-of-arrays storage for canonical octagons.

    A slab holds 8 float bounds per slot (the {!Octagon.bounds} fields,
    in declaration order) in one contiguous [floatarray], indexed by an
    integer id.  It backs the DME merge-ranking arena: the hot kernels
    ({!dist}, {!diameter}) read the bounds unboxed and allocate nothing,
    and are bit-identical to their {!Octagon} counterparts — the slab is
    a storage change, never a semantic one.

    Writers are single-domain; concurrent {e reads} (parallel ranking
    probes against a frozen slab) are safe. *)

type t

(** [create slots] allocates a slab with capacity for [slots] octagons
    (at least 1).  Slots hold NaN bounds until {!set}. *)
val create : int -> t

(** Current slot capacity. *)
val slots : t -> int

(** Grow (amortized doubling) so [slot] is addressable.  Existing slots
    are preserved. *)
val ensure : t -> int -> unit

(** [set t slot o] stores the bounds of non-empty [o] at [slot], growing
    the slab as needed.  Raises [Invalid_argument] on the empty
    octagon. *)
val set : t -> int -> Octagon.t -> unit

(** Rebuild the boxed octagon stored at [slot] — bit-exact round-trip
    via {!Octagon.of_canonical_bounds}.  Slots never written hold NaN
    bounds.  Raises [Invalid_argument] when [slot] is out of range. *)
val get : t -> int -> Octagon.t

(** [dist t i j] is [Octagon.dist (get t i) (get t j)], bit for bit,
    without allocating. *)
val dist : t -> int -> int -> float

(** [diameter t i] is [Octagon.diameter (get t i)], bit for bit, without
    allocating. *)
val diameter : t -> int -> float
