type axis = X | Y

let coord axis (p : Pt.t) = match axis with X -> p.Pt.x | Y -> p.Pt.y

let longer_axis ~lo ~hi =
  let w = hi.Pt.x -. lo.Pt.x and h = hi.Pt.y -. lo.Pt.y in
  if h > w then Y else X

let extent point_of ids =
  let lo = ref (Pt.make Float.infinity Float.infinity) in
  let hi = ref (Pt.make Float.neg_infinity Float.neg_infinity) in
  Array.iter
    (fun id ->
      let p = point_of id in
      lo := Pt.make (Float.min !lo.Pt.x p.Pt.x) (Float.min !lo.Pt.y p.Pt.y);
      hi := Pt.make (Float.max !hi.Pt.x p.Pt.x) (Float.max !hi.Pt.y p.Pt.y))
    ids;
  (!lo, !hi)

let median ~axis point_of ids =
  let n = Array.length ids in
  if n < 2 then invalid_arg "Split.median: need at least two points";
  let sorted = Array.copy ids in
  (* (coordinate, id) keys: ids are unique, so the order — and hence the
     two halves — is a pure function of the input set, independent of the
     input array's order or any earlier sort.  Duplicate coordinates
     (snapped grids, stacked sinks) split deterministically by id. *)
  Array.sort
    (fun a b ->
      match Float.compare (coord axis (point_of a)) (coord axis (point_of b))
      with
      | 0 -> Int.compare a b
      | c -> c)
    sorted;
  let half = (n + 1) / 2 in
  (Array.sub sorted 0 half, Array.sub sorted half (n - half))

let bipartition point_of ids =
  let lo, hi = extent point_of ids in
  median ~axis:(longer_axis ~lo ~hi) point_of ids
