(* Flat structure-of-arrays storage for canonical octagons: 8 float
   bounds per slot in one [floatarray], indexed by an integer id.  The
   merge-ranking hot loops read region distances and diameters millions
   of times per run; keeping the bounds unboxed and contiguous makes
   those kernels allocation-free and cache-friendly, where the boxed
   [Octagon.t] representation costs a pointer chase and a variant test
   per access. *)

type t = { mutable data : floatarray; mutable slots : int }

(* Slot layout mirrors Octagon.bounds field order. *)
let o_xl = 0
let o_xh = 1
let o_yl = 2
let o_yh = 3
let o_sl = 4
let o_sh = 5
let o_dl = 6
let o_dh = 7

let create slots =
  let slots = Int.max 1 slots in
  { data = Float.Array.make (8 * slots) Float.nan; slots }

let slots t = t.slots

let ensure t slot =
  if slot >= t.slots then begin
    let slots = Int.max (slot + 1) (2 * t.slots) in
    let data = Float.Array.make (8 * slots) Float.nan in
    Float.Array.blit t.data 0 data 0 (8 * t.slots);
    t.data <- data;
    t.slots <- slots
  end

let set t slot (o : Octagon.t) =
  match Octagon.bounds o with
  | None -> invalid_arg "Octslab.set: empty octagon"
  | Some b ->
    ensure t slot;
    let d = t.data in
    let base = 8 * slot in
    Float.Array.unsafe_set d (base + o_xl) b.xl;
    Float.Array.unsafe_set d (base + o_xh) b.xh;
    Float.Array.unsafe_set d (base + o_yl) b.yl;
    Float.Array.unsafe_set d (base + o_yh) b.yh;
    Float.Array.unsafe_set d (base + o_sl) b.sl;
    Float.Array.unsafe_set d (base + o_sh) b.sh;
    Float.Array.unsafe_set d (base + o_dl) b.dl;
    Float.Array.unsafe_set d (base + o_dh) b.dh

let get t slot =
  if slot < 0 || slot >= t.slots then invalid_arg "Octslab.get: slot out of range";
  let d = t.data in
  let base = 8 * slot in
  Octagon.of_canonical_bounds
    {
      xl = Float.Array.get d (base + o_xl);
      xh = Float.Array.get d (base + o_xh);
      yl = Float.Array.get d (base + o_yl);
      yh = Float.Array.get d (base + o_yh);
      sl = Float.Array.get d (base + o_sl);
      sh = Float.Array.get d (base + o_sh);
      dl = Float.Array.get d (base + o_dl);
      dh = Float.Array.get d (base + o_dh);
    }

(* Same max-of-support-gaps chain as Octagon.dist, in the same
   operation order, so slab distances are bit-identical to boxed ones. *)
let[@inline] dist t i j =
  let d = t.data in
  let a = 8 * i and b = 8 * j in
  let g =
    Float.Array.unsafe_get d (b + o_xl) -. Float.Array.unsafe_get d (a + o_xh)
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (a + o_xl) -. Float.Array.unsafe_get d (b + o_xh))
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (b + o_yl) -. Float.Array.unsafe_get d (a + o_yh))
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (a + o_yl) -. Float.Array.unsafe_get d (b + o_yh))
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (b + o_sl) -. Float.Array.unsafe_get d (a + o_sh))
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (a + o_sl) -. Float.Array.unsafe_get d (b + o_sh))
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (b + o_dl) -. Float.Array.unsafe_get d (a + o_dh))
  in
  let g =
    Float.max g
      (Float.Array.unsafe_get d (a + o_dl) -. Float.Array.unsafe_get d (b + o_dh))
  in
  Float.max 0. g

(* Mirrors Octagon.diameter: larger of the two rotated extents. *)
let[@inline] diameter t i =
  let d = t.data in
  let base = 8 * i in
  Float.max
    (Float.Array.unsafe_get d (base + o_sh) -. Float.Array.unsafe_get d (base + o_sl))
    (Float.Array.unsafe_get d (base + o_dh) -. Float.Array.unsafe_get d (base + o_dl))
