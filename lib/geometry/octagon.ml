type bounds = {
  xl : float;
  xh : float;
  yl : float;
  yh : float;
  sl : float;
  sh : float;
  dl : float;
  dh : float;
}

type t = Empty | O of bounds

let empty = Empty
let is_empty = function Empty -> true | O _ -> false
let bounds = function Empty -> None | O b -> Some b

(* Canonicalization uses the octagon-domain strong closure: encode the 8
   bounds as a 4-node difference-bound matrix over +x, -x, +y, -y, run
   Floyd-Warshall, apply the unary strengthening step, and read the tight
   bounds back.  Entries are upper bounds, never negative infinity. *)

let bar i = i lxor 1

(* The 4x4 DBM is per-domain scratch reused across calls: [closure] runs
   inside every [inter] of every trial merge, so allocating the matrix
   per call would dominate the minor heap.  Domain-local storage keeps
   concurrent ranking probes from sharing the buffer; [closure] never
   re-enters itself, so one matrix per domain suffices. *)
let dbm_key = Domain.DLS.new_key (fun () -> Float.Array.create 16)

let closure b =
  let inf = Float.infinity in
  let m = Domain.DLS.get dbm_key in
  Float.Array.fill m 0 16 inf;
  let get i j = Float.Array.unsafe_get m ((i * 4) + j) in
  let set i j v = Float.Array.unsafe_set m ((i * 4) + j) v in
  for i = 0 to 3 do
    set i i 0.
  done;
  let tighten i j v = if v < get i j then set i j v in
  tighten 0 1 (2. *. b.xh);
  tighten 1 0 (-2. *. b.xl);
  tighten 2 3 (2. *. b.yh);
  tighten 3 2 (-2. *. b.yl);
  tighten 0 3 b.sh;
  tighten 2 1 b.sh;
  tighten 1 2 (-.b.sl);
  tighten 3 0 (-.b.sl);
  tighten 0 2 b.dh;
  tighten 3 1 b.dh;
  tighten 2 0 (-.b.dl);
  tighten 1 3 (-.b.dl);
  for k = 0 to 3 do
    for i = 0 to 3 do
      for j = 0 to 3 do
        let via = get i k +. get k j in
        if via < get i j then set i j via
      done
    done
  done;
  for i = 0 to 3 do
    for j = 0 to 3 do
      let v = (get i (bar i) +. get (bar j) j) /. 2. in
      if v < get i j then set i j v
    done
  done;
  let negative_cycle =
    get 0 0 < -.Eps.tol
    || get 1 1 < -.Eps.tol
    || get 2 2 < -.Eps.tol
    || get 3 3 < -.Eps.tol
  in
  if negative_cycle then Empty
  else
    O
      {
        xl = -.(get 1 0) /. 2.;
        xh = get 0 1 /. 2.;
        yl = -.(get 3 2) /. 2.;
        yh = get 2 3 /. 2.;
        sl = -.(get 1 2);
        sh = get 0 3;
        dl = -.(get 2 0);
        dh = get 0 2;
      }

let of_bounds ~xl ~xh ~yl ~yh ~sl ~sh ~dl ~dh =
  closure { xl; xh; yl; yh; sl; sh; dl; dh }

(* Trusted constructor for bounds that are already canonical (read back
   from an octagon slab): skipping the closure keeps the round-trip
   bit-exact. *)
let of_canonical_bounds b = O b

let of_point (p : Pt.t) =
  let s = Pt.s p and d = Pt.d p in
  O { xl = p.x; xh = p.x; yl = p.y; yh = p.y; sl = s; sh = s; dl = d; dh = d }

let box (p : Pt.t) (q : Pt.t) =
  of_bounds
    ~xl:(Float.min p.x q.x)
    ~xh:(Float.max p.x q.x)
    ~yl:(Float.min p.y q.y)
    ~yh:(Float.max p.y q.y)
    ~sl:Float.neg_infinity ~sh:Float.infinity ~dl:Float.neg_infinity
    ~dh:Float.infinity

let of_segment (p : Pt.t) (q : Pt.t) =
  let dx = Float.abs (p.x -. q.x) and dy = Float.abs (p.y -. q.y) in
  let octilinear =
    dx <= Eps.tol || dy <= Eps.tol
    || Float.abs (dx -. dy) <= Eps.tol +. (1e-12 *. (dx +. dy))
  in
  if not octilinear then
    invalid_arg
      (Format.asprintf "Octagon.of_segment: %a-%a is not octilinear" Pt.pp p
         Pt.pp q);
  let sp = Pt.s p and sq = Pt.s q and dp = Pt.d p and dq = Pt.d q in
  of_bounds
    ~xl:(Float.min p.x q.x)
    ~xh:(Float.max p.x q.x)
    ~yl:(Float.min p.y q.y)
    ~yh:(Float.max p.y q.y)
    ~sl:(Float.min sp sq) ~sh:(Float.max sp sq) ~dl:(Float.min dp dq)
    ~dh:(Float.max dp dq)

let ball (p : Pt.t) r =
  let r = Float.max 0. r in
  let s = Pt.s p and d = Pt.d p in
  O
    {
      xl = p.x -. r;
      xh = p.x +. r;
      yl = p.y -. r;
      yh = p.y +. r;
      sl = s -. r;
      sh = s +. r;
      dl = d -. r;
      dh = d +. r;
    }

let contains o (p : Pt.t) =
  match o with
  | Empty -> false
  | O b ->
    let s = Pt.s p and d = Pt.d p in
    Eps.leq b.xl p.x && Eps.leq p.x b.xh && Eps.leq b.yl p.y
    && Eps.leq p.y b.yh && Eps.leq b.sl s && Eps.leq s b.sh && Eps.leq b.dl d
    && Eps.leq d b.dh

let inter a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | O a, O b ->
    closure
      {
        xl = Float.max a.xl b.xl;
        xh = Float.min a.xh b.xh;
        yl = Float.max a.yl b.yl;
        yh = Float.min a.yh b.yh;
        sl = Float.max a.sl b.sl;
        sh = Float.min a.sh b.sh;
        dl = Float.max a.dl b.dl;
        dh = Float.min a.dh b.dh;
      }

(* Supports of a convex hull are the pointwise maxima of supports, so the
   componentwise envelope of two canonical octagons is already canonical. *)
let hull a b =
  match (a, b) with
  | Empty, o | o, Empty -> o
  | O a, O b ->
    O
      {
        xl = Float.min a.xl b.xl;
        xh = Float.max a.xh b.xh;
        yl = Float.min a.yl b.yl;
        yh = Float.max a.yh b.yh;
        sl = Float.min a.sl b.sl;
        sh = Float.max a.sh b.sh;
        dl = Float.min a.dl b.dl;
        dh = Float.max a.dh b.dh;
      }

let hull_list os = List.fold_left hull Empty os

let inflate r o =
  let r = Float.max 0. r in
  match o with
  | Empty -> Empty
  | O b ->
    O
      {
        xl = b.xl -. r;
        xh = b.xh +. r;
        yl = b.yl -. r;
        yh = b.yh +. r;
        sl = b.sl -. r;
        sh = b.sh +. r;
        dl = b.dl -. r;
        dh = b.dh +. r;
      }

let translate (v : Pt.t) o =
  match o with
  | Empty -> Empty
  | O b ->
    let s = Pt.s v and d = Pt.d v in
    O
      {
        xl = b.xl +. v.x;
        xh = b.xh +. v.x;
        yl = b.yl +. v.y;
        yh = b.yh +. v.y;
        sl = b.sl +. s;
        sh = b.sh +. s;
        dl = b.dl +. d;
        dh = b.dh +. d;
      }

(* L1 distance between canonical octagons: the largest support gap over the
   8 constraint directions.  Each violated half-plane costs exactly its gap
   in L1 motion (all 8 normals have unit dual norm), and canonical
   tightness guarantees the maximum gap is simultaneously achievable. *)
let[@inline] dist a b =
  match (a, b) with
  | Empty, _ | _, Empty -> invalid_arg "Octagon.dist: empty octagon"
  | O a, O b ->
    let g = b.xl -. a.xh in
    let g = Float.max g (a.xl -. b.xh) in
    let g = Float.max g (b.yl -. a.yh) in
    let g = Float.max g (a.yl -. b.yh) in
    let g = Float.max g (b.sl -. a.sh) in
    let g = Float.max g (a.sl -. b.sh) in
    let g = Float.max g (b.dl -. a.dh) in
    let g = Float.max g (a.dl -. b.dh) in
    Float.max 0. g

let dist_pt o p = dist o (of_point p)

let pick_point o =
  match o with
  | Empty -> invalid_arg "Octagon.pick_point: empty octagon"
  | O b ->
    let x = (b.xl +. b.xh) /. 2. in
    let ylo = Float.max b.yl (Float.max (b.sl -. x) (x -. b.dh)) in
    let yhi = Float.min b.yh (Float.min (b.sh -. x) (x -. b.dl)) in
    Pt.make x ((ylo +. yhi) /. 2.)

let center = pick_point

(* L1 projection by clamping x first, then y within the slice at that x.
   For canonical octagons this realizes the max-violation distance: every
   violated constraint has unit dual norm, and the x/y clamps discharge
   the x/y violations while the slice bounds discharge the s/d ones.
   Exactness is property-tested against dist_pt. *)
let nearest_point o (p : Pt.t) =
  match o with
  | Empty -> invalid_arg "Octagon.nearest_point: empty octagon"
  | O b ->
    if contains o p then p
    else
      let x = Eps.clamp b.xl b.xh p.x in
      let ylo = Float.max b.yl (Float.max (b.sl -. x) (x -. b.dh)) in
      let yhi = Float.min b.yh (Float.min (b.sh -. x) (x -. b.dl)) in
      let y =
        if ylo > yhi then (ylo +. yhi) /. 2. else Eps.clamp ylo yhi p.y
      in
      Pt.make x y

let closest_pair a b =
  let r = dist a b in
  (* The inflation margin absorbs closure tolerance (x/y violations are
     doubled in the DBM encoding), at the cost of ~margin slack in the
     returned pair distance. *)
  let qa = inter a (inflate (r +. (50. *. Eps.tol)) b) in
  let qa = if is_empty qa then a else qa in
  let pa = pick_point qa in
  let pb = nearest_point b pa in
  (pa, pb)

(* The SDR is the union over t in [0, r] of (a ⊕ t) ∩ (b ⊕ (r - t)), which
   is convex, so it equals the hull of its slices.  The support of the
   slice in each of the 8 octagon directions is bounded by
   min (h_a n + t, h_b n + r - t), maximized where the two lines cross;
   slicing at those 8 critical t values (plus a uniform fallback) makes
   the hull exact for generic inputs and an inner approximation otherwise,
   which is the safe direction: every returned point is on a true
   shortest path. *)
let sdr ?(samples = 9) a b =
  let r = dist a b in
  if r <= Eps.tol then inter a b
  else
    match (a, b) with
    | Empty, _ | _, Empty -> Empty
    | O ba, O bb ->
      let slice t =
        let t = Eps.clamp 0. r t in
        inter (inflate t a) (inflate (r -. t) b)
      in
      let critical ha hb = (hb -. ha +. r) /. 2. in
      let critical_ts =
        [
          critical ba.xh bb.xh;
          critical (-.ba.xl) (-.bb.xl);
          critical ba.yh bb.yh;
          critical (-.ba.yl) (-.bb.yl);
          critical ba.sh bb.sh;
          critical (-.ba.sl) (-.bb.sl);
          critical ba.dh bb.dh;
          critical (-.ba.dl) (-.bb.dl);
        ]
      in
      let n = Int.max 2 samples in
      let uniform_ts =
        List.init n (fun i -> r *. float_of_int i /. float_of_int (n - 1))
      in
      List.fold_left
        (fun acc t -> hull acc (slice t))
        Empty (critical_ts @ uniform_ts)

let is_point = function
  | Empty -> false
  | O b -> b.xh -. b.xl <= Eps.tol && b.yh -. b.yl <= Eps.tol

let x_range = function
  | Empty -> invalid_arg "Octagon.x_range: empty octagon"
  | O b -> Interval.make b.xl b.xh

let y_range = function
  | Empty -> invalid_arg "Octagon.y_range: empty octagon"
  | O b -> Interval.make b.yl b.yh

(* In rotated coordinates (s, d) the L1 metric is Chebyshev, so the L1
   diameter is the larger of the two rotated extents. *)
let[@inline] diameter = function
  | Empty -> 0.
  | O b -> Float.max (b.sh -. b.sl) (b.dh -. b.dl)

let vertices o =
  match o with
  | Empty -> []
  | O b ->
    let candidates =
      [
        Pt.make b.xh (b.sh -. b.xh);
        Pt.make (b.sh -. b.yh) b.yh;
        Pt.make (b.dl +. b.yh) b.yh;
        Pt.make b.xl (b.xl -. b.dl);
        Pt.make b.xl (b.sl -. b.xl);
        Pt.make (b.sl -. b.yl) b.yl;
        Pt.make (b.dh +. b.yl) b.yl;
        Pt.make b.xh (b.xh -. b.dh);
      ]
    in
    let inside = List.filter (contains o) candidates in
    let rec dedupe = function
      | p :: (q :: _ as rest) -> if Pt.equal p q then dedupe rest else p :: dedupe rest
      | rest -> rest
    in
    let vs = dedupe inside in
    (match vs with
     | first :: (_ :: _ as rest) ->
       let last = List.nth rest (List.length rest - 1) in
       if Pt.equal first last then first :: List.filteri (fun i _ -> i < List.length rest - 1) rest
       else vs
     | vs -> vs)

let area o =
  match vertices o with
  | [] | [ _ ] | [ _; _ ] -> 0.
  | vs ->
    let arr = Array.of_list vs in
    let n = Array.length arr in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let p = arr.(i) and q = arr.((i + 1) mod n) in
      acc := !acc +. ((p.Pt.x *. q.Pt.y) -. (q.Pt.x *. p.Pt.y))
    done;
    Float.abs !acc /. 2.

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Empty, O _ | O _, Empty -> false
  | O a, O b ->
    Eps.equal a.xl b.xl && Eps.equal a.xh b.xh && Eps.equal a.yl b.yl
    && Eps.equal a.yh b.yh && Eps.equal a.sl b.sl && Eps.equal a.sh b.sh
    && Eps.equal a.dl b.dl && Eps.equal a.dh b.dh

let pp ppf = function
  | Empty -> Format.fprintf ppf "<empty>"
  | O b ->
    Format.fprintf ppf "{x:[%g,%g] y:[%g,%g] s:[%g,%g] d:[%g,%g]}" b.xl b.xh
      b.yl b.yh b.sl b.sh b.dl b.dh
