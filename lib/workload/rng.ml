type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992. (* 2^53 *)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int n)

let bool t = float t < 0.5

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let split t = create (next t)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
