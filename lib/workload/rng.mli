(** Deterministic splitmix64 PRNG.

    Workload generation must be reproducible across runs and platforms,
    so the library carries its own generator instead of using [Random]. *)

type t

val create : int64 -> t

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi). *)
val float_range : t -> float -> float -> float

(** Uniform in [0, n). *)
val int : t -> int -> int

(** Fair coin. *)
val bool : t -> bool

(** Uniform element of a non-empty array. *)
val choice : t -> 'a array -> 'a

(** An independent generator split off deterministically. *)
val split : t -> t

(** Fisher–Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
