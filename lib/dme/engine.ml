type config = {
  multi_merge : bool;
  merge_fraction : float;
  knn : int;
  delay_order_weight : float;
  split_slack : float;
  slack_usage : float;
  width_cap : float;
  sdr_samples : int;
  cost_by_planned_wire : bool;
  avoid_infeasible : bool;
  trial_cache : bool;
  incremental : bool;
  jobs : int;
}

let default =
  {
    multi_merge = true;
    merge_fraction = 0.5;
    knn = 16;
    delay_order_weight = 0.;
    split_slack = 0.25;
    slack_usage = 0.3;
    width_cap = 0.7;
    sdr_samples = 9;
    cost_by_planned_wire = false;
    avoid_infeasible = true;
    trial_cache = true;
    incremental = true;
    jobs = Par.Pool.default_jobs ();
  }

type trial_stats = {
  trial_merges : int;
  cache_hits : int;
  cache_misses : int;
  elided_trials : int;
  reused_trials : int;
}

let no_trials =
  {
    trial_merges = 0;
    cache_hits = 0;
    cache_misses = 0;
    elided_trials = 0;
    reused_trials = 0;
  }

type stats = {
  rounds : int;
  same_group : int;
  cross_group : int;
  shared_one : int;
  shared_multi : int;
  planned_snake : float;
  infeasible_merges : int;
  nn_reprobes : int;
  nn_probes_saved : int;
  trial : trial_stats;
  gc : Obs.Gcstat.t;
}

let json_of_config (c : config) =
  Obs.Json.Obj
    [
      ("multi_merge", Obs.Json.Bool c.multi_merge);
      ("merge_fraction", Obs.Json.Float c.merge_fraction);
      ("knn", Obs.Json.Int c.knn);
      ("delay_order_weight", Obs.Json.Float c.delay_order_weight);
      ("split_slack", Obs.Json.Float c.split_slack);
      ("slack_usage", Obs.Json.Float c.slack_usage);
      ("width_cap", Obs.Json.Float c.width_cap);
      ("sdr_samples", Obs.Json.Int c.sdr_samples);
      ("cost_by_planned_wire", Obs.Json.Bool c.cost_by_planned_wire);
      ("avoid_infeasible", Obs.Json.Bool c.avoid_infeasible);
      ("trial_cache", Obs.Json.Bool c.trial_cache);
      ("incremental", Obs.Json.Bool c.incremental);
      ("jobs", Obs.Json.Int c.jobs);
    ]

let c_trials = Obs.Counter.make "dme.engine.trial_merges"
let c_hits = Obs.Counter.make "dme.engine.trial_cache_hits"
let c_misses = Obs.Counter.make "dme.engine.trial_cache_misses"
let c_elided = Obs.Counter.make "dme.engine.trial_elided"
let c_reused = Obs.Counter.make "dme.engine.trial_reused"
let c_committed = Obs.Counter.make "dme.engine.committed_merges"

(* One memo cell per unordered subtree-id pair.  The two orientations are
   stored separately: Rc.Balance.plan is not guaranteed to be
   floating-point symmetric in its arguments, and the cached cost closure
   must return exactly what an uncached run would, so the routed trees
   stay bit-identical with the cache on or off. *)
type trial_cell = {
  mutable fwd : Merge.result option;  (** [a.id <= b.id] orientation *)
  mutable rev : Merge.result option;
}

(* Side results of one ranking probe, carried back to the main domain:
   trials the probe had to run itself (found neither in the round-start
   cache snapshot nor elided) plus its cache-counter deltas.  The cache
   is frozen while probes run, so a probe's note is a pure function of
   its subtree and the round-start state — identical for any jobs count,
   and identical to what the pre-parallel serial code observed (within a
   round no two probes ever evaluate the same pair orientation, so
   installing trials at round end loses no hits). *)
type note = {
  fresh : (Subtree.t * Subtree.t * Merge.result) list;
  n_trials : int;
  n_hits : int;
  n_elided : int;
}

(* Bottom-up merge planning only: reduce [inst]'s sinks — or an explicit
   [leaves] population, see {!Order.run_ranked} — to one subtree.  Does
   not embed and does not own the pool, so the clustered router can run
   one [plan] per region on worker domains (with [pool] absent: the pool
   is not reentrant) and a top-level [plan] over the region roots on the
   shared pool.  [stats.gc] covers the planning phase only. *)
let plan ?(config = default) ?(trace = Obs.Trace.null)
    ?(sched = Obs.Sched.null) ?pool ?leaves inst =
  let gc0 = Obs.Gcstat.sample () in
  let tracing = Obs.Trace.enabled trace in
  if tracing then
    Obs.Trace.merge_manifest trace [ ("engine_config", json_of_config config) ];
  (* Journal-only aggregates, touched exclusively under [tracing] so the
     untraced run's merge path stays allocation-free. *)
  let cum_wire = ref 0. in
  let h_extent =
    if tracing then Some (Obs.Trace.histogram trace "engine.region_extent")
    else None
  in
  let same_group = ref 0 in
  let cross_group = ref 0 in
  let shared_one = ref 0 in
  let shared_multi = ref 0 in
  let planned_snake = ref 0. in
  let infeasible = ref 0 in
  let trial_merges = ref 0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let elided = ref 0 in
  let reused = ref 0 in
  let run_merge ~id a b =
    Merge.run inst ~slack_usage:config.slack_usage
      ~split_slack:config.split_slack ~width_cap:config.width_cap
      ~sdr_samples:config.sdr_samples ~id a b
  in
  (* Penalty added to an infeasible candidate's cost: big enough to
     dominate every honest cost, and proportional to the instance extent
     so a rescaled layout ranks bit-identically — adding an absolute
     constant would float-absorb small cost differences at one
     coordinate scale and preserve them at another.  [Order]'s caching
     threshold (reach_cap, 1e8 x extent) relies on penalised costs
     exceeding it.  A zero-extent instance has every honest cost 0, so
     any positive penalty separates. *)
  let infeasible_penalty =
    let d = Geometry.Octagon.diameter (Clocktree.Instance.bbox inst) in
    if d > 0. then 1e9 *. d else 1.
  in
  let cache : (int * int, trial_cell) Hashtbl.t = Hashtbl.create 1024 in
  (* Keys each live subtree participates in, for eviction.  Subtree ids
     are never reused, so a stale entry could never be *hit* — eviction
     only bounds the cache's memory to the surviving pairs. *)
  let partners : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 1024 in
  let pair_key (a : Subtree.t) (b : Subtree.t) =
    if a.id <= b.id then (a.id, b.id, true) else (b.id, a.id, false)
  in
  let link id key =
    match Hashtbl.find_opt partners id with
    | Some l -> l := key :: !l
    | None -> Hashtbl.add partners id (ref [ key ])
  in
  let evict id =
    match Hashtbl.find_opt partners id with
    | None -> ()
    | Some keys ->
      List.iter (Hashtbl.remove cache) !keys;
      Hashtbl.remove partners id
  in
  let lookup a b =
    let i, j, forward = pair_key a b in
    match Hashtbl.find_opt cache (i, j) with
    | None -> None
    | Some cell -> if forward then cell.fwd else cell.rev
  in
  let store a b r =
    let i, j, forward = pair_key a b in
    let cell =
      match Hashtbl.find_opt cache (i, j) with
      | Some c -> c
      | None ->
        let c = { fwd = None; rev = None } in
        Hashtbl.add cache (i, j) c;
        link i (i, j);
        link j (i, j);
        c
    in
    if forward then cell.fwd <- Some r else cell.rev <- Some r
  in
  (* One ranking probe's cost evaluator.  A trial merge probes a
     candidate pair; its result is a pure function of the two subtrees,
     so it can be answered from the (frozen) cache, elided outright for
     cross-group pairs, or run fresh — in which case the result rides
     back in the note for the main domain to install.  Shared state is
     only read here, making the session safe on worker domains. *)
  let session () =
    let fresh = ref [] in
    let n_trials = ref 0 and n_hits = ref 0 and n_elided = ref 0 in
    let trial a b =
      match if config.trial_cache then lookup a b else None with
      | Some r ->
        incr n_hits;
        r
      | None ->
        incr n_trials;
        let r = run_merge ~id:(-1) a b in
        if config.trial_cache then fresh := (a, b, r) :: !fresh;
        r
    in
    (* [dist] arrives from the ranking loop's region slab
       (Octslab.dist, bit-identical to Octagon.dist on these regions). *)
    let cost ~dist (a : Subtree.t) (b : Subtree.t) =
      if config.cost_by_planned_wire then begin
        if config.trial_cache && Subtree.shared_groups a b = [] then begin
          (* Cross-group fast path: an unconstrained merge is always
             feasible and its planned wire is exactly the region distance
             (Merge.merge_cross), so the trial's only two cost-relevant
             outputs are known without running it. *)
          incr n_elided;
          dist
        end
        else begin
          let t = trial a b in
          (* An infeasible pair (mutually inconsistent shared-group
             offsets, the thesis' Instance 2) is merged only as a last
             resort. *)
          if config.avoid_infeasible && not t.feasible then
            t.planned_wire +. infeasible_penalty
          else t.planned_wire
        end
      end
      else if config.avoid_infeasible then begin
        (* Distance-cost ranking needs only feasibility from a trial, and
           Merge.committed_feasible answers that bit-identically without
           building the merged subtree — so no probe ever runs a trial
           merge.  Counted as elided trials under the same gate as the
           cross-group elision above, so cache-off runs keep reporting
           zero elisions. *)
        if config.trial_cache then incr n_elided;
        if Merge.committed_feasible inst ~slack_usage:config.slack_usage
             ~dist a b
        then dist
        else dist +. infeasible_penalty
      end
      else dist
    in
    ( cost,
      fun () ->
        {
          fresh = List.rev !fresh;
          n_trials = !n_trials;
          n_hits = !n_hits;
          n_elided = !n_elided;
        } )
  in
  let absorb note =
    trial_merges := !trial_merges + note.n_trials;
    Obs.Counter.add c_trials note.n_trials;
    if config.trial_cache then begin
      hits := !hits + note.n_hits;
      Obs.Counter.add c_hits note.n_hits;
      misses := !misses + note.n_trials;
      Obs.Counter.add c_misses note.n_trials;
      elided := !elided + note.n_elided;
      Obs.Counter.add c_elided note.n_elided;
      List.iter (fun (a, b, r) -> store a b r) note.fresh
    end
  in
  (* Committed-merge execution, split so the ranking loop can run the
     selected merges of a round on worker domains: [compute] is pure
     with respect to shared state — the trial cache is only read, and it
     is frozen while the round's computes run because evictions happen
     in [install], after the whole compute batch — while [install]
     applies the stats, cache eviction and tracing on the main domain in
     selection order.  The result tuple carries the child ids for
     eviction and whether the cache supplied the result (the counter
     increment must not race on a worker). *)
  let compute ~id (a : Subtree.t) (b : Subtree.t) =
    match if config.trial_cache then lookup a b else None with
    | Some r ->
      (* The winning pair was already trial-merged during ranking; the
         committed merge differs only in the subtree id. *)
      (a.Subtree.id, b.Subtree.id,
       { r with Merge.subtree = { r.Merge.subtree with Subtree.id = id } },
       true)
    | None -> (a.Subtree.id, b.Subtree.id, run_merge ~id a b, false)
  in
  let install (aid, bid, (result : Merge.result), reused_hit) =
    let id = result.subtree.Subtree.id in
    if reused_hit then begin
      incr reused;
      Obs.Counter.incr c_reused
    end;
    Obs.Counter.incr c_committed;
    (match result.kind with
     | Merge.Same_group -> incr same_group
     | Merge.Cross_group -> incr cross_group
     | Merge.Shared_one -> incr shared_one
     | Merge.Shared_multi -> incr shared_multi);
    planned_snake := !planned_snake +. result.snake;
    if not result.feasible then incr infeasible;
    if config.trial_cache then begin
      evict aid;
      evict bid
    end;
    if tracing then begin
      cum_wire := !cum_wire +. result.planned_wire;
      (match h_extent with
       | Some h ->
         Obs.Histogram.observe h
           (Geometry.Octagon.diameter result.subtree.Subtree.region)
       | None -> ());
      Obs.Trace.instant trace ~cat:"dme.engine"
        ~args:
          [
            ("id", Obs.Json.Int id);
            ( "kind",
              Obs.Json.String
                (match result.kind with
                 | Merge.Same_group -> "same_group"
                 | Merge.Cross_group -> "cross_group"
                 | Merge.Shared_one -> "shared_one"
                 | Merge.Shared_multi -> "shared_multi") );
            ("planned_wire", Obs.Json.Float result.planned_wire);
            ("feasible", Obs.Json.Bool result.feasible);
          ]
        "merge"
    end;
    result.subtree
  in
  (* [Order]'s §V.F-2 bias adds [weight × delay-hull (ps)] to candidate
     distances (layout units), so its weight is in layout units per ps.
     Exposing that unit in the config would tie the merge order to the
     instance's absolute coordinate scale — the same layout expressed in
     different units would route differently.  The config knob is
     therefore dimensionless (hull as a fraction of an unloaded
     die-diameter wire's delay, bias as a fraction of the diameter) and
     the conversion factor [diameter / die_delay] comes from the
     instance itself.  Both factors rescale exactly under a
     power-of-two change of layout unit (coordinates ×k, unit RC ÷k),
     keeping ranked costs bit-identically ordered across scales. *)
  let delay_order_weight =
    if config.delay_order_weight = 0. then 0.
    else begin
      let d = Geometry.Octagon.diameter (Clocktree.Instance.bbox inst) in
      let die_delay =
        Rc.Elmore.wire_delay inst.Clocktree.Instance.params ~len:d ~load:0.
      in
      if die_delay > 0. then config.delay_order_weight *. d /. die_delay else 0.
    end
  in
  let order_config =
    Order.
      {
        multi_merge = config.multi_merge;
        merge_fraction = config.merge_fraction;
        knn = config.knn;
        delay_order_weight;
        incremental = config.incremental;
      }
  in
  let jobs = match pool with Some p -> Par.Pool.jobs p | None -> 1 in
  (* One journal record per merge round.  Trial-cache counters are
     engine-side state, so their per-round deltas are computed here and
     joined with the ranking loop's own round report. *)
  let on_round =
    if not tracing then None
    else begin
      let last_trials = ref 0 and last_hits = ref 0 and last_elided = ref 0 in
      let last_gc = ref (Obs.Gcstat.sample ()) in
      Some
        (fun (r : Order.round_info) ->
          let d_trials = !trial_merges - !last_trials in
          let d_hits = !hits - !last_hits in
          let d_elided = !elided - !last_elided in
          last_trials := !trial_merges;
          last_hits := !hits;
          last_elided := !elided;
          let gc_now = Obs.Gcstat.sample () in
          let d_gc = Obs.Gcstat.diff gc_now !last_gc in
          last_gc := gc_now;
          Obs.Trace.journal trace
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.String "round");
                 ("round", Obs.Json.Int r.round);
                 ("active", Obs.Json.Int r.active);
                 ("probes", Obs.Json.Int r.probes);
                 ("nn_probes_saved", Obs.Json.Int r.cache_served);
                 ("merges", Obs.Json.Int r.merges);
                 ("trial_merges", Obs.Json.Int d_trials);
                 ("trial_cache_hits", Obs.Json.Int d_hits);
                 ("trial_elided", Obs.Json.Int d_elided);
                 ("merge_cost", Obs.Json.Float r.best_cost);
                 ("cum_planned_wire", Obs.Json.Float !cum_wire);
                 ("wall_s", Obs.Json.Float r.wall_s);
                 ("gc", Obs.Gcstat.json d_gc);
               ]))
    end
  in
  let root, (ostats : Order.stats) =
    let body () =
      Order.run_ranked ?pool ~trace ~sched ?on_round ?leaves inst order_config
        ~coster:{ Order.session; absorb }
        ~merger:{ Order.compute; install }
    in
    if tracing then
      Obs.Trace.span trace ~cat:"dme.engine"
        ~args:[ ("jobs", Obs.Json.Int jobs) ]
        "engine.plan" body
    else body ()
  in
  ( root,
    {
      rounds = ostats.rounds;
      nn_reprobes = ostats.nn_probes;
      nn_probes_saved = ostats.nn_probes_saved;
      same_group = !same_group;
      cross_group = !cross_group;
      shared_one = !shared_one;
      shared_multi = !shared_multi;
      planned_snake = !planned_snake;
      infeasible_merges = !infeasible;
      trial =
        {
          trial_merges = !trial_merges;
          cache_hits = !hits;
          cache_misses = !misses;
          elided_trials = !elided;
          reused_trials = !reused;
        };
      gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0;
    } )

let run_arena ?(config = default) ?(trace = Obs.Trace.null)
    ?(sched = Obs.Sched.null) inst =
  let gc0 = Obs.Gcstat.sample () in
  let jobs = Int.max 1 config.jobs in
  (* The pool stays alive through embedding: the top-down phase reuses
     the ranking loop's worker domains for its subtree fan-out. *)
  let arena, stats =
    Par.Pool.with_pool ~jobs (fun pool ->
        let root, stats = plan ~config ~trace ~sched ?pool inst in
        (Embed.run_arena ?pool ~trace ~sched inst root, stats))
  in
  (arena, { stats with gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0 })

let run ?config ?trace ?sched inst =
  let gc0 = Obs.Gcstat.sample () in
  let arena, stats = run_arena ?config ?trace ?sched inst in
  let routed = Clocktree.Arena.to_routed arena in
  (routed, { stats with gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0 })
