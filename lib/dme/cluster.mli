(** Two-level clustered AST-DME: partition the sinks into spatial
    regions, plan each region bottom-up with its own {!Engine} instance
    — in parallel across a {!Par.Pool}'s domains — then stitch the
    region roots with one top-level plan and embed the whole tree in a
    single pass.

    The shape follows Held–Kämmerling's two-level rectilinear Steiner
    construction and the 3D-MMM "Cluster DME" decomposition: the
    per-region work is embarrassingly parallel (each region plan owns a
    private arena and {!Geometry.Grid_index} shard and is a pure
    function of its sub-instance), and the top-level merge sees exact
    per-group delay intervals, so the associative skew bound is
    enforced across region boundaries exactly as within them — the
    stitched tree goes through the same {!Clocktree.Repair} as a flat
    one.

    Determinism contract: for a fixed cluster count the partition, the
    routed tree, per-sink delays and wirelength are bit-identical for
    any jobs count; with [clusters = 1] they are additionally
    bit-identical to the flat {!Engine.run} ({!Check.Oracle}'s
    [cluster_identity] enforces this).  [gc] is, as ever, the one
    run-dependent stats field. *)

(** One region's bottom-up plan: its 0-based [cluster] index in
    partition order, sink count, wall-clock planning seconds (as
    measured on whichever domain ran the plan) and the region engine's
    stats ([gc] sampled on that same domain). *)
type cluster_stats = {
  cluster : int;
  n_sinks : int;
  wall_s : float;
  stats : Engine.stats;
}

(** Clustering detail of one run: the realized region count (after
    clamping to the sink count), per-region stats and the top-level
    stitch plan's stats. *)
type stats = {
  n_clusters : int;
  per_cluster : cluster_stats array;
  top : Engine.stats;
}

(** Default region count: about one region per thousand sinks, clamped
    to [1 .. 64]. *)
val auto_clusters : Clocktree.Instance.t -> int

(** [partition inst ~clusters] splits the sink ids into
    [min clusters (n_sinks)] non-empty regions (at least 1) by
    recursive median bipartition along the longer bounding-box axis
    ({!Geometry.Split.bipartition}).  Every sink id appears in exactly
    one region; the result is a pure function of the instance —
    deterministic across jobs counts and runs. *)
val partition : Clocktree.Instance.t -> clusters:int -> int array array

(** [run ?config ?trace ?clusters inst] routes the instance in clustered
    mode and returns the routed tree, aggregate engine stats
    (component-wise sum over region plans and the top-level stitch,
    with [gc] the caller-domain whole-run differential) and the
    per-cluster detail.  [clusters] defaults to {!auto_clusters}; it is
    clamped to [1 .. n_sinks].  [config.jobs] sizes the pool that maps
    region plans (one chunk each) and serves the top-level plan and the
    final embed; region plans themselves run serially on their domain
    ({!Par.Pool} is not reentrant).  With [trace] enabled, region plans
    emit the usual engine spans/journal records from their domains, a
    ["cluster.plan"] span wraps the bottom level, one journal record of
    [type = "cluster"] summarizes each region, and the manifest gains
    the region count. *)
val run :
  ?config:Engine.config ->
  ?trace:Obs.Trace.t ->
  ?clusters:int ->
  Clocktree.Instance.t ->
  Clocktree.Tree.routed * Engine.stats * stats
