(** Multi-level clustered AST-DME: partition the sinks into spatial
    regions, plan each region bottom-up with its own {!Engine} instance
    — in parallel across a {!Par.Pool}'s domains — then stitch the
    region roots back together through a bounded-fan-in hierarchy of
    further plans and embed the whole tree in a single pass.

    The shape follows Held–Kämmerling's two-level rectilinear Steiner
    construction and the 3D-MMM "Cluster DME" decomposition, extended
    recursively: no stitch plan sees more than {!fanout_cap} children,
    so a 10^6-sink instance gets ~1000 regions stitched through two
    levels instead of one 1000-ary merge.  The per-region work is
    embarrassingly parallel (each region plan owns a private arena and
    {!Geometry.Grid_index} shard and is a pure function of its
    sub-instance), every stitch level plans over the {e global}
    instance (global bbox drives the penalty / reach-cap / grid
    scales), and each stitch sees exact per-group delay intervals, so
    the associative skew bound is enforced across region boundaries
    exactly as within them — the stitched tree goes through the same
    {!Clocktree.Repair} as a flat one.

    Determinism contract: for a fixed cluster count and depth the
    partition, the routed tree, per-sink delays and wirelength are
    bit-identical for any jobs count; with [clusters = 1] they are
    additionally bit-identical to the flat {!Engine.run}, and a forced
    [depth = 1] is bit-identical to the historical two-level
    construction ({!Check.Oracle}'s [cluster_identity] and
    [cluster_depth_identity] enforce this).  [gc] is, as ever, the one
    run-dependent stats field. *)

(** One plan of the hierarchy: its 0-based index in traversal
    (partition) order, the sink count it covers, wall-clock planning
    seconds (as measured on whichever domain ran the plan) and the
    engine's stats ([gc] sampled on that same domain).  Used both for
    leaf regions ([per_cluster]) and stitch plans ([super]). *)
type cluster_stats = {
  cluster : int;
  n_sinks : int;
  wall_s : float;
  stats : Engine.stats;
}

(** Clustering detail of one run: the realized leaf-region count (after
    clamping to the sink count), the realized stitch depth (1 for the
    classic two-level construction), per-region stats, per-super-stitch
    stats (empty at depth 1 — the top-level stitch is reported in
    [top], not [super]) and the top-level stitch plan's stats. *)
type stats = {
  n_clusters : int;
  depth : int;
  per_cluster : cluster_stats array;
  super : cluster_stats array;
  top : Engine.stats;
}

(** Default region count: about one region per thousand sinks — no
    upper cap; past [fanout_cap] regions the stitch goes multi-level
    ({!auto_depth}) rather than letting regions grow with the
    instance. *)
val auto_clusters : Clocktree.Instance.t -> int

(** Maximum children any stitch plan sees (64). *)
val fanout_cap : int

(** Smallest stitch depth whose hierarchy reaches [k] regions under
    {!fanout_cap}: 1 for [k <= 64], 2 up to 4096, and so on. *)
val auto_depth : int -> int

(** [partition inst ~clusters] splits the sink ids into
    [min clusters (n_sinks)] non-empty regions (at least 1) by
    recursive median bipartition along the longer bounding-box axis
    ({!Geometry.Split.bipartition}).  Every sink id appears in exactly
    one region; the result is a pure function of the instance —
    deterministic across jobs counts and runs, and identical to the
    leaf regions of the multi-level hierarchy at any depth. *)
val partition : Clocktree.Instance.t -> clusters:int -> int array array

(** [run ?config ?trace ?clusters ?depth inst] routes the instance in
    clustered mode and returns the routed tree, aggregate engine stats
    (component-wise sum over region plans, super stitches and the
    top-level stitch, with [gc] the caller-domain whole-run
    differential) and the per-cluster detail.  [clusters] defaults to
    {!auto_clusters}, clamped to [1 .. n_sinks]; [depth] defaults to
    {!auto_depth} of the realized cluster count and is clamped to
    [>= 1] (forcing it higher than needed degenerates gracefully — a
    budget-1 group plans directly regardless of remaining depth).
    [config.jobs] sizes the pool that maps top-level groups (one chunk
    each) and serves the top-level stitch and the final embed; plans
    below the top level run serially on their group's domain
    ({!Par.Pool} is not reentrant).  With [trace] enabled, plans emit
    the usual engine spans/journal records from their domains, a
    ["cluster.plan"] span wraps the bottom level, one journal record of
    [type = "cluster"] (regions) or ["cluster_super"] (sub-level
    stitches) summarizes each plan, and the manifest gains the region
    count and realized depth.

    An enabled [sched] recorder ledgers the top-level region map under
    ["engine.regions"] (plus the stitch/embed ledgers from
    {!Engine.plan} / {!Embed.run_arena}); an enabled [progress]
    reporter is told the top-level group count (depth 0) and — for
    hierarchies deeper than one level — the leaf-region count
    (depth 1), and sees a completion per planned region.  Neither
    influences planning: results stay bit-identical with recorder and
    reporter on or off. *)
val run :
  ?config:Engine.config ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  ?clusters:int ->
  ?depth:int ->
  Clocktree.Instance.t ->
  Clocktree.Tree.routed * Engine.stats * stats

(** {!run} minus the final [Arena.to_routed]: the arena-native router
    pipeline's entry point. *)
val run_arena :
  ?config:Engine.config ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?progress:Obs.Progress.t ->
  ?clusters:int ->
  ?depth:int ->
  Clocktree.Instance.t ->
  Clocktree.Arena.t * Engine.stats * stats
