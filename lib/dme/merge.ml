module IntMap = Subtree.IntMap
module Interval = Geometry.Interval
module Octagon = Geometry.Octagon
module Eps = Geometry.Eps

type kind = Same_group | Cross_group | Shared_one | Shared_multi

type result = {
  subtree : Subtree.t;
  kind : kind;
  planned_wire : float;
  snake : float;
  feasible : bool;
}

let classify (a : Subtree.t) (b : Subtree.t) shared =
  match shared with
  | [] -> Cross_group
  | [ _ ] ->
    if IntMap.cardinal a.delay = 1 && IntMap.cardinal b.delay = 1 then
      Same_group
    else Shared_one
  | _ :: _ :: _ -> Shared_multi

let mid_pref (a : Subtree.t) (b : Subtree.t) =
  Interval.mid (Subtree.delay_hull b) -. Interval.mid (Subtree.delay_hull a)

(* Merging region with float-fuzz fallbacks: widen slightly if the exact
   intersection degenerates, and as a last resort use the point of [a]'s
   boundary nearest to [b]. *)
let merge_region (a : Octagon.t) ea (b : Octagon.t) eb =
  let attempt extra =
    Octagon.inter (Octagon.inflate (ea +. extra) a) (Octagon.inflate (eb +. extra) b)
  in
  let r = attempt 0. in
  if not (Octagon.is_empty r) then r
  else begin
    let r = attempt (4. *. Eps.tol) in
    if not (Octagon.is_empty r) then r
    else Octagon.of_point (fst (Octagon.closest_pair a b))
  end

(* Shared-group merge (steps 4, 6 and 7 of Fig. 6): commit wire lengths
   satisfying every shared group's skew constraint; snaking covers
   imbalance beyond the slack. *)
let merge_committed (inst : Clocktree.Instance.t) ~slack_usage ~id kind shared
    (a : Subtree.t) (b : Subtree.t) =
  let params = inst.params in
  let dist = Octagon.dist a.region b.region in
  let cons_with effective_bound =
    List.map
      (fun g ->
        let ia = IntMap.find g a.delay and ib = IntMap.find g b.delay in
        let wmax = Float.max (Interval.width ia) (Interval.width ib) in
        Rc.Balance.
          {
            a = { lo = ia.Interval.lo; hi = ia.Interval.hi };
            b = { lo = ib.Interval.lo; hi = ib.Interval.hi };
            bound = effective_bound (Clocktree.Instance.bound_for inst g) wmax;
          })
      shared
  in
  (* Spending the whole skew slack at the first opportunity drifts group
     windows to their limits and forces later merges to snake; so first
     plan against windows that only grow by [slack_usage] of the
     remaining slack, and fall back to the full bound before paying
     snaking wire. *)
  let strict =
    cons_with (fun group_bound wmax ->
        wmax +. (slack_usage *. (group_bound -. wmax)))
  in
  let pref = mid_pref a b in
  let plan =
    Rc.Balance.plan params ~dist ~cap_a:a.cap ~cap_b:b.cap ~cons:strict ~pref
  in
  let plan =
    if plan.snake > 0. || not plan.feasible then
      Rc.Balance.plan params ~dist ~cap_a:a.cap ~cap_b:b.cap
        ~cons:(cons_with (fun group_bound _ -> group_bound))
        ~pref
    else plan
  in
  let region = merge_region a.region plan.ea b.region plan.eb in
  let shifted_a = IntMap.map (Interval.shift plan.wa) a.delay in
  let shifted_b = IntMap.map (Interval.shift plan.wb) b.delay in
  let delay =
    IntMap.union (fun _ ia ib -> Some (Interval.hull ia ib)) shifted_a shifted_b
  in
  let wire = plan.ea +. plan.eb in
  let subtree =
    Subtree.
      {
        id;
        region;
        cap = a.cap +. b.cap +. (params.c *. wire);
        delay;
        n_sinks = a.n_sinks + b.n_sinks;
        build = Merge { left = a; right = b; lengths = Committed { ea = plan.ea; eb = plan.eb } };
      }
  in
  { subtree; kind; planned_wire = wire; snake = plan.snake; feasible = plan.feasible }

(* Cross-group merge (step 5 of Fig. 6): the merging region is the
   shortest-distance region between the child regions.  The admissible
   split range [l, h] around the delay-balanced split is chosen so the
   delay uncertainty it adds stays within [split_slack]·bound and within
   each group's remaining slack. *)
let merge_cross (inst : Clocktree.Instance.t) ~split_slack ~width_cap
    ~sdr_samples ~id (a : Subtree.t) (b : Subtree.t) =
  let params = inst.params in
  let dist = Octagon.dist a.region b.region in
  (* The tightest group bound present on either side limits how much
     split-range uncertainty one merge may introduce. *)
  let min_bound =
    let fold (t : Subtree.t) acc =
      IntMap.fold
        (fun g _ acc -> Float.min acc (Clocktree.Instance.bound_for inst g))
        t.delay acc
    in
    fold a (fold b Float.infinity)
  in
  let plan =
    Rc.Balance.plan params ~allow_snake:false ~dist ~cap_a:a.cap ~cap_b:b.cap
      ~cons:[] ~pref:(mid_pref a b)
  in
  let l, h =
    if dist <= Eps.tol then (0., 0.)
    else begin
      (* Widening consumes skew slack; keep every group's window below
         width_cap·bound so the end-game merges retain room to balance. *)
      let budget side_subtree =
        let slack =
          Subtree.min_slack_by
            ~bound_of:(fun g ->
              width_cap *. Clocktree.Instance.bound_for inst g)
            side_subtree
        in
        Float.max 0. (Float.min (split_slack *. min_bound) slack)
      in
      let omega_a = budget a and omega_b = budget b in
      let stretch cap w omega =
        (* wire lengths whose delay is w ± omega/2 *)
        let lo =
          if w -. (omega /. 2.) <= 0. then 0.
          else Rc.Elmore.wire_for_delay params ~load:cap ~delay:(w -. (omega /. 2.))
        in
        let hi = Rc.Elmore.wire_for_delay params ~load:cap ~delay:(w +. (omega /. 2.)) in
        (lo, hi)
      in
      let la, ha = stretch a.cap plan.wa omega_a in
      let lb, hb = stretch b.cap plan.wb omega_b in
      let l = Float.max 0. (Float.max la (dist -. hb)) in
      let h = Float.min dist (Float.min ha (dist -. lb)) in
      if l > h then (plan.ea, plan.ea) else (l, h)
    end
  in
  let region =
    if dist <= Eps.tol then
      let r = Octagon.inter a.region b.region in
      if Octagon.is_empty r then Octagon.of_point (fst (Octagon.closest_pair a.region b.region))
      else r
    else begin
      let sdr = Octagon.sdr ~samples:sdr_samples a.region b.region in
      let r =
        Octagon.inter sdr
          (Octagon.inter
             (Octagon.inflate h a.region)
             (Octagon.inflate (dist -. l) b.region))
      in
      if Octagon.is_empty r then merge_region a.region plan.ea b.region plan.eb
      else r
    end
  in
  (* Delay bookkeeping is nominal: a split merge shifts every group of a
     side by the same (uncertain) wire delay, so group widths are
     invariant; positions are recorded as if the balanced split [ea]
     realizes.  The deviation of an actual embedding is at most
     w(h) - w(l) <= split_slack·bound per split merge, and the repair
     pass removes whatever accumulates. *)
  let shifted_a = IntMap.map (Interval.shift plan.wa) a.delay in
  let shifted_b = IntMap.map (Interval.shift plan.wb) b.delay in
  let delay =
    IntMap.union
      (fun _ ia ib -> Some (Interval.hull ia ib) (* unreachable: disjoint groups *))
      shifted_a shifted_b
  in
  let subtree =
    Subtree.
      {
        id;
        region;
        cap = a.cap +. b.cap +. (params.c *. dist);
        delay;
        n_sinks = a.n_sinks + b.n_sinks;
        build =
          Merge
            {
              left = a;
              right = b;
              lengths = Split { total = dist; split_lo = l; split_hi = h };
            };
      }
  in
  { subtree; kind = Cross_group; planned_wire = dist; snake = 0.; feasible = true }

(* Would [run] report this pair feasible?  Answered without building the
   merged subtree, region or delay map — the ranking loop asks this for
   every probed candidate pair, and under distance-cost ranking it is the
   trial merge's only cost-relevant output.

   Why this is exact, case by case against [merge_committed]:
   - [Rc.Balance.plan] computes [feasible] from the constraint list
     alone: the fold of [cons_x_interval] windows is non-empty.  Folding
     [Interval.inter] is a running [Float.max] of the lows and
     [Float.min] of the highs — exact and order-insensitive for the
     finite windows committed merges produce — so one ascending pass
     over the shared groups reproduces it bit for bit.
   - The strict plan survives (its [feasible] becomes the result) iff it
     is feasible {e and} snake-free.  Snake is zero iff the chosen [x]
     lies in the detour-free range [[x_min, x_max]]: inside the range
     [ea + eb = dist] exactly (the balance split is clamped to
     [[0, dist]]), outside it the wire stretch is strictly positive.
     For a feasible plan [x] is clamped into
     [wanted ∩ [x_min, x_max]] whenever that is non-empty, so
     snake-freedom is exactly the non-emptiness of that intersection —
     the preference point never matters.
   - Otherwise the result is the full-bound plan's [feasible]: the
     full-window fold.

   The group walk must mirror [shared_groups] (ascending ids) feeding
   [cons_with]; [IntMap.find] + [Not_found] and manually inlined
   [Interval.width] keep the walk allocation-free. *)
(* Per-domain scratch for [committed_feasible]: the window bounds live in
   a flat float scratch ([Float.Array] stores are unboxed where a
   [float ref] boxes every update), and the group visitor is built once
   per domain so [IntMap.iter] is handed a pre-existing closure instead
   of allocating one per candidate pair.  [slack_usage] rides in the
   float scratch (slot 4) because a mutable float field of a mixed
   record would box on every write.  Safe because the visitor never
   re-enters [committed_feasible]. *)
type cf_scratch = {
  cfw : floatarray;
      (* 0 = strict lo, 1 = strict hi, 2 = full lo, 3 = full hi,
         4 = slack_usage *)
  mutable cf_other : Interval.t IntMap.t;
  mutable cf_inst : Clocktree.Instance.t option;
  mutable cf_any : bool;
}

let cf_key =
  Domain.DLS.new_key (fun () ->
      let cf =
        {
          cfw = Float.Array.create 5;
          cf_other = IntMap.empty;
          cf_inst = None;
          cf_any = false;
        }
      in
      let visit g (ia : Interval.t) =
        match IntMap.find g cf.cf_other with
        | exception Not_found -> ()
        | ib ->
          cf.cf_any <- true;
          let inst =
            match cf.cf_inst with Some i -> i | None -> assert false
          in
          let w = cf.cfw in
          let bound = Clocktree.Instance.bound_for inst g in
          let slack_usage = Float.Array.unsafe_get w 4 in
          (* Interval.width, inlined: Float.max 0. (hi -. lo). *)
          let wa = Float.max 0. (ia.Interval.hi -. ia.Interval.lo) in
          let wb = Float.max 0. (ib.Interval.hi -. ib.Interval.lo) in
          let wmax = Float.max wa wb in
          let strict_bound = wmax +. (slack_usage *. (bound -. wmax)) in
          (* cons_x_interval, inlined for each bound choice. *)
          Float.Array.unsafe_set w 0
            (Float.max (Float.Array.unsafe_get w 0)
               (ib.Interval.hi -. ia.Interval.lo -. strict_bound));
          Float.Array.unsafe_set w 1
            (Float.min (Float.Array.unsafe_get w 1)
               (strict_bound +. ib.Interval.lo -. ia.Interval.hi));
          Float.Array.unsafe_set w 2
            (Float.max (Float.Array.unsafe_get w 2)
               (ib.Interval.hi -. ia.Interval.lo -. bound));
          Float.Array.unsafe_set w 3
            (Float.min (Float.Array.unsafe_get w 3)
               (bound +. ib.Interval.lo -. ia.Interval.hi))
      in
      (cf, visit))

let committed_feasible (inst : Clocktree.Instance.t) ~slack_usage ~dist
    (a : Subtree.t) (b : Subtree.t) =
  let cf, visit = Domain.DLS.get cf_key in
  let w = cf.cfw in
  Float.Array.unsafe_set w 0 Float.neg_infinity;
  Float.Array.unsafe_set w 1 Float.infinity;
  Float.Array.unsafe_set w 2 Float.neg_infinity;
  Float.Array.unsafe_set w 3 Float.infinity;
  Float.Array.unsafe_set w 4 slack_usage;
  cf.cf_other <- b.delay;
  (match cf.cf_inst with
  | Some i when i == inst -> ()
  | _ -> cf.cf_inst <- Some inst);
  cf.cf_any <- false;
  IntMap.iter visit a.delay;
  cf.cf_other <- IntMap.empty;
  if not cf.cf_any then true (* merge_cross: always feasible *)
  else begin
    let slo = Float.Array.unsafe_get w 0
    and shi = Float.Array.unsafe_get w 1
    and flo = Float.Array.unsafe_get w 2
    and fhi = Float.Array.unsafe_get w 3 in
    if
      (* strict plan feasible... *)
      not (slo > shi +. Eps.tol)
      && begin
           (* ...and snake-free: wanted ∩ [x_min, x_max] non-empty. *)
           let params = inst.params in
           let x_min = -.Rc.Elmore.wire_delay params ~len:dist ~load:b.cap in
           let x_max = Rc.Elmore.wire_delay params ~len:dist ~load:a.cap in
           not (Float.max slo x_min > Float.min shi x_max +. Eps.tol)
         end
    then true
    else not (flo > fhi +. Eps.tol)
  end

let run inst ?(slack_usage = 0.3) ~split_slack ~width_cap ~sdr_samples ~id a b =
  let shared = Subtree.shared_groups a b in
  match classify a b shared with
  | Cross_group -> merge_cross inst ~split_slack ~width_cap ~sdr_samples ~id a b
  | kind -> merge_committed inst ~slack_usage ~id kind shared a b

let pp_kind ppf = function
  | Same_group -> Format.pp_print_string ppf "same-group"
  | Cross_group -> Format.pp_print_string ppf "cross-group"
  | Shared_one -> Format.pp_print_string ppf "shared-one"
  | Shared_multi -> Format.pp_print_string ppf "shared-multi"
