(** The complete deferred-merge engine: bottom-up merging (Fig. 6) plus
    top-down embedding.  All three routers of the library — AST-DME,
    EXT-BST and greedy-DME — are this engine run on differently grouped
    instances. *)

type config = {
  multi_merge : bool;  (** §V.F enhancement 1: batch merges per round *)
  merge_fraction : float;  (** batch size as a fraction of active subtrees *)
  knn : int;  (** nearest-neighbour candidates per query *)
  delay_order_weight : float;
      (** §V.F enhancement 2: bias merge order toward slow subtrees
          (0 = off).  Dimensionless: a subtree whose delay hull equals
          the delay of an unloaded die-diameter wire is biased by
          [weight × diameter] layout units.  Deriving the units from
          the instance keeps the merge order invariant under a change
          of layout unit (an absolute layout-units-per-ps weight would
          rank the same layout differently at different scales). *)
  split_slack : float;
      (** fraction of the skew bound a cross-group merge may spend on
          split-range delay uncertainty *)
  slack_usage : float;
      (** fraction of a group's remaining slack one constrained merge may
          consume before snaking is considered (gradual slack spending) *)
  width_cap : float;
      (** cumulative cap on any group's delay-window width as a fraction
          of the bound; reserves slack for end-game merges *)
  sdr_samples : int;  (** slices used to build shortest-distance regions *)
  cost_by_planned_wire : bool;
      (** rank merge candidates by planned wire (including snaking)
          instead of region distance; an ablation knob — distance wins
          in practice because deferring balancing cost lets group
          offsets drift *)
  avoid_infeasible : bool;
      (** heavily penalize candidate pairs whose trial merge has
          mutually inconsistent shared-group constraints (Instance 2
          conflicts), merging them only as a last resort *)
  trial_cache : bool;
      (** avoid redundant trial {!Merge.run}s in the cost ranking:
          cross-group probes are elided outright (an unconstrained merge
          is always feasible with planned wire = region distance),
          shared-group trials are memoized per candidate pair across
          rounds, and the winning pair's committed merge reuses its own
          trial.  Routed trees are bit-identical with the cache on or
          off; off exists for benchmarking and as a paranoia switch *)
  incremental : bool;
      (** cache each subtree's nearest-neighbour proposal across merge
          rounds and re-probe only the dirty set (subtrees whose
          proposal a committed merge could have changed — see {!Order}).
          Routed trees, per-sink delays and wirelength are bit-identical
          on or off; skipped probes also skip their candidates' trial
          merges, so trial {e counters} drop together with
          [nn_reprobes].  Off exists for ablation benchmarks *)
  jobs : int;
      (** domains used for the per-round candidate ranking (nearest
          neighbour probes and their trial merges); 1 = fully serial.
          Routed trees and engine stats are bit-identical for any value:
          probes run against frozen round-start state, side results are
          absorbed in a fixed order on the main domain, and merges
          commit serially (see {!Order}).  The default is the
          [ASTSKEW_JOBS] environment variable, else 1
          ({!Par.Pool.default_jobs}) *)
}

val default : config

(** Trial-merge workload of one engine run.  With the cache off,
    [trial_merges] counts every cost-probe [Merge.run]; with it on,
    [trial_merges = cache_misses] and the saving is
    [elided_trials + cache_hits + reused_trials]. *)
type trial_stats = {
  trial_merges : int;  (** trial [Merge.run] executions performed *)
  cache_hits : int;  (** cost probes answered from the cache *)
  cache_misses : int;  (** cost probes that ran a fresh trial *)
  elided_trials : int;
      (** cross-group cost probes answered without any trial *)
  reused_trials : int;  (** committed merges promoted from their trial *)
}

(** All-zero [trial_stats], for engines that never trial-merge (MMM). *)
val no_trials : trial_stats

type stats = {
  rounds : int;
  same_group : int;
  cross_group : int;
  shared_one : int;
  shared_multi : int;
  planned_snake : float;  (** snaking wire committed during planning *)
  infeasible_merges : int;
      (** merges whose constraints were mutually inconsistent; their
          residual skew is fixed by {!Clocktree.Repair} *)
  nn_reprobes : int;
      (** nearest-neighbour probes actually executed by the ranking
          loop; with [incremental] off this is one per active subtree
          per round *)
  nn_probes_saved : int;
      (** rank slots served from the cross-round proposal cache instead
          of probing; [nn_reprobes + nn_probes_saved] is the probe count
          a from-scratch ([incremental = false]) run executes *)
  trial : trial_stats;
  gc : Obs.Gcstat.t;
      (** GC work of the whole run (plan + embed) as seen from the
          calling domain: {!Obs.Gcstat.sample} at entry diffed against
          exit.  The allocation budget the bench gate enforces; the only
          stats field that is {e not} bit-identical across equivalent
          runs — identity oracles compare with [gc] zeroed *)
}

(** [config] as a JSON object (one field per record field), for run
    manifests and stats dumps. *)
val json_of_config : config -> Obs.Json.t

(** Bottom-up merge planning only: reduce the instance's sinks — or an
    explicit [leaves] population (see {!Order.run_ranked}: dense ids,
    delay maps against [inst]'s groups) — to a single root subtree,
    without embedding.  Unlike {!run}, [plan] does not own a pool:
    ranking parallelism comes from the caller's [pool] (absent = fully
    serial; [config.jobs] is ignored).  This is the re-entrant core the
    clustered router calls once per region from worker domains
    ({!Par.Pool} is not reentrant, so region plans pass no pool) and
    once at top level over the region roots with the shared pool.
    [stats.gc] covers planning only.  Planning is bit-identical for any
    pool size. *)
val plan :
  ?config:config ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?pool:Par.Pool.t ->
  ?leaves:Subtree.t array ->
  Clocktree.Instance.t ->
  Subtree.t * stats

(** Plan and embed a clock tree for the instance.  The result is the
    pre-repair tree: callers normally pass it through
    {!Clocktree.Repair.run}.

    With [trace] enabled the run merges its config into the trace
    manifest, wraps planning in an ["engine.plan"] span, emits one
    ["merge"] instant per committed merge, feeds committed region
    extents into the ["engine.region_extent"] histogram and appends one
    journal record per merge round (probe/cache/trial counts, cheapest
    committed cost, cumulative planned wire, wall time).  The default
    {!Obs.Trace.null} emits nothing and the routed tree and stats are
    byte-identical with tracing on or off.  An enabled [sched] recorder
    ledgers the pooled ranking/commit/embed maps (phase ["engine"]);
    the same bit-identity contract applies ([sched_identity] oracle). *)
val run :
  ?config:config -> ?trace:Obs.Trace.t -> ?sched:Obs.Sched.t ->
  Clocktree.Instance.t ->
  Clocktree.Tree.routed * stats

(** Plan and embed straight into a flat post-order arena — the
    arena-native pipeline's entry point ({!run} is this plus
    [Arena.to_routed]).  Same determinism contract as {!run}: the arena
    is bit-identical for any [config.jobs]. *)
val run_arena :
  ?config:config -> ?trace:Obs.Trace.t -> ?sched:Obs.Sched.t ->
  Clocktree.Instance.t ->
  Clocktree.Arena.t * stats
