module Octagon = Geometry.Octagon
module Pt = Geometry.Pt
module Eps = Geometry.Eps
module Tree = Clocktree.Tree

let run ?(trace = Obs.Trace.null) (inst : Clocktree.Instance.t)
    (root : Subtree.t) =
  let rec go (sub : Subtree.t) (p : Pt.t) =
    match sub.build with
    | Subtree.Leaf s -> Tree.Leaf s
    | Subtree.Merge { left; right; lengths } ->
      let pl = Octagon.nearest_point left.region p in
      let pr = Octagon.nearest_point right.region p in
      let llen, rlen =
        match lengths with
        | Subtree.Committed { ea; eb } ->
          (Float.max ea (Pt.dist p pl), Float.max eb (Pt.dist p pr))
        | Subtree.Split { total; split_lo; split_hi } ->
          let la = Eps.clamp split_lo split_hi (Pt.dist p pl) in
          (Float.max la (Pt.dist p pl), Float.max (total -. la) (Pt.dist p pr))
      in
      Tree.node p (go left pl) (go right pr) ~llen ~rlen
  in
  let root_pt = Octagon.nearest_point root.region inst.source in
  let body () = Tree.route inst.source (go root root_pt) in
  if Obs.Trace.enabled trace then
    Obs.Trace.span trace ~cat:"dme.embed" "embed" body
  else body ()
