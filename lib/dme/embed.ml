module Octagon = Geometry.Octagon
module Pt = Geometry.Pt
module Eps = Geometry.Eps
module Tree = Clocktree.Tree
module Arena = Clocktree.Arena

(* The one edge-length formula of the embedding, shared by the serial
   fill, the parallel prefix expansion and the reference walk: committed
   lengths are honoured exactly (shortfall is snaked), shortest-path
   merges consume exactly the planned total, split at the clamped
   distance to the left child. *)
let edge_lengths lengths (p : Pt.t) (pl : Pt.t) (pr : Pt.t) =
  match lengths with
  | Subtree.Committed { ea; eb } ->
    (Float.max ea (Pt.dist p pl), Float.max eb (Pt.dist p pr))
  | Subtree.Split { total; split_lo; split_hi } ->
    let la = Eps.clamp split_lo split_hi (Pt.dist p pl) in
    (Float.max la (Pt.dist p pl), Float.max (total -. la) (Pt.dist p pr))

(* Write one leaf's arena slot.  [size], [left]/[right]/[parent] and
   [len] keep their initial values (1 / -1 / parent-assigned). *)
let emit_leaf (a : Arena.t) v (s : Clocktree.Sink.t) =
  a.Arena.sink.(v) <- s.Clocktree.Sink.id;
  a.Arena.group.(v) <- s.Clocktree.Sink.group;
  a.Arena.scap.(v) <- s.Clocktree.Sink.cap;
  a.Arena.pos.(v) <- s.Clocktree.Sink.loc

(* Embed [sub] placed at [p] straight into the arena window ending at
   [base + 2 * n_sinks sub - 2], in post order — index for index what
   [Arena.of_routed] would assign flattening the boxed embedding.
   Iterative like [Arena.of_routed]: an explicit frame stack with the
   same three-visit protocol (descend left, descend right, emit), so
   degenerate 10^5-deep merge plans embed without touching the OCaml
   stack.  Child placements and edge lengths are computed at first
   visit (the children's frames need them) and carried in the frame. *)
let fill_window (a : Arena.t) (sub : Subtree.t) (p : Pt.t) ~base =
  let cap = (2 * sub.Subtree.n_sinks) - 1 + 1 in
  let st_sub = Array.make cap sub in
  let st_p = Array.make cap p in
  let st_pr = Array.make cap p in
  let st_stage = Array.make cap 0 in
  let st_left = Array.make cap (-1) in
  let st_llen = Array.make cap 0. in
  let st_rlen = Array.make cap 0. in
  let sp = ref 0 in
  let push sub p =
    st_sub.(!sp) <- sub;
    st_p.(!sp) <- p;
    st_stage.(!sp) <- 0;
    incr sp
  in
  let next = ref base in
  push sub p;
  while !sp > 0 do
    let f = !sp - 1 in
    match st_sub.(f).Subtree.build with
    | Subtree.Leaf s ->
      let v = !next in
      incr next;
      decr sp;
      emit_leaf a v s
    | Subtree.Merge { left; right; lengths } ->
      if st_stage.(f) = 0 then begin
        let p = st_p.(f) in
        let pl = Octagon.nearest_point left.Subtree.region p in
        let pr = Octagon.nearest_point right.Subtree.region p in
        let llen, rlen = edge_lengths lengths p pl pr in
        st_pr.(f) <- pr;
        st_llen.(f) <- llen;
        st_rlen.(f) <- rlen;
        st_stage.(f) <- 1;
        push left pl
      end
      else if st_stage.(f) = 1 then begin
        st_left.(f) <- !next - 1;
        st_stage.(f) <- 2;
        push right st_pr.(f)
      end
      else begin
        let l = st_left.(f) and rc = !next - 1 in
        let v = !next in
        incr next;
        decr sp;
        a.Arena.left.(v) <- l;
        a.Arena.right.(v) <- rc;
        a.Arena.parent.(l) <- v;
        a.Arena.parent.(rc) <- v;
        a.Arena.size.(v) <- a.Arena.size.(l) + a.Arena.size.(rc) + 1;
        a.Arena.pos.(v) <- st_p.(f);
        a.Arena.len.(l) <- st_llen.(f);
        a.Arena.len.(rc) <- st_rlen.(f)
      end
  done

(* One worker task of the parallel embedding: a pending subtree, its
   placement point and the start of its (precomputed) arena window. *)
type task = { t_sub : Subtree.t; t_p : Pt.t; t_base : int }

(* Parallel arena fill: walk the top of the plan on the calling domain
   with the exact expressions of [fill_window], but — since a subtree
   with [s] sinks occupies exactly [2s - 1] contiguous slots — every
   prefix node's index and both children's windows are known at visit
   time.  Prefix nodes (the "graft") are therefore emitted immediately;
   pending subtrees become tasks whose disjoint windows the pool's
   domains fill concurrently.  Workers write only inside their window
   (a task's root [len]/[parent] belong to its prefix parent, which the
   caller wrote), so no two domains touch the same array element, and
   every element is computed by the serial expressions from the same
   operands: the arena is bit-identical to the serial fill for any jobs
   count.  The expansion itself is an iterative explicit-stack walk. *)
let embed_parallel pool sched (a : Arena.t) (root : Subtree.t)
    (root_pt : Pt.t) =
  let depth_limit =
    let target = 4 * Par.Pool.jobs pool in
    let d = ref 0 in
    while 1 lsl !d < target do
      incr d
    done;
    !d
  in
  let tasks = ref [] in
  let stack = ref [ (root, root_pt, 0, depth_limit) ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (sub, p, base, depth) :: rest ->
      stack := rest;
      (match sub.Subtree.build with
       | Subtree.Leaf s -> emit_leaf a base s
       | Subtree.Merge _ when depth = 0 ->
         tasks := { t_sub = sub; t_p = p; t_base = base } :: !tasks
       | Subtree.Merge { left; right; lengths } ->
         let pl = Octagon.nearest_point left.Subtree.region p in
         let pr = Octagon.nearest_point right.Subtree.region p in
         let llen, rlen = edge_lengths lengths p pl pr in
         let lsize = (2 * left.Subtree.n_sinks) - 1 in
         let rsize = (2 * right.Subtree.n_sinks) - 1 in
         let l = base + lsize - 1 in
         let rc = base + lsize + rsize - 1 in
         let v = rc + 1 in
         a.Arena.left.(v) <- l;
         a.Arena.right.(v) <- rc;
         a.Arena.parent.(l) <- v;
         a.Arena.parent.(rc) <- v;
         a.Arena.size.(v) <- lsize + rsize + 1;
         a.Arena.pos.(v) <- p;
         a.Arena.len.(l) <- llen;
         a.Arena.len.(rc) <- rlen;
         (* Left on top: tasks and prefix slots are emitted in the
            serial fill's order, though nothing downstream depends on
            it — results land by index, not by gather order. *)
         stack :=
           (left, pl, base, depth - 1)
           :: (right, pr, base + lsize, depth - 1)
           :: !stack)
  done;
  let tasks = Array.of_list (List.rev !tasks) in
  if Array.length tasks = 0 then ()
  else
    let (_ : unit array) =
      Par.Pool.map_chunked pool ~sched ~label:"engine.embed" ~chunk:1
        (fun { t_sub; t_p; t_base } -> fill_window a t_sub t_p ~base:t_base)
        tasks
    in
    ()

let run_arena ?pool ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    (inst : Clocktree.Instance.t) (root : Subtree.t) =
  let n_sinks = root.Subtree.n_sinks in
  let n = (2 * n_sinks) - 1 in
  let root_pt = Octagon.nearest_point root.Subtree.region inst.source in
  let source_len = Pt.dist inst.source root_pt in
  let a =
    {
      Arena.n;
      n_sinks;
      source = inst.source;
      source_len;
      rd = inst.rd;
      params = inst.params;
      left = Array.make n (-1);
      right = Array.make n (-1);
      parent = Array.make n (-1);
      size = Array.make n 1;
      sink = Array.make n (-1);
      group = Array.make n (-1);
      scap = Array.make n 0.;
      pos = Array.make n inst.source;
      len = Array.make n 0.;
    }
  in
  let body () =
    (match pool with
     | Some pool when Par.Pool.jobs pool > 1 ->
       embed_parallel pool sched a root root_pt
     | _ -> fill_window a root root_pt ~base:0);
    (* The root edge is the source wire, exactly as [Arena.of_routed]
       records it. *)
    a.Arena.len.(n - 1) <- source_len;
    a
  in
  if Obs.Trace.enabled trace then
    Obs.Trace.span trace ~cat:"dme.embed" "embed" body
  else body ()

let run ?pool ?trace ?sched inst root =
  Arena.to_routed (run_arena ?pool ?trace ?sched inst root)

(* Executable specification: the original recursive boxed-tree walk,
   kept as the independent reference the arena-direct identity oracle
   and tests compare against.  Goes through [Tree.node], so committed
   lengths are re-checked against child distances.  Recursive — only
   for oracle/test-sized instances; production paths use {!run_arena} /
   {!run}. *)
let run_reference (inst : Clocktree.Instance.t) (root : Subtree.t) =
  let rec go (sub : Subtree.t) (p : Pt.t) =
    match sub.Subtree.build with
    | Subtree.Leaf s -> Tree.Leaf s
    | Subtree.Merge { left; right; lengths } ->
      let pl = Octagon.nearest_point left.Subtree.region p in
      let pr = Octagon.nearest_point right.Subtree.region p in
      let llen, rlen = edge_lengths lengths p pl pr in
      Tree.node p (go left pl) (go right pr) ~llen ~rlen
  in
  let root_pt = Octagon.nearest_point root.Subtree.region inst.source in
  Tree.route inst.source (go root root_pt)
