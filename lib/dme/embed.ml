module Octagon = Geometry.Octagon
module Pt = Geometry.Pt
module Eps = Geometry.Eps
module Tree = Clocktree.Tree

(* Expanded prefix of the embedding: the top few levels are walked on
   the calling domain, leaving an index per pending subtree so worker
   results can be grafted back in input order. *)
type prefix =
  | Done of Tree.t
  | Pending of int
  | Split of {
      p : Pt.t;
      llen : float;
      rlen : float;
      left : prefix;
      right : prefix;
    }

let run ?pool ?(trace = Obs.Trace.null) (inst : Clocktree.Instance.t)
    (root : Subtree.t) =
  let rec go (sub : Subtree.t) (p : Pt.t) =
    match sub.build with
    | Subtree.Leaf s -> Tree.Leaf s
    | Subtree.Merge { left; right; lengths } ->
      let pl = Octagon.nearest_point left.region p in
      let pr = Octagon.nearest_point right.region p in
      let llen, rlen =
        match lengths with
        | Subtree.Committed { ea; eb } ->
          (Float.max ea (Pt.dist p pl), Float.max eb (Pt.dist p pr))
        | Subtree.Split { total; split_lo; split_hi } ->
          let la = Eps.clamp split_lo split_hi (Pt.dist p pl) in
          (Float.max la (Pt.dist p pl), Float.max (total -. la) (Pt.dist p pr))
      in
      Tree.node p (go left pl) (go right pr) ~llen ~rlen
  in
  (* Parallel frontier: expand the top of the plan with the exact
     expressions of [go] until enough independent subtrees exist to feed
     the pool, embed each on a worker ([go] is pure: it only reads the
     frozen merge plan), then graft the results back.  Chunk results are
     gathered in input-index order, so the assembled tree is
     bit-identical to the serial recursion for any jobs count. *)
  let embed_parallel pool sub p =
    let depth =
      let target = 4 * Par.Pool.jobs pool in
      let d = ref 0 in
      while 1 lsl !d < target do
        incr d
      done;
      !d
    in
    let tasks = ref [] in
    let n_tasks = ref 0 in
    let rec expand depth (sub : Subtree.t) (p : Pt.t) =
      match sub.build with
      | Subtree.Leaf s -> Done (Tree.Leaf s)
      | Subtree.Merge _ when depth = 0 ->
        let i = !n_tasks in
        incr n_tasks;
        tasks := (sub, p) :: !tasks;
        Pending i
      | Subtree.Merge { left; right; lengths } ->
        let pl = Octagon.nearest_point left.region p in
        let pr = Octagon.nearest_point right.region p in
        let llen, rlen =
          match lengths with
          | Subtree.Committed { ea; eb } ->
            (Float.max ea (Pt.dist p pl), Float.max eb (Pt.dist p pr))
          | Subtree.Split { total; split_lo; split_hi } ->
            let la = Eps.clamp split_lo split_hi (Pt.dist p pl) in
            ( Float.max la (Pt.dist p pl),
              Float.max (total -. la) (Pt.dist p pr) )
        in
        let l = expand (depth - 1) left pl in
        let r = expand (depth - 1) right pr in
        Split { p; llen; rlen; left = l; right = r }
    in
    let top = expand depth sub p in
    let arr = Array.make (Int.max 1 !n_tasks) (sub, p) in
    List.iteri (fun k t -> arr.(!n_tasks - 1 - k) <- t) !tasks;
    let arr = if !n_tasks = 0 then [||] else arr in
    let results = Par.Pool.map_chunked pool (fun (sub, p) -> go sub p) arr in
    let rec graft = function
      | Done t -> t
      | Pending i -> results.(i)
      | Split { p; llen; rlen; left; right } ->
        Tree.node p (graft left) (graft right) ~llen ~rlen
    in
    graft top
  in
  let root_pt = Octagon.nearest_point root.region inst.source in
  let body () =
    let tree =
      match pool with
      | Some pool when Par.Pool.jobs pool > 1 ->
        embed_parallel pool root root_pt
      | _ -> go root root_pt
    in
    Tree.route inst.source tree
  in
  if Obs.Trace.enabled trace then
    Obs.Trace.span trace ~cat:"dme.embed" "embed" body
  else body ()
