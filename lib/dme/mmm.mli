(** Method-of-Means-and-Medians topology generation with DME embedding —
    the classic top-down alternative to greedy nearest-neighbour merging.

    The sink set is recursively bisected at the median of the bounding
    box's longer dimension; the resulting fixed binary topology is then
    embedded bottom-up with the same merge machinery (and therefore the
    same skew guarantees) as the greedy engine.  Useful as a second
    baseline and for studying how much the merge *order* contributes to
    AST-DME's wins. *)

(** Plan and embed a clock tree on the MMM topology.  Accepts the same
    configuration as {!Engine} (ordering fields are ignored).  With
    [trace] enabled, merges the config into the manifest and wraps
    topology construction in an ["mmm.build"] span. *)
val run :
  ?config:Engine.config -> ?trace:Obs.Trace.t -> Clocktree.Instance.t ->
  Clocktree.Tree.routed * Engine.stats

(** {!run} minus the final [Arena.to_routed]: plan and embed straight
    into the flat post-order arena for the arena-native router
    pipeline. *)
val run_arena :
  ?config:Engine.config -> ?trace:Obs.Trace.t -> Clocktree.Instance.t ->
  Clocktree.Arena.t * Engine.stats
