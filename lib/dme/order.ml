module Octagon = Geometry.Octagon
module Grid_index = Geometry.Grid_index
module Pt = Geometry.Pt

type config = {
  multi_merge : bool;
  merge_fraction : float;
  knn : int;
  delay_order_weight : float;
  incremental : bool;
}

let default =
  {
    multi_merge = true;
    merge_fraction = 0.5;
    knn = 16;
    delay_order_weight = 0.;
    incremental = true;
  }

type 'note coster = {
  session : unit -> (Subtree.t -> Subtree.t -> float) * (unit -> 'note);
  absorb : 'note -> unit;
}

let of_cost cost = { session = (fun () -> (cost, fun () -> ())); absorb = ignore }

type stats = { rounds : int; nn_probes : int; nn_probes_saved : int }

type round_info = {
  round : int;
  active : int;
  probes : int;
  cache_served : int;
  merges : int;
  best_cost : float;
  wall_s : float;
}

let c_probes = Obs.Counter.make "dme.order.nn_probes"
let c_saved = Obs.Counter.make "dme.order.nn_probes_saved"
let c_invalidated = Obs.Counter.make "dme.order.nn_invalidated"
let c_inv_partner = Obs.Counter.make "dme.order.nn_inv_partner_died"
let c_inv_rank = Obs.Counter.make "dme.order.nn_inv_rank_churn"
let c_inv_undercut = Obs.Counter.make "dme.order.nn_inv_undercut"
let c_uncached = Obs.Counter.make "dme.order.nn_uncacheable"
let c_pairs = Obs.Counter.make "dme.order.pairs_ranked"
let c_rounds = Obs.Counter.make "dme.order.rounds"

(* The same unordered pair can be proposed by both endpoints with
   slightly different costs (trial orientation asymmetry); keep only
   the cheapest proposal per pair.  Input: sorted by (i, j, cost).
   Accumulator form: the ranked-pair count of a round equals the active
   subtree count, so Gen.Huge-scale instances would blow the stack under
   the former non-tail recursion. *)
let dedupe_pairs pairs =
  let rec go acc = function
    | ((_, i1, j1) as p) :: (_, i2, j2) :: rest when i1 = i2 && j1 = j2 ->
      go acc (p :: rest)
    | p :: rest -> go (p :: acc) rest
    | [] -> List.rev acc
  in
  go [] pairs

(* A best cost above this is an avoid-infeasible penalty (see Engine):
   a proposal that expensive is invalidated by practically any nearby
   insertion, so it is cheaper to just re-probe its owner every round
   than to cache and churn it. *)
let reach_cap = 1e8

(* What the k-NN scan that produced a proposal promised about entries it
   did not evaluate: [Exhaustive] — there were none (the scan returned
   every eligible entry); [Kth d] — they all lie at center distance >= d
   (the k-th candidate's distance, from {!Grid_index.k_nearest_probe});
   [Opaque] — no bound (the endgame [Grid_index.nearest] fallback), so
   the proposal is never cached. *)
type scan = Exhaustive | Kth of float | Opaque

(* One cached nearest-neighbour proposal: the owner's cheapest partner
   and raw (unbiased) cost, plus the probe-time facts the invalidation
   sweep tests against — the owner's region radius bound [rad] (its L1
   diameter; [Octagon.center] lies inside the region, so no region point
   is farther than that from the center), the partner's center distance
   [pdist] and 1-based rank in the candidate list, and a running count
   of nodes inserted closer than the partner since the probe
   ([rank - 1 + closer] bounds the partner's current grid rank). *)
type proposal = {
  partner : Subtree.t;
  cost : float;
  rad : float;
  pdist : float;
  rank : int;
  mutable closer : int;
}

let run_ranked ?pool ?(trace = Obs.Trace.null) ?on_round
    (inst : Clocktree.Instance.t) config ~(coster : 'note coster) ~merge =
  let n = Clocktree.Instance.n_sinks inst in
  let tracing = Obs.Trace.enabled trace in
  (* Probe costs observed in the absorb phase (main domain): the chosen
     best cost of every executed probe. *)
  let h_cost =
    if tracing then Some (Obs.Trace.histogram trace "order.probe_cost")
    else None
  in
  (* A non-positive knn would make every k-NN query return [] and stall
     the pairing loop below; clamp rather than crash. *)
  let knn = Int.max 1 config.knn in
  let incremental = config.incremental in
  let cell =
    let bbox = Clocktree.Instance.bbox inst in
    Float.max 1. (Octagon.diameter bbox /. Float.max 1. (Float.sqrt (float_of_int n)))
  in
  let active : (int, Subtree.t) Hashtbl.t = Hashtbl.create (2 * n) in
  let grid : Subtree.t Grid_index.t = Grid_index.create ~cell in
  let centers : (int, Pt.t) Hashtbl.t = Hashtbl.create (2 * n) in
  (* Proposal cache: a subtree id is "dirty" exactly when it has no
     entry here.  Invalidation removes entries; merged subtrees drop
     theirs in [delete]; fresh nodes start without one. *)
  let proposals : (int, proposal) Hashtbl.t = Hashtbl.create (2 * n) in
  (* Subtrees inserted by the current round's commits, swept against the
     surviving proposals at the start of the next round. *)
  let inserted : Subtree.t list ref = ref [] in
  let insert (s : Subtree.t) =
    let c = Octagon.center s.region in
    Hashtbl.replace active s.id s;
    Hashtbl.replace centers s.id c;
    Grid_index.add grid ~id:s.id c s
  in
  let delete id =
    (match Hashtbl.find_opt centers id with
     | Some c -> Grid_index.remove grid ~id c
     | None -> ());
    Hashtbl.remove active id;
    Hashtbl.remove centers id;
    Hashtbl.remove proposals id
  in
  Array.iter (fun s -> insert (Subtree.leaf s)) inst.sinks;
  let next_id = ref n in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Cheapest merge partner of [s] among the grid candidates (grid
     ranking is by representative point, so probe several candidates and
     refine with the true merging cost).  Runs on worker domains during
     a parallel round: [active], [centers] and [grid] are only read, and
     the (cost, lowest-id) argmin makes the winner independent of
     candidate evaluation order.  Also returns the scan's exclusion
     bound for the proposal cache. *)
  let nearest_neighbor ~cost (s : Subtree.t) =
    Obs.Counter.incr c_probes;
    let c = Hashtbl.find centers s.id in
    let skip id = id = s.id in
    let candidates, scan =
      match Grid_index.k_nearest_probe grid ~skip c knn with
      | [], _ ->
        (* Endgame guard: with two or more active subtrees a probe must
           yield a partner.  The k-NN query can only come back empty for
           degenerate indices; fall back to the exhaustive nearest scan
           so the 2-subtree endgame can never report "no partner". *)
        (match Grid_index.nearest grid ~skip c with
         | Some e -> ([ e ], Opaque)
         | None -> ([], Opaque))
      | cs, Some kth -> (cs, Kth kth)
      | cs, None -> (cs, Exhaustive)
    in
    let best =
      List.fold_left
        (fun best (_, _, (t : Subtree.t)) ->
          let d = cost s t in
          match best with
          | Some ((bt : Subtree.t), bd)
            when bd < d || (bd = d && bt.id < t.id) ->
            best
          | _ -> Some (t, d))
        None candidates
    in
    (best, scan, candidates)
  in
  (* Deep subtrees have small delay targets; merging shallow pairs first
     (Chaturvedi-Hu) keeps depths homogeneous and avoids late merges that
     must snake to match a buried group's delay. *)
  let biased (a : Subtree.t) (b : Subtree.t) d =
    let depth_bias =
      if config.delay_order_weight = 0. then 0.
      else
        let ha = Subtree.delay_hull a and hb = Subtree.delay_hull b in
        config.delay_order_weight *. ((ha.hi +. hb.hi) /. 2.)
    in
    d +. depth_bias
  in
  (* One probe = one coster session: the returned note carries whatever
     side results (e.g. freshly run trial merges) the cost function
     produced, to be absorbed on the main domain in snapshot order. *)
  let probe (s : Subtree.t) =
    (* Runs on worker domains during parallel rounds: the instant lands
       in the emitting domain's own trace buffer. *)
    if tracing then
      Obs.Trace.instant trace ~cat:"dme.order"
        ~args:[ ("subtree", Obs.Json.Int s.id) ]
        "probe";
    let cost, finish = coster.session () in
    let best = nearest_neighbor ~cost s in
    (best, finish ())
  in
  let snapshot () =
    let arr =
      Array.of_list (Hashtbl.fold (fun _ s acc -> s :: acc) active [])
    in
    Array.sort
      (fun (a : Subtree.t) (b : Subtree.t) -> Int.compare a.id b.id)
      arr;
    arr
  in
  let invalidate id =
    if Hashtbl.mem proposals id then begin
      Obs.Counter.incr c_invalidated;
      Hashtbl.remove proposals id
    end
  in
  (* Dirty-set invalidation, run at the start of each round against the
     exact population a from-scratch probe would see.  A cached proposal
     (p, B) of owner [s] is reused only if it is provably what a fresh
     probe would return, i.e. the argmin by (cost, lowest id) over the
     current k-NN candidate set is still (p, B).  The argument splits
     over where a fresh probe's candidate could come from:

     - A candidate the original probe evaluated: its cost is a pure
       function of the immutable subtree pair, so it still loses to
       (B, p.id).

     - A node inserted since (a committed merge's node [m]): handled by
       the per-insertion sweep below.  [m] undercuts [B] only if
       [Octagon.dist s.region m.region < B] — the coster contract
       [cost >= region distance] plus [m.id > p.id] losing equal-cost
       ties makes the strict test exact — and [m] can evict [p] from the
       k-NN set only by outranking it.  Grid candidate order is (center
       distance, bucket arrival): an [m] strictly farther than [pdist]
       ranks after [p]; an exact center-distance tie is invalidated
       outright; and an insertion reshuffling bucket arrival inside
       [p]'s cell is harmless because caching refused any proposal whose
       partner had a same-cell distance tie (arrival across different
       cells is fixed by ring-scan geometry).  Insertions closer than
       [pdist] shift [p]'s rank by one each; [rank - 1 + closer < knn]
       keeps [p] inside the k-NN set, so the proposal dies only when
       that headroom runs out, not at the first nearby insertion.  All
       tests are against immutable quantities, so one sweep the round
       after the insertion covers the proposal's whole lifetime.

     - A pre-existing node the probe never evaluated, promoted into the
       k-NN set as deletions push the k-th boundary outward: it lies at
       center distance >= the probe's exclusion bound
       ({!Grid_index.k_nearest_probe}), which caching requires to exceed
       [pdist] strictly — so it ranks after [p] and can never evict it —
       and the cache-time undercut scan proved its region distance
       exceeds [B], so its cost loses even as a k-NN member.  Regions
       are immutable and deletions only shrink the pre-existing
       population, so that cache-time proof needs no per-round
       re-checking; only insertions (swept above) can create new
       undercut risks.

     - [p] itself must still be alive: the partner-death rule.

     The surviving proposal is therefore exactly the fresh probe's
     answer — the routed tree, delays and wirelength are bit-identical
     with incremental ranking on or off.  What is NOT replayed is the
     skipped probes' side work: their coster sessions never run, so
     engine-side trial counters drop below the from-scratch run's.  That
     saving is the point; see DESIGN.md section 10.  The classic
     candidate-list-exact rule (dirty when any candidate of the list
     died) is also sound but measurably useless under multi-merge — each
     round consumes half the active set, so some candidate of nearly
     every survivor dies (measured: 0 of 1083 probes saved on r1). *)
  let invalidate_stale ~alive_max_rad =
    let dead_partner =
      Hashtbl.fold
        (fun oid pr acc ->
          if Hashtbl.mem active pr.partner.id then acc else oid :: acc)
        proposals []
    in
    List.iter
      (fun oid ->
        Obs.Counter.incr c_inv_partner;
        invalidate oid)
      dead_partner;
    (* Collection radius: an owner failing any exact test below has its
       center within [B + rad + rad_m] (undercut, via the triangle
       inequality through both region radii) or [pdist
       <= B + rad + rad_p] (rank churn) of [m]'s center.  [reach] bounds
       every surviving cached [B + rad] — recomputed per round from the
       live table, so late-game giants whose proposals already died do
       not inflate earlier sweeps — while [alive_max_rad] bounds the
       radius of [m] and of any live partner.  Over-collection costs
       scan time only — the per-owner tests are exact. *)
    let reach =
      Hashtbl.fold
        (fun _ pr acc -> Float.max acc (pr.cost +. pr.rad))
        proposals 0.
    in
    List.iter
      (fun (m : Subtree.t) ->
        let cm = Hashtbl.find centers m.id in
        let collect = reach +. alive_max_rad +. cell in
        Grid_index.within grid cm collect
        |> List.iter (fun (oid, oc, (owner : Subtree.t)) ->
               match Hashtbl.find_opt proposals oid with
               | None -> ()
               | Some pr ->
                 if oid <> m.id then begin
                   if Octagon.dist owner.region m.region < pr.cost then begin
                     Obs.Counter.incr c_inv_undercut;
                     invalidate oid
                   end
                   else
                     let dm = Pt.dist oc cm in
                     if dm = pr.pdist then begin
                       (* [m] ties the partner's center distance; which
                          of the two a fresh scan ranks first hangs on
                          arrival order, so be conservative. *)
                       Obs.Counter.incr c_inv_rank;
                       invalidate oid
                     end
                     else if dm < pr.pdist then begin
                       pr.closer <- pr.closer + 1;
                       if pr.rank - 1 + pr.closer >= knn then begin
                         Obs.Counter.incr c_inv_rank;
                         invalidate oid
                       end
                     end
                 end))
      !inserted;
    inserted := []
  in
  let rounds = ref 0 in
  let reprobed = ref 0 in
  let saved = ref 0 in
  let rec loop () =
    let count = Hashtbl.length active in
    if count = 1 then
      match Hashtbl.fold (fun _ s _ -> Some s) active None with
      | Some s -> s
      | None -> assert false
    else begin
      incr rounds;
      Obs.Counter.incr c_rounds;
      (* Wall time is read only when a round observer is installed, so
         the untraced run does not even touch the clock per round. *)
      let t0 = if on_round <> None then Obs.Timer.now () else 0. in
      let saved0 = !saved in
      (* Rank in three strictly separated phases so the routed tree is
         bit-identical for any jobs count: (1) probe every stale active
         subtree against the frozen grid state — in parallel chunks when
         a pool is given — while clean subtrees reuse their cached
         proposal; (2) absorb the probes' side results on this domain in
         snapshot (ascending-id) order; (3) sort, dedupe and commit
         merges serially.  With [incremental] off every subtree counts
         as stale and the round degenerates to the from-scratch scan. *)
      let round_body () =
        let snap = snapshot () in
        (* Largest region radius among this round's population: bounds the
           unknown region radius of any node a triangle-inequality ball
           must cover, both in the invalidation sweep and in the
           cache-time undercut scan. *)
        let alive_max_rad =
          if not incremental then 0.
          else
            Array.fold_left
              (fun m (s : Subtree.t) -> Float.max m (Octagon.diameter s.region))
              0. snap
        in
        if incremental then invalidate_stale ~alive_max_rad;
        let stale (s : Subtree.t) =
          (not incremental) || not (Hashtbl.mem proposals s.id)
        in
        let todo =
          if incremental then
            Array.of_seq (Seq.filter stale (Array.to_seq snap))
          else snap
        in
        let probes =
          let run_probes () =
            match pool with
            | Some pool -> Par.Pool.map_chunked pool probe todo
            | None -> Array.map probe todo
          in
          if tracing then
            Obs.Trace.span trace ~cat:"dme.order"
              ~args:[ ("stale", Obs.Json.Int (Array.length todo)) ]
              "probe_phase" run_probes
          else run_probes ()
        in
        reprobed := !reprobed + Array.length todo;
        let pairs = ref [] in
        let ti = ref 0 in
        Array.iter
          (fun (s : Subtree.t) ->
            let best =
              if stale s then begin
                let (best, scan, cands), note = probes.(!ti) in
                incr ti;
                coster.absorb note;
                (match (h_cost, best) with
                 | Some h, Some (_, d) -> Obs.Histogram.observe h d
                 | _ -> ());
                if incremental then
                  (match best with
                   | Some (t, d) when d < reach_cap ->
                     let c_s = Hashtbl.find centers s.id in
                     let c_t = Hashtbl.find centers t.id in
                     let pdist = Pt.dist c_s c_t in
                     let rad = Octagon.diameter s.region in
                     (* Cache-time undercut scan: the proposal is cached
                        only if every alive node the probe did not
                        evaluate has region distance > B from the owner,
                        so no later promotion into the k-NN set can beat
                        or tie the cached best (ties are excluded because
                        a pre-existing node may hold a lower id than the
                        partner and would win one).  Any such node's
                        center lies within [B + rad + alive_max_rad] of
                        the owner's; regions are immutable, so this holds
                        for the proposal's whole life and only insertions
                        (swept each round) can break it. *)
                     let cacheable =
                       (match scan with
                        | Exhaustive -> true
                        | Kth dk -> pdist < dk
                        | Opaque -> false)
                       (* Same-cell tie guard: a candidate in the
                          partner's grid cell at exactly the partner's
                          distance ranks against it by bucket arrival
                          order, which any later insertion into that cell
                          may reshuffle (Hashtbl resize).  Cross-cell
                          ties rank by ring-scan geometry and entries the
                          scan excluded lie at distance >= dk > pdist, so
                          only candidates in the partner's own cell can
                          flip. *)
                       && (let pcell = Grid_index.cell_of grid c_t in
                           not
                             (List.exists
                                (fun (cid, cpt, _) ->
                                  cid <> t.id
                                  && Pt.dist c_s cpt = pdist
                                  && Grid_index.cell_of grid cpt = pcell)
                                cands))
                       &&
                       let ball = d +. rad +. alive_max_rad +. cell in
                       Grid_index.within grid c_s ball
                       |> List.for_all (fun (qid, _, (q : Subtree.t)) ->
                              qid = s.id
                              || List.exists
                                   (fun (cid, _, _) -> cid = qid)
                                   cands
                              || Octagon.dist s.region q.region > d)
                     in
                     if cacheable then begin
                       let rank =
                         let rec go i = function
                           | (cid, _, _) :: rest ->
                             if cid = t.id then i else go (i + 1) rest
                           | [] -> assert false
                         in
                         go 1 cands
                       in
                       Hashtbl.replace proposals s.id
                         { partner = t; cost = d; rad; pdist; rank; closer = 0 }
                     end
                     else Obs.Counter.incr c_uncached
                   | _ -> Obs.Counter.incr c_uncached);
                best
              end
              else begin
                let prop = Hashtbl.find proposals s.id in
                incr saved;
                Obs.Counter.incr c_saved;
                Some (prop.partner, prop.cost)
              end
            in
            match best with
            | None -> ()
            | Some ((t : Subtree.t), d) ->
              let i = Int.min s.Subtree.id t.id and j = Int.max s.Subtree.id t.id in
              pairs := (biased s t d, i, j) :: !pairs)
          snap;
        let pairs =
          List.sort
            (fun (c1, i1, j1) (c2, i2, j2) ->
              match Int.compare i1 i2 with
              | 0 ->
                (match Int.compare j1 j2 with
                 | 0 -> Float.compare c1 c2
                 | c -> c)
              | c -> c)
            !pairs
          |> dedupe_pairs
          |> List.sort (fun (c1, i1, j1) (c2, i2, j2) ->
                 match Float.compare c1 c2 with
                 | 0 ->
                   (match Int.compare i1 i2 with 0 -> Int.compare j1 j2 | c -> c)
                 | c -> c)
        in
        Obs.Counter.add c_pairs (List.length pairs);
        let limit =
          if config.multi_merge then
            Int.max 1
              (int_of_float (config.merge_fraction *. float_of_int count /. 2.))
          else 1
        in
        let used = Hashtbl.create 64 in
        let merged = ref 0 in
        let best_cost = ref Float.infinity in
        let commit i j a b =
          let s = merge ~id:(fresh_id ()) a b in
          delete i;
          delete j;
          insert s;
          if incremental then inserted := s :: !inserted
        in
        let commit_phase () =
          List.iter
            (fun (c, i, j) ->
              if
                !merged < limit
                && (not (Hashtbl.mem used i))
                && not (Hashtbl.mem used j)
              then begin
                match (Hashtbl.find_opt active i, Hashtbl.find_opt active j) with
                | Some a, Some b ->
                  Hashtbl.replace used i ();
                  Hashtbl.replace used j ();
                  commit i j a b;
                  best_cost := Float.min !best_cost c;
                  incr merged
                | _ -> ()
              end)
            pairs;
          (* Degenerate safeguard: grid candidates always yield at least one
             pair when two or more subtrees are active.  Should that ever
             fail, merge the two lowest-id survivors directly rather than
             spinning forever. *)
          if !merged = 0 then begin
            let ids = Hashtbl.fold (fun id _ acc -> id :: acc) active [] in
            match List.sort Int.compare ids with
            | i :: j :: _ ->
              let a = Hashtbl.find active i and b = Hashtbl.find active j in
              commit i j a b;
              incr merged
            | _ -> assert false
          end
        in
        if tracing then
          Obs.Trace.span trace ~cat:"dme.order"
            ~args:[ ("candidates", Obs.Json.Int (List.length pairs)) ]
            "commit_phase" commit_phase
        else commit_phase ();
        (Array.length todo, !merged, !best_cost)
        in
      let probes_run, merges_done, best_cost =
        if tracing then
          Obs.Trace.span trace ~cat:"dme.order"
            ~args:
              [ ("round", Obs.Json.Int !rounds); ("active", Obs.Json.Int count) ]
            "round" round_body
        else round_body ()
      in
      (match on_round with
       | None -> ()
       | Some f ->
         f
           {
             round = !rounds;
             active = count;
             probes = probes_run;
             cache_served = !saved - saved0;
             merges = merges_done;
             best_cost;
             wall_s = Float.max 0. (Obs.Timer.now () -. t0);
           });
      loop ()
    end
  in
  let root = loop () in
  (root, { rounds = !rounds; nn_probes = !reprobed; nn_probes_saved = !saved })

let run inst config ~cost ~merge =
  run_ranked inst config ~coster:(of_cost cost) ~merge
