module Octagon = Geometry.Octagon
module Grid_index = Geometry.Grid_index
module Pt = Geometry.Pt

type config = {
  multi_merge : bool;
  merge_fraction : float;
  knn : int;
  delay_order_weight : float;
}

let default =
  { multi_merge = true; merge_fraction = 0.5; knn = 16; delay_order_weight = 0. }

type 'note coster = {
  session : unit -> (Subtree.t -> Subtree.t -> float) * (unit -> 'note);
  absorb : 'note -> unit;
}

let of_cost cost = { session = (fun () -> (cost, fun () -> ())); absorb = ignore }

let c_probes = Obs.Counter.make "dme.order.nn_probes"
let c_pairs = Obs.Counter.make "dme.order.pairs_ranked"
let c_rounds = Obs.Counter.make "dme.order.rounds"

let run_ranked ?pool (inst : Clocktree.Instance.t) config
    ~(coster : 'note coster) ~merge =
  let n = Clocktree.Instance.n_sinks inst in
  (* A non-positive knn would make every k-NN query return [] and stall
     the pairing loop below; clamp rather than crash. *)
  let knn = Int.max 1 config.knn in
  let cell =
    let bbox = Clocktree.Instance.bbox inst in
    Float.max 1. (Octagon.diameter bbox /. Float.max 1. (Float.sqrt (float_of_int n)))
  in
  let active : (int, Subtree.t) Hashtbl.t = Hashtbl.create (2 * n) in
  let grid : Subtree.t Grid_index.t = Grid_index.create ~cell in
  let centers : (int, Pt.t) Hashtbl.t = Hashtbl.create (2 * n) in
  let insert (s : Subtree.t) =
    let c = Octagon.center s.region in
    Hashtbl.replace active s.id s;
    Hashtbl.replace centers s.id c;
    Grid_index.add grid ~id:s.id c s
  in
  let delete id =
    (match Hashtbl.find_opt centers id with
     | Some c -> Grid_index.remove grid ~id c
     | None -> ());
    Hashtbl.remove active id;
    Hashtbl.remove centers id
  in
  Array.iter (fun s -> insert (Subtree.leaf s)) inst.sinks;
  let next_id = ref n in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Cheapest merge partner of [s] among the grid candidates (grid
     ranking is by representative point, so probe several candidates and
     refine with the true merging cost).  Runs on worker domains during
     a parallel round: [active], [centers] and [grid] are only read, and
     the candidate order plus the explicit lowest-id tie-break make the
     winner independent of evaluation order. *)
  let nearest_neighbor ~cost (s : Subtree.t) =
    Obs.Counter.incr c_probes;
    let c = Hashtbl.find centers s.id in
    let skip id = id = s.id in
    let candidates = Grid_index.k_nearest grid ~skip c knn in
    let candidates =
      (* Endgame guard: with two or more active subtrees a probe must
         yield a partner.  The k-NN query can only come back empty for
         degenerate indices; fall back to the exhaustive nearest scan so
         the 2-subtree endgame can never report "no partner". *)
      match candidates with
      | [] ->
        (match Grid_index.nearest grid ~skip c with
         | Some e -> [ e ]
         | None -> [])
      | cs -> cs
    in
    List.fold_left
      (fun best (_, _, (t : Subtree.t)) ->
        let d = cost s t in
        match best with
        | Some ((bt : Subtree.t), bd)
          when bd < d || (bd = d && bt.id < t.id) ->
          best
        | _ -> Some (t, d))
      None candidates
  in
  (* Deep subtrees have small delay targets; merging shallow pairs first
     (Chaturvedi-Hu) keeps depths homogeneous and avoids late merges that
     must snake to match a buried group's delay. *)
  let biased (a : Subtree.t) (b : Subtree.t) d =
    let depth_bias =
      if config.delay_order_weight = 0. then 0.
      else
        let ha = Subtree.delay_hull a and hb = Subtree.delay_hull b in
        config.delay_order_weight *. ((ha.hi +. hb.hi) /. 2.)
    in
    d +. depth_bias
  in
  (* One probe = one coster session: the returned note carries whatever
     side results (e.g. freshly run trial merges) the cost function
     produced, to be absorbed on the main domain in snapshot order. *)
  let probe (s : Subtree.t) =
    let cost, finish = coster.session () in
    let best = nearest_neighbor ~cost s in
    (best, finish ())
  in
  let snapshot () =
    let arr =
      Array.of_list (Hashtbl.fold (fun _ s acc -> s :: acc) active [])
    in
    Array.sort
      (fun (a : Subtree.t) (b : Subtree.t) -> Int.compare a.id b.id)
      arr;
    arr
  in
  (* The same unordered pair can be proposed by both endpoints with
     slightly different costs (trial orientation asymmetry); keep only
     the cheapest proposal per pair.  Input: sorted by (i, j, cost). *)
  let rec dedupe = function
    | ((_, i1, j1) as p) :: (_, i2, j2) :: rest when i1 = i2 && j1 = j2 ->
      dedupe (p :: rest)
    | p :: rest -> p :: dedupe rest
    | [] -> []
  in
  let rounds = ref 0 in
  let rec loop () =
    let count = Hashtbl.length active in
    if count = 1 then
      match Hashtbl.fold (fun _ s _ -> Some s) active None with
      | Some s -> s
      | None -> assert false
    else begin
      incr rounds;
      Obs.Counter.incr c_rounds;
      (* Rank in three strictly separated phases so the routed tree is
         bit-identical for any jobs count: (1) probe every active
         subtree against the frozen grid/cache state — in parallel
         chunks when a pool is given; (2) absorb the probes' side
         results on this domain in snapshot (ascending-id) order;
         (3) sort, dedupe and commit merges serially. *)
      let snap = snapshot () in
      let probes =
        match pool with
        | Some pool -> Par.Pool.map_chunked pool probe snap
        | None -> Array.map probe snap
      in
      let pairs = ref [] in
      Array.iteri
        (fun idx (best, note) ->
          coster.absorb note;
          match best with
          | None -> ()
          | Some ((t : Subtree.t), d) ->
            let s = snap.(idx) in
            let i = Int.min s.Subtree.id t.id and j = Int.max s.Subtree.id t.id in
            pairs := (biased s t d, i, j) :: !pairs)
        probes;
      let pairs =
        List.sort
          (fun (c1, i1, j1) (c2, i2, j2) ->
            match Int.compare i1 i2 with
            | 0 ->
              (match Int.compare j1 j2 with
               | 0 -> Float.compare c1 c2
               | c -> c)
            | c -> c)
          !pairs
        |> dedupe
        |> List.sort (fun (c1, i1, j1) (c2, i2, j2) ->
               match Float.compare c1 c2 with
               | 0 ->
                 (match Int.compare i1 i2 with 0 -> Int.compare j1 j2 | c -> c)
               | c -> c)
      in
      Obs.Counter.add c_pairs (List.length pairs);
      let limit =
        if config.multi_merge then
          Int.max 1
            (int_of_float (config.merge_fraction *. float_of_int count /. 2.))
        else 1
      in
      let used = Hashtbl.create 64 in
      let merged = ref 0 in
      List.iter
        (fun (_, i, j) ->
          if
            !merged < limit
            && (not (Hashtbl.mem used i))
            && not (Hashtbl.mem used j)
          then begin
            match (Hashtbl.find_opt active i, Hashtbl.find_opt active j) with
            | Some a, Some b ->
              Hashtbl.replace used i ();
              Hashtbl.replace used j ();
              let s = merge ~id:(fresh_id ()) a b in
              delete i;
              delete j;
              insert s;
              incr merged
            | _ -> ()
          end)
        pairs;
      (* Degenerate safeguard: grid candidates always yield at least one
         pair when two or more subtrees are active.  Should that ever
         fail, merge the two lowest-id survivors directly rather than
         spinning forever. *)
      if !merged = 0 then begin
        let ids = Hashtbl.fold (fun id _ acc -> id :: acc) active [] in
        match List.sort Int.compare ids with
        | i :: j :: _ ->
          let a = Hashtbl.find active i and b = Hashtbl.find active j in
          let s = merge ~id:(fresh_id ()) a b in
          delete i;
          delete j;
          insert s
        | _ -> assert false
      end;
      loop ()
    end
  in
  let root = loop () in
  (root, !rounds)

let run inst config ~cost ~merge =
  run_ranked inst config ~coster:(of_cost cost) ~merge
