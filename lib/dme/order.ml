module Octagon = Geometry.Octagon
module Octslab = Geometry.Octslab
module Grid_index = Geometry.Grid_index
module Pt = Geometry.Pt
module Interval = Geometry.Interval
module IntMap = Subtree.IntMap

type config = {
  multi_merge : bool;
  merge_fraction : float;
  knn : int;
  delay_order_weight : float;
  incremental : bool;
}

let default =
  {
    multi_merge = true;
    merge_fraction = 0.5;
    knn = 16;
    delay_order_weight = 0.;
    incremental = true;
  }

type 'note coster = {
  session : unit -> (dist:float -> Subtree.t -> Subtree.t -> float) * (unit -> 'note);
  absorb : 'note -> unit;
}

type 'merge merger = {
  compute : id:int -> Subtree.t -> Subtree.t -> 'merge;
  install : 'merge -> Subtree.t;
}

let of_cost cost =
  {
    session = (fun () -> ((fun ~dist:_ a b -> cost a b), fun () -> ()));
    absorb = ignore;
  }

let of_merge merge =
  {
    compute = (fun ~id a b -> (id, a, b));
    install = (fun (id, a, b) -> merge ~id a b);
  }

type stats = { rounds : int; nn_probes : int; nn_probes_saved : int }

type round_info = {
  round : int;
  active : int;
  probes : int;
  cache_served : int;
  merges : int;
  best_cost : float;
  wall_s : float;
}

let c_probes = Obs.Counter.make "dme.order.nn_probes"
let c_saved = Obs.Counter.make "dme.order.nn_probes_saved"
let c_invalidated = Obs.Counter.make "dme.order.nn_invalidated"
let c_inv_partner = Obs.Counter.make "dme.order.nn_inv_partner_died"
let c_inv_rank = Obs.Counter.make "dme.order.nn_inv_rank_churn"
let c_inv_undercut = Obs.Counter.make "dme.order.nn_inv_undercut"
let c_uncached = Obs.Counter.make "dme.order.nn_uncacheable"
let c_pairs = Obs.Counter.make "dme.order.pairs_ranked"
let c_rounds = Obs.Counter.make "dme.order.rounds"

(* The same unordered pair can be proposed by both endpoints with
   slightly different costs (trial orientation asymmetry); keep only
   the cheapest proposal per pair.  Input: sorted by (i, j, cost).
   Accumulator form: the ranked-pair count of a round equals the active
   subtree count, so Gen.Huge-scale instances would blow the stack under
   the former non-tail recursion. *)
let dedupe_pairs pairs =
  let rec go acc = function
    | ((_, i1, j1) as p) :: (_, i2, j2) :: rest when i1 = i2 && j1 = j2 ->
      go acc (p :: rest)
    | p :: rest -> go (p :: acc) rest
    | [] -> List.rev acc
  in
  go [] pairs

(* A best cost at or above [reach_cap inst] is an avoid-infeasible
   penalty (see Engine, 1e9 x the instance extent): a proposal that
   expensive is invalidated by practically any nearby insertion, so it
   is cheaper to just re-probe its owner every round than to cache and
   churn it.  Extent-relative like the penalty itself, so rescaled
   layouts make identical caching decisions; a zero-extent instance
   caches nothing (harmless — such instances are degenerate and tiny). *)
let reach_cap inst =
  1e8 *. Octagon.diameter (Clocktree.Instance.bbox inst)

(* What the k-NN scan that produced a proposal promised about entries it
   did not evaluate: [Exhaustive] — there were none (the scan returned
   every eligible entry); [Kth d] — they all lie at center distance >= d
   (the k-th candidate's distance, from {!Grid_index.k_nearest_probe});
   [Opaque] — no bound (the endgame [Grid_index.nearest] fallback), so
   the proposal is never cached. *)
type scan = Exhaustive | Kth of float | Opaque

(* Membership of [qid] in a candidate list, as a top-level function: the
   undercut ball scan asks this for every entry it visits, and a
   [List.exists] literal there would allocate a closure per visited
   entry. *)
let rec mem_cand qid = function
  | (cid, _, _) :: rest -> cid = qid || mem_cand qid rest
  | [] -> false

let run_ranked ?pool ?(trace = Obs.Trace.null) ?(sched = Obs.Sched.null)
    ?on_round ?leaves (inst : Clocktree.Instance.t) config
    ~(coster : 'note coster) ~(merger : 'merge merger) =
  (* The initial population: the instance's sink leaves by default, or an
     explicit subtree array (the clustered router's region roots).  The
     arena is indexed by subtree id, so explicit leaves must carry dense
     ids [0 .. n-1] — the same invariant sink leaves satisfy. *)
  let leaves =
    match leaves with
    | None -> Array.map Subtree.leaf inst.Clocktree.Instance.sinks
    | Some ls ->
      Array.iteri
        (fun i (s : Subtree.t) ->
          if s.id <> i then
            invalid_arg "Order.run_ranked: leaf subtree ids must be dense")
        ls;
      ls
  in
  let n = Array.length leaves in
  let tracing = Obs.Trace.enabled trace in
  (* Probe costs observed in the absorb phase (main domain): the chosen
     best cost of every executed probe. *)
  let h_cost =
    if tracing then Some (Obs.Trace.histogram trace "order.probe_cost")
    else None
  in
  (* A non-positive knn would make every k-NN query return [] and stall
     the pairing loop below; clamp rather than crash. *)
  let knn = Int.max 1 config.knn in
  let incremental = config.incremental in
  let reach_cap = reach_cap inst in
  let cell =
    let d = Octagon.diameter (Clocktree.Instance.bbox inst) in
    let raw = d /. Float.sqrt (float_of_int (Int.max 1 n)) in
    (* The floor must be relative to the instance's extent, not the
       absolute 1.0 layout unit it used to be: a unit-square (or any
       sub-unit) instance would collapse into a single grid cell and
       degrade every k-NN query to a full scan, making ranking cost — and
       the probe/visit counters — depend on coordinate scale.  [Eps.tol]
       absolutely and [Eps.tol * d] relatively keep the cell positive for
       degenerate (single-point) instances without distorting real
       ones. *)
    Float.max (Float.max Geometry.Eps.tol (Geometry.Eps.tol *. d)) raw
  in
  (* Arena: every structure the ranking loop reads per candidate is a
     flat array indexed by subtree id.  Ids are dense — [n] leaves plus
     at most [n - 1] merges — so [2 n] slots cover the whole run and
     nothing on the probe path chases a hashtable or boxes a float.
     [slab] mirrors each alive subtree's region bounds (Octslab.dist is
     bit-identical to Octagon.dist); [cx]/[cy] its center; [hull_hi] the
     upper end of its delay hull (the only part delay biasing reads).
     Slots of merged-away ids go stale rather than being cleared — the
     loop only ever indexes ids of currently alive subtrees. *)
  let cap_ids = Int.max 2 (2 * n) in
  let node : Subtree.t option array = Array.make cap_ids None in
  let n_active = ref 0 in
  let slab = Octslab.create cap_ids in
  let cx = Float.Array.make cap_ids Float.nan in
  let cy = Float.Array.make cap_ids Float.nan in
  let hull_hi = Float.Array.make cap_ids Float.nan in
  (* Proposal cache, SoA: a subtree id is "dirty" exactly when its
     [prop_partner] slot is negative.  Invalidation writes -1; merged
     subtrees drop theirs in [delete]; fresh nodes start without one.
     The remaining slots hold the owner's cheapest raw cost, its region
     radius bound [rad] (L1 diameter; [Octagon.center] lies inside the
     region, so no region point is farther than that from the center),
     the partner's center distance [pdist] and 1-based candidate rank,
     and a running count of nodes inserted closer than the partner since
     the probe ([rank - 1 + closer] bounds the partner's current grid
     rank). *)
  let prop_partner = Array.make cap_ids (-1) in
  let prop_cost = Float.Array.make cap_ids Float.nan in
  let prop_rad = Float.Array.make cap_ids Float.nan in
  let prop_pdist = Float.Array.make cap_ids Float.nan in
  let prop_rank = Array.make cap_ids 0 in
  let prop_closer = Array.make cap_ids 0 in
  let grid : Subtree.t Grid_index.t = Grid_index.create ~cell in
  (* Ids inserted by the current round's commits, swept against the
     surviving proposals at the start of the next round. *)
  let inserted : int list ref = ref [] in
  let insert (s : Subtree.t) =
    let c = Octagon.center s.region in
    node.(s.id) <- Some s;
    incr n_active;
    Octslab.set slab s.id s.region;
    Float.Array.set cx s.id c.Pt.x;
    Float.Array.set cy s.id c.Pt.y;
    if config.delay_order_weight <> 0. then
      Float.Array.set hull_hi s.id
        (IntMap.fold
           (fun _ (iv : Interval.t) acc -> Float.max acc iv.hi)
           s.delay Float.neg_infinity);
    Grid_index.add grid ~id:s.id c s
  in
  let center_of id = Pt.make (Float.Array.get cx id) (Float.Array.get cy id) in
  let delete id =
    if node.(id) <> None then begin
      Grid_index.remove grid ~id (center_of id);
      node.(id) <- None;
      decr n_active
    end;
    prop_partner.(id) <- -1
  in
  Array.iter insert leaves;
  let next_id = ref n in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Cheapest merge partner of [s] among the grid candidates (grid
     ranking is by representative point, so probe several candidates and
     refine with the true merging cost).  Runs on worker domains during
     a parallel round: the arena, [grid] and [slab] are only read, and
     the (cost, lowest-id) argmin makes the winner independent of
     candidate evaluation order.  Also returns the scan's exclusion
     bound for the proposal cache. *)
  let nearest_neighbor ~cost (s : Subtree.t) =
    Obs.Counter.incr c_probes;
    let c = center_of s.id in
    let skip id = id = s.id in
    let candidates, scan =
      match Grid_index.k_nearest_probe grid ~skip c knn with
      | [], _ ->
        (* Endgame guard: with two or more active subtrees a probe must
           yield a partner.  The k-NN query can only come back empty for
           degenerate indices; fall back to the exhaustive nearest scan
           so the 2-subtree endgame can never report "no partner". *)
        (match Grid_index.nearest grid ~skip c with
         | Some e -> ([ e ], Opaque)
         | None -> ([], Opaque))
      | cs, Some kth -> (cs, Kth kth)
      | cs, None -> (cs, Exhaustive)
    in
    let best =
      List.fold_left
        (fun best (_, _, (t : Subtree.t)) ->
          let d = cost ~dist:(Octslab.dist slab s.id t.id) s t in
          match best with
          | Some ((bt : Subtree.t), bd)
            when bd < d || (bd = d && bt.id < t.id) ->
            best
          | _ -> Some (t, d))
        None candidates
    in
    (best, scan, candidates)
  in
  (* Deep subtrees have small delay targets; merging shallow pairs first
     (Chaturvedi-Hu) keeps depths homogeneous and avoids late merges that
     must snake to match a buried group's delay.  [hull_hi] is filled at
     insertion by the same ascending max fold [Subtree.delay_hull] runs,
     so the bias is bit-identical to recomputing the hulls here. *)
  let biased (a : Subtree.t) (b : Subtree.t) d =
    let depth_bias =
      if config.delay_order_weight = 0. then 0.
      else
        config.delay_order_weight
        *. ((Float.Array.get hull_hi a.id +. Float.Array.get hull_hi b.id)
            /. 2.)
    in
    d +. depth_bias
  in
  (* One probe = one coster session: the returned note carries whatever
     side results (e.g. freshly run trial merges) the cost function
     produced, to be absorbed on the main domain in snapshot order. *)
  let probe (s : Subtree.t) =
    (* Runs on worker domains during parallel rounds: the instant lands
       in the emitting domain's own trace buffer. *)
    if tracing then
      Obs.Trace.instant trace ~cat:"dme.order"
        ~args:[ ("subtree", Obs.Json.Int s.id) ]
        "probe";
    let cost, finish = coster.session () in
    let best = nearest_neighbor ~cost s in
    (best, finish ())
  in
  (* Alive subtrees in ascending-id order: the id-indexed arena walk
     needs no sort. *)
  let snapshot () =
    let acc = ref [] in
    for id = !next_id - 1 downto 0 do
      match node.(id) with Some s -> acc := s :: !acc | None -> ()
    done;
    Array.of_list !acc
  in
  let invalidate id =
    if prop_partner.(id) >= 0 then begin
      Obs.Counter.incr c_invalidated;
      prop_partner.(id) <- -1
    end
  in
  (* Dirty-set invalidation, run at the start of each round against the
     exact population a from-scratch probe would see.  A cached proposal
     (p, B) of owner [s] is reused only if it is provably what a fresh
     probe would return, i.e. the argmin by (cost, lowest id) over the
     current k-NN candidate set is still (p, B).  The argument splits
     over where a fresh probe's candidate could come from:

     - A candidate the original probe evaluated: its cost is a pure
       function of the immutable subtree pair, so it still loses to
       (B, p.id).

     - A node inserted since (a committed merge's node [m]): handled by
       the per-insertion sweep below.  [m] undercuts [B] only if
       [Octagon.dist s.region m.region < B] — the coster contract
       [cost >= region distance] plus [m.id > p.id] losing equal-cost
       ties makes the strict test exact — and [m] can evict [p] from the
       k-NN set only by outranking it.  Grid candidate order is (center
       distance, bucket arrival): an [m] strictly farther than [pdist]
       ranks after [p]; an exact center-distance tie is invalidated
       outright; and an insertion reshuffling bucket arrival inside
       [p]'s cell is harmless because caching refused any proposal whose
       partner had a same-cell distance tie (arrival across different
       cells is fixed by ring-scan geometry).  Insertions closer than
       [pdist] shift [p]'s rank by one each; [rank - 1 + closer < knn]
       keeps [p] inside the k-NN set, so the proposal dies only when
       that headroom runs out, not at the first nearby insertion.  All
       tests are against immutable quantities, so one sweep the round
       after the insertion covers the proposal's whole lifetime.

     - A pre-existing node the probe never evaluated, promoted into the
       k-NN set as deletions push the k-th boundary outward: it lies at
       center distance >= the probe's exclusion bound
       ({!Grid_index.k_nearest_probe}), which caching requires to exceed
       [pdist] strictly — so it ranks after [p] and can never evict it —
       and the cache-time undercut scan proved its region distance
       exceeds [B], so its cost loses even as a k-NN member.  Regions
       are immutable and deletions only shrink the pre-existing
       population, so that cache-time proof needs no per-round
       re-checking; only insertions (swept above) can create new
       undercut risks.

     - [p] itself must still be alive: the partner-death rule.

     The surviving proposal is therefore exactly the fresh probe's
     answer — the routed tree, delays and wirelength are bit-identical
     with incremental ranking on or off.  What is NOT replayed is the
     skipped probes' side work: their coster sessions never run, so
     engine-side trial counters drop below the from-scratch run's.  That
     saving is the point; see DESIGN.md section 10.  The classic
     candidate-list-exact rule (dirty when any candidate of the list
     died) is also sound but measurably useless under multi-merge — each
     round consumes half the active set, so some candidate of nearly
     every survivor dies (measured: 0 of 1083 probes saved on r1).

     Every per-owner test is independent of every other owner's outcome
     and [inserted] sweeps touch disjoint mutable slots, so the grid's
     unspecified [iter_within] visit order cannot change the surviving
     set. *)
  let invalidate_stale ~alive_max_rad =
    for oid = 0 to !next_id - 1 do
      let pid = prop_partner.(oid) in
      if pid >= 0 && node.(pid) = None then begin
        Obs.Counter.incr c_inv_partner;
        invalidate oid
      end
    done;
    (* Collection radius: an owner failing any exact test below has its
       center within [B + rad + rad_m] (undercut, via the triangle
       inequality through both region radii) or [pdist
       <= B + rad + rad_p] (rank churn) of [m]'s center.  [reach] bounds
       every surviving cached [B + rad] — recomputed per round from the
       live slots, so late-game giants whose proposals already died do
       not inflate earlier sweeps — while [alive_max_rad] bounds the
       radius of [m] and of any live partner.  Over-collection costs
       scan time only — the per-owner tests are exact. *)
    let reach = ref 0. in
    for oid = 0 to !next_id - 1 do
      if prop_partner.(oid) >= 0 then
        reach :=
          Float.max !reach
            (Float.Array.get prop_cost oid +. Float.Array.get prop_rad oid)
    done;
    List.iter
      (fun mid ->
        let cm = center_of mid in
        let collect = !reach +. alive_max_rad +. cell in
        Grid_index.iter_within grid cm collect (fun oid oc _owner ->
            if prop_partner.(oid) >= 0 && oid <> mid then begin
              if Octslab.dist slab oid mid < Float.Array.get prop_cost oid
              then begin
                Obs.Counter.incr c_inv_undercut;
                invalidate oid
              end
              else
                let dm = Pt.dist oc cm in
                let pdist = Float.Array.get prop_pdist oid in
                if dm = pdist then begin
                  (* [m] ties the partner's center distance; which of the
                     two a fresh scan ranks first hangs on arrival order,
                     so be conservative. *)
                  Obs.Counter.incr c_inv_rank;
                  invalidate oid
                end
                else if dm < pdist then begin
                  prop_closer.(oid) <- prop_closer.(oid) + 1;
                  if prop_rank.(oid) - 1 + prop_closer.(oid) >= knn then begin
                    Obs.Counter.incr c_inv_rank;
                    invalidate oid
                  end
                end
            end))
      !inserted;
    inserted := []
  in
  let rounds = ref 0 in
  let reprobed = ref 0 in
  let saved = ref 0 in
  let rec loop () =
    let count = !n_active in
    if count = 1 then begin
      let survivor = ref None in
      for id = 0 to !next_id - 1 do
        if !survivor = None then survivor := node.(id)
      done;
      match !survivor with Some s -> s | None -> assert false
    end
    else begin
      incr rounds;
      Obs.Counter.incr c_rounds;
      (* Wall time is read only when a round observer is installed, so
         the untraced run does not even touch the clock per round. *)
      let t0 = if on_round <> None then Obs.Timer.now () else 0. in
      let saved0 = !saved in
      (* Rank in three strictly separated phases so the routed tree is
         bit-identical for any jobs count: (1) probe every stale active
         subtree against the frozen grid state — in parallel chunks when
         a pool is given — while clean subtrees reuse their cached
         proposal; (2) absorb the probes' side results on this domain in
         snapshot (ascending-id) order; (3) sort, dedupe and select a
         disjoint pair prefix, compute the selected merges — in parallel
         when a pool is given; [merger.compute] must be pure — and
         install them serially in selection order.  With [incremental]
         off every subtree counts as stale and the round degenerates to
         the from-scratch scan. *)
      let round_body () =
        let snap = snapshot () in
        (* Largest region radius among this round's population: bounds the
           unknown region radius of any node a triangle-inequality ball
           must cover, both in the invalidation sweep and in the
           cache-time undercut scan. *)
        let alive_max_rad =
          if not incremental then 0.
          else
            Array.fold_left
              (fun m (s : Subtree.t) -> Float.max m (Octslab.diameter slab s.id))
              0. snap
        in
        if incremental then invalidate_stale ~alive_max_rad;
        let stale (s : Subtree.t) =
          (not incremental) || prop_partner.(s.id) < 0
        in
        let todo =
          if incremental then
            Array.of_seq (Seq.filter stale (Array.to_seq snap))
          else snap
        in
        let probes =
          let run_probes () =
            match pool with
            | Some pool ->
              Par.Pool.map_chunked pool ~sched ~label:"engine.rank" probe todo
            | None -> Array.map probe todo
          in
          if tracing then
            Obs.Trace.span trace ~cat:"dme.order"
              ~args:[ ("stale", Obs.Json.Int (Array.length todo)) ]
              "probe_phase" run_probes
          else run_probes ()
        in
        reprobed := !reprobed + Array.length todo;
        let pairs = ref [] in
        let ti = ref 0 in
        Array.iter
          (fun (s : Subtree.t) ->
            let best =
              if stale s then begin
                let (best, scan, cands), note = probes.(!ti) in
                incr ti;
                coster.absorb note;
                (match (h_cost, best) with
                 | Some h, Some (_, d) -> Obs.Histogram.observe h d
                 | _ -> ());
                if incremental then
                  (match best with
                   | Some (t, d) when d < reach_cap ->
                     let c_s = center_of s.id in
                     let c_t = center_of t.id in
                     let pdist = Pt.dist c_s c_t in
                     let rad = Octslab.diameter slab s.id in
                     (* Cache-time undercut scan: the proposal is cached
                        only if every alive node the probe did not
                        evaluate has region distance > B from the owner,
                        so no later promotion into the k-NN set can beat
                        or tie the cached best (ties are excluded because
                        a pre-existing node may hold a lower id than the
                        partner and would win one).  Any such node's
                        center lies within [B + rad + alive_max_rad] of
                        the owner's; regions are immutable, so this holds
                        for the proposal's whole life and only insertions
                        (swept each round) can break it. *)
                     let cacheable =
                       (match scan with
                        | Exhaustive -> true
                        | Kth dk -> pdist < dk
                        | Opaque -> false)
                       (* Same-cell tie guard: a candidate in the
                          partner's grid cell at exactly the partner's
                          distance ranks against it by bucket arrival
                          order, which any later insertion into that cell
                          may reshuffle (Hashtbl resize).  Cross-cell
                          ties rank by ring-scan geometry and entries the
                          scan excluded lie at distance >= dk > pdist, so
                          only candidates in the partner's own cell can
                          flip. *)
                       && (let pcell = Grid_index.cell_of grid c_t in
                           not
                             (List.exists
                                (fun (cid, cpt, _) ->
                                  cid <> t.id
                                  && Pt.dist c_s cpt = pdist
                                  && Grid_index.cell_of grid cpt = pcell)
                                cands))
                       &&
                       let ball = d +. rad +. alive_max_rad +. cell in
                       Grid_index.for_all_within grid c_s ball
                         (fun qid _ (_ : Subtree.t) ->
                           qid = s.id || mem_cand qid cands
                           || Octslab.dist slab s.id qid > d)
                     in
                     if cacheable then begin
                       let rank =
                         let rec go i = function
                           | (cid, _, _) :: rest ->
                             if cid = t.id then i else go (i + 1) rest
                           | [] -> assert false
                         in
                         go 1 cands
                       in
                       prop_partner.(s.id) <- t.Subtree.id;
                       Float.Array.set prop_cost s.id d;
                       Float.Array.set prop_rad s.id rad;
                       Float.Array.set prop_pdist s.id pdist;
                       prop_rank.(s.id) <- rank;
                       prop_closer.(s.id) <- 0
                     end
                     else Obs.Counter.incr c_uncached
                   | _ -> Obs.Counter.incr c_uncached);
                best
              end
              else begin
                let t =
                  match node.(prop_partner.(s.id)) with
                  | Some t -> t
                  | None -> assert false (* dead partners were swept *)
                in
                incr saved;
                Obs.Counter.incr c_saved;
                Some (t, Float.Array.get prop_cost s.id)
              end
            in
            match best with
            | None -> ()
            | Some ((t : Subtree.t), d) ->
              let i = Int.min s.Subtree.id t.id and j = Int.max s.Subtree.id t.id in
              pairs := (biased s t d, i, j) :: !pairs)
          snap;
        let pairs =
          List.sort
            (fun (c1, i1, j1) (c2, i2, j2) ->
              match Int.compare i1 i2 with
              | 0 ->
                (match Int.compare j1 j2 with
                 | 0 -> Float.compare c1 c2
                 | c -> c)
              | c -> c)
            !pairs
          |> dedupe_pairs
          |> List.sort (fun (c1, i1, j1) (c2, i2, j2) ->
                 match Float.compare c1 c2 with
                 | 0 ->
                   (match Int.compare i1 i2 with 0 -> Int.compare j1 j2 | c -> c)
                 | c -> c)
        in
        Obs.Counter.add c_pairs (List.length pairs);
        let limit =
          if config.multi_merge then
            Int.max 1
              (int_of_float (config.merge_fraction *. float_of_int count /. 2.))
          else 1
        in
        let used = Hashtbl.create 64 in
        let merged = ref 0 in
        let best_cost = ref Float.infinity in
        let commit_phase () =
          (* Selection first: which pairs merge this round depends only
             on the sorted pair list and the round-start population —
             never on any merge's result — so the (potentially parallel)
             merge computations can all run against the frozen round
             state, and installing them in selection order is
             bit-identical to the former compute-one-install-one loop.
             Ids are drawn at selection time to keep the id sequence
             independent of compute scheduling. *)
          let selected = ref [] in
          List.iter
            (fun (c, i, j) ->
              if
                !merged < limit
                && (not (Hashtbl.mem used i))
                && not (Hashtbl.mem used j)
              then begin
                match (node.(i), node.(j)) with
                | Some a, Some b ->
                  Hashtbl.replace used i ();
                  Hashtbl.replace used j ();
                  selected := (i, j, a, b, fresh_id ()) :: !selected;
                  best_cost := Float.min !best_cost c;
                  incr merged
                | _ -> ()
              end)
            pairs;
          (* Degenerate safeguard: grid candidates always yield at least one
             pair when two or more subtrees are active.  Should that ever
             fail, merge the two lowest-id survivors directly rather than
             spinning forever. *)
          if !merged = 0 then begin
            let i = ref (-1) and j = ref (-1) in
            (try
               for id = 0 to !next_id - 1 do
                 if node.(id) <> None then
                   if !i < 0 then i := id
                   else begin
                     j := id;
                     raise Exit
                   end
               done
             with Exit -> ());
            match (node.(!i), node.(!j)) with
            | Some a, Some b ->
              selected := (!i, !j, a, b, fresh_id ()) :: !selected;
              incr merged
            | _ -> assert false
          end;
          let sels = Array.of_list (List.rev !selected) in
          let computed =
            let compute (_, _, a, b, id) = merger.compute ~id a b in
            match pool with
            | Some pool when Array.length sels > 1 ->
              Par.Pool.map_chunked pool ~sched ~label:"engine.commit" compute
                sels
            | _ -> Array.map compute sels
          in
          Array.iteri
            (fun k (i, j, _, _, _) ->
              let s = merger.install computed.(k) in
              delete i;
              delete j;
              insert s;
              if incremental then inserted := s.Subtree.id :: !inserted)
            sels
        in
        if tracing then
          Obs.Trace.span trace ~cat:"dme.order"
            ~args:[ ("candidates", Obs.Json.Int (List.length pairs)) ]
            "commit_phase" commit_phase
        else commit_phase ();
        (Array.length todo, !merged, !best_cost)
      in
      let probes_run, merges_done, best_cost =
        if tracing then
          Obs.Trace.span trace ~cat:"dme.order"
            ~args:
              [ ("round", Obs.Json.Int !rounds); ("active", Obs.Json.Int count) ]
            "round" round_body
        else round_body ()
      in
      (match on_round with
       | None -> ()
       | Some f ->
         f
           {
             round = !rounds;
             active = count;
             probes = probes_run;
             cache_served = !saved - saved0;
             merges = merges_done;
             best_cost;
             wall_s = Float.max 0. (Obs.Timer.now () -. t0);
           });
      loop ()
    end
  in
  let root = loop () in
  (root, { rounds = !rounds; nn_probes = !reprobed; nn_probes_saved = !saved })

let run inst config ~cost ~merge =
  run_ranked inst config ~coster:(of_cost cost) ~merger:(of_merge merge)
