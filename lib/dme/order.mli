(** Merge ordering: nearest-neighbour selection with Edahiro-style
    multi-merge rounds (§V.F enhancement 1) and optional delay-target
    biasing (§V.F enhancement 2).

    Each round snapshots the active subtrees sorted by id, computes every
    subtree's cheapest merge partner among its [knn] grid candidates —
    in parallel chunks when a {!Par.Pool} is supplied — then sorts the
    candidate pairs by cost (deduplicating the two proposals of an
    unordered pair down to the cheaper one) and greedily merges a
    disjoint prefix.  Probing is read-only with respect to every shared
    structure and the partner choice tie-breaks on the lowest subtree id,
    so the selected merges — and hence the routed tree — are bit-identical
    for any jobs count.

    With [incremental] ranking (the default) each subtree's (partner,
    cost) proposal is cached across rounds and invalidated by exact
    per-proposal tests (the dirty set): the partner died in a committed
    merge; a newly inserted node's region distance undercuts the cached
    cost (so it could win the argmin); or insertions erode the partner's
    candidate rank past the [knn] horizon (tracked with a per-proposal
    counter; exact center-distance ties invalidate conservatively).  A
    proposal is cached in the first place only when the probe's k-NN
    exclusion bound and a one-time undercut scan prove that every node
    the probe never evaluated both ranks after the partner and costs
    more than the cached best — the full soundness argument lives next
    to [invalidate_stale] in the implementation and in DESIGN.md
    section 10.  Clean subtrees reuse their cached best pair, which is
    provably the pair a from-scratch probe would select, so the routed
    tree, per-sink delays and wirelength stay bit-identical with
    [incremental] on or off, for every jobs count.  Trial-merge
    {e counters} may drop below the from-scratch run's (skipped probes
    never evaluate candidates that could not win); that saving is the
    point.

    Incremental ranking relies on the coster lower bound
    [cost a b >= Octagon.dist a.region b.region] (every in-tree cost —
    region distance, planned wire, distance + infeasibility penalty —
    satisfies it).  Costers that violate the bound must route with
    [incremental = false]. *)

type config = {
  multi_merge : bool;
      (** merge a batch of pairs per round instead of a single pair *)
  merge_fraction : float;
      (** fraction of active subtrees consumed per multi-merge round *)
  knn : int;  (** grid candidates examined per nearest-neighbour query *)
  delay_order_weight : float;
      (** layout units per ps: sorts deeper (slower) subtrees earlier;
          0 disables the delay-target enhancement *)
  incremental : bool;
      (** cache proposals across rounds with dirty-set invalidation;
          default on.  Off = re-probe every active subtree each round. *)
}

val default : config

(** How ranking evaluates merge costs.  [session] is called once per
    nearest-neighbour probe — on a worker domain during parallel rounds —
    and returns the cost function for that probe plus a finisher whose
    ['note] carries any side results the probe produced (for the DME
    engine: freshly executed trial merges and cache-counter deltas).
    The cost function must not mutate shared state; [absorb] is called
    for every executed probe's note on the calling domain, in ascending
    subtree-id order, before any merge of the round is committed.
    Subtrees whose cached proposal is reused run no session and absorb
    nothing. *)
type 'note coster = {
  session :
    unit -> (dist:float -> Subtree.t -> Subtree.t -> float) * (unit -> 'note);
  absorb : 'note -> unit;
}

(** How selected merges are executed.  [compute ~id a b] builds the
    merge result; it may run on a worker domain during parallel rounds,
    so it must not mutate shared state (reading state that is frozen for
    the duration of the round's commit phase is fine).  [install] runs
    on the calling domain, in selection order, and returns the merged
    subtree the ranking loop inserts; side effects (statistics, cache
    eviction, tracing) belong here. *)
type 'merge merger = {
  compute : id:int -> Subtree.t -> Subtree.t -> 'merge;
  install : 'merge -> Subtree.t;
}

(** Wrap a pure, self-contained cost function (no side results).  The
    ranking loop's precomputed region distance is dropped on the
    floor — [cost] sees only the subtree pair. *)
val of_cost : (Subtree.t -> Subtree.t -> float) -> unit coster

(** Wrap a plain merge callback: computation is deferred to [install],
    so the whole merge runs on the calling domain in selection order —
    the safe default for costers with effectful merges. *)
val of_merge :
  (id:int -> Subtree.t -> Subtree.t -> Subtree.t) -> (int * Subtree.t * Subtree.t) merger

(** Ranking-loop statistics.  [nn_probes] counts executed
    nearest-neighbour probes (each runs one coster session over up to
    [knn] candidates); [nn_probes_saved] counts the rank slots served
    from the cross-round proposal cache instead.  Their sum is the probe
    count a from-scratch run would have executed. *)
type stats = { rounds : int; nn_probes : int; nn_probes_saved : int }

(** One completed merge round, as reported to the [?on_round] observer
    of {!run_ranked}: 1-based [round] index, [active] subtree count at
    the round's start, executed probe count ([probes]) and rank slots
    served from the proposal cache ([cache_served]) this round, merges
    committed, the cheapest committed pair's biased cost ([infinity]
    when only the degenerate fallback merge ran) and the round's wall
    time in seconds (clamped non-negative). *)
type round_info = {
  round : int;
  active : int;
  probes : int;
  cache_served : int;
  merges : int;
  best_cost : float;
  wall_s : float;
}

(** [dedupe_pairs pairs] collapses adjacent entries with equal subtree-id
    pairs to the first (cheapest, given the (i, j, cost) pre-sort) one.
    Tail-recursive: safe for rounds ranking hundreds of thousands of
    pairs.  Exposed for testing. *)
val dedupe_pairs : (float * int * int) list -> (float * int * int) list

(** [run_ranked ?pool ?trace ?sched ?on_round ?leaves inst config
    ~coster ~merger]
    reduces the sink set to one subtree, running [merger.compute] for
    every selected pair and [merger.install] on the calling domain in
    selection order.  With [pool], candidate probing and the selected
    merges' computations run on the pool's domains; results are
    deterministic and identical to the serial run.  With [trace]
    enabled, each round emits a span (with probe/commit phase sub-spans
    and per-probe instants) and probe costs feed the
    ["order.probe_cost"] histogram; the default {!Obs.Trace.null} skips
    every emission, keeping the untraced run allocation-free on that
    path.  An enabled [sched] recorder ledgers the pooled probe and
    commit maps under ["engine.rank"] / ["engine.commit"]; the default
    {!Obs.Sched.null} records nothing.  [on_round] is invoked after
    each round's commits with that
    round's {!round_info}.  [leaves] overrides the initial population:
    instead of the instance's sink leaves, ranking starts from the given
    subtrees (the clustered router's region roots).  Explicit leaves
    must carry dense ids [0 .. n-1] — the arena is id-indexed — and
    their delay maps must be expressed against [inst]'s groups; merge
    node ids are allocated from [n] upward.  Returns the final subtree
    and the ranking statistics. *)
val run_ranked :
  ?pool:Par.Pool.t ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  ?on_round:(round_info -> unit) ->
  ?leaves:Subtree.t array ->
  Clocktree.Instance.t ->
  config ->
  coster:'note coster ->
  merger:'merge merger ->
  Subtree.t * stats

(** [run inst config ~cost ~merge] is {!run_ranked} without a pool over
    {!of_cost}[ cost]: the serial interface used by tests and simple
    callers.  [cost a b] ranks candidate pairs — typically the planned
    wire of a trial merge, so partners that merge without snaking (e.g.
    cross-group neighbours) are preferred over equally close partners
    that would require balancing wire. *)
val run :
  Clocktree.Instance.t ->
  config ->
  cost:(Subtree.t -> Subtree.t -> float) ->
  merge:(id:int -> Subtree.t -> Subtree.t -> Subtree.t) ->
  Subtree.t * stats
