(** Merge ordering: nearest-neighbour selection with Edahiro-style
    multi-merge rounds (§V.F enhancement 1) and optional delay-target
    biasing (§V.F enhancement 2).

    Each round snapshots the active subtrees sorted by id, computes every
    subtree's cheapest merge partner among its [knn] grid candidates —
    in parallel chunks when a {!Par.Pool} is supplied — then sorts the
    candidate pairs by cost (deduplicating the two proposals of an
    unordered pair down to the cheaper one) and greedily merges a
    disjoint prefix.  Probing is read-only with respect to every shared
    structure and the partner choice tie-breaks on the lowest subtree id,
    so the selected merges — and hence the routed tree — are bit-identical
    for any jobs count. *)

type config = {
  multi_merge : bool;
      (** merge a batch of pairs per round instead of a single pair *)
  merge_fraction : float;
      (** fraction of active subtrees consumed per multi-merge round *)
  knn : int;  (** grid candidates examined per nearest-neighbour query *)
  delay_order_weight : float;
      (** layout units per ps: sorts deeper (slower) subtrees earlier;
          0 disables the delay-target enhancement *)
}

val default : config

(** How ranking evaluates merge costs.  [session] is called once per
    nearest-neighbour probe — on a worker domain during parallel rounds —
    and returns the cost function for that probe plus a finisher whose
    ['note] carries any side results the probe produced (for the DME
    engine: freshly executed trial merges and cache-counter deltas).
    The cost function must not mutate shared state; [absorb] is called
    for every probe's note on the calling domain, in ascending subtree-id
    order, before any merge of the round is committed. *)
type 'note coster = {
  session : unit -> (Subtree.t -> Subtree.t -> float) * (unit -> 'note);
  absorb : 'note -> unit;
}

(** Wrap a pure, self-contained cost function (no side results). *)
val of_cost : (Subtree.t -> Subtree.t -> float) -> unit coster

(** [run_ranked ?pool inst config ~coster ~merge] reduces the sink set to
    one subtree, calling [merge ~id a b] on the calling domain for every
    selected pair.  With [pool], candidate probing runs on the pool's
    domains; results are deterministic and identical to the serial run.
    Returns the final subtree and the number of rounds executed. *)
val run_ranked :
  ?pool:Par.Pool.t ->
  Clocktree.Instance.t ->
  config ->
  coster:'note coster ->
  merge:(id:int -> Subtree.t -> Subtree.t -> Subtree.t) ->
  Subtree.t * int

(** [run inst config ~cost ~merge] is {!run_ranked} without a pool over
    {!of_cost}[ cost]: the serial interface used by tests and simple
    callers.  [cost a b] ranks candidate pairs — typically the planned
    wire of a trial merge, so partners that merge without snaking (e.g.
    cross-group neighbours) are preferred over equally close partners
    that would require balancing wire. *)
val run :
  Clocktree.Instance.t ->
  config ->
  cost:(Subtree.t -> Subtree.t -> float) ->
  merge:(id:int -> Subtree.t -> Subtree.t -> Subtree.t) ->
  Subtree.t * int
