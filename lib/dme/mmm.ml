module Pt = Geometry.Pt

(* Split a sink array at the median of the longer bounding-box dimension;
   a stable sort keeps the construction deterministic. *)
let bisect sinks =
  let xs = Array.map (fun (s : Clocktree.Sink.t) -> s.loc.Pt.x) sinks in
  let ys = Array.map (fun (s : Clocktree.Sink.t) -> s.loc.Pt.y) sinks in
  let spread arr =
    Array.fold_left Float.max Float.neg_infinity arr
    -. Array.fold_left Float.min Float.infinity arr
  in
  let by_x = spread xs >= spread ys in
  let sorted = Array.copy sinks in
  Array.stable_sort
    (fun (a : Clocktree.Sink.t) (b : Clocktree.Sink.t) ->
      if by_x then Float.compare a.loc.Pt.x b.loc.Pt.x
      else Float.compare a.loc.Pt.y b.loc.Pt.y)
    sorted;
  let mid = Array.length sorted / 2 in
  (Array.sub sorted 0 mid, Array.sub sorted mid (Array.length sorted - mid))

let run_arena ?(config = Engine.default) ?(trace = Obs.Trace.null)
    (inst : Clocktree.Instance.t) =
  let gc0 = Obs.Gcstat.sample () in
  let tracing = Obs.Trace.enabled trace in
  if tracing then
    Obs.Trace.merge_manifest trace
      [ ("engine_config", Engine.json_of_config config) ];
  let same_group = ref 0 in
  let cross_group = ref 0 in
  let shared_one = ref 0 in
  let shared_multi = ref 0 in
  let planned_snake = ref 0. in
  let infeasible = ref 0 in
  let next_id = ref (Clocktree.Instance.n_sinks inst) in
  let depth = ref 0 in
  let merge a b =
    let id = !next_id in
    incr next_id;
    let result =
      Merge.run inst ~slack_usage:config.slack_usage
        ~split_slack:config.split_slack ~width_cap:config.width_cap
        ~sdr_samples:config.sdr_samples ~id a b
    in
    (match result.kind with
     | Merge.Same_group -> incr same_group
     | Merge.Cross_group -> incr cross_group
     | Merge.Shared_one -> incr shared_one
     | Merge.Shared_multi -> incr shared_multi);
    planned_snake := !planned_snake +. result.snake;
    if not result.feasible then incr infeasible;
    result.subtree
  in
  let rec build sinks level =
    depth := Int.max !depth level;
    match Array.length sinks with
    | 0 -> invalid_arg "Mmm.run: empty sink set"
    | 1 -> Subtree.leaf sinks.(0)
    | _ ->
      let left, right = bisect sinks in
      merge (build left (level + 1)) (build right (level + 1))
  in
  let root =
    if tracing then
      Obs.Trace.span trace ~cat:"dme.mmm"
        ~args:[ ("sinks", Obs.Json.Int (Clocktree.Instance.n_sinks inst)) ]
        "mmm.build"
        (fun () -> build inst.sinks 0)
    else build inst.sinks 0
  in
  let arena = Embed.run_arena ~trace inst root in
  ( arena,
    Engine.
      {
        rounds = !depth;
        same_group = !same_group;
        cross_group = !cross_group;
        shared_one = !shared_one;
        shared_multi = !shared_multi;
        planned_snake = !planned_snake;
        infeasible_merges = !infeasible;
        nn_reprobes = 0;
        nn_probes_saved = 0;
        trial = Engine.no_trials;
        gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0;
      } )

let run ?config ?trace inst =
  let arena, stats = run_arena ?config ?trace inst in
  (Clocktree.Arena.to_routed arena, stats)
