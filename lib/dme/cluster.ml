module Instance = Clocktree.Instance
module Sink = Clocktree.Sink
module Split = Geometry.Split

type cluster_stats = {
  cluster : int;
  n_sinks : int;
  wall_s : float;
  stats : Engine.stats;
}

type stats = {
  n_clusters : int;
  per_cluster : cluster_stats array;
  top : Engine.stats;
}

let c_regions = Obs.Counter.make "dme.cluster.regions"
let c_region_sinks = Obs.Counter.make "dme.cluster.region_sinks"

(* Roughly one region per thousand sinks, capped at 64: small instances
   stay flat-sized (k = 1 is bit-identical to the flat router), large
   ones get regions big enough that per-region planning dominates the
   top-level stitch. *)
let auto_clusters inst =
  Int.max 1 (Int.min 64 ((Instance.n_sinks inst + 999) / 1000))

let partition inst ~clusters =
  let sinks = inst.Instance.sinks in
  let n = Array.length sinks in
  if n = 0 then [||]
  else begin
    let k = Int.max 1 (Int.min clusters n) in
    let point_of id = sinks.(id).Sink.loc in
    let out = ref [] in
    (* Top-down MMM-style halving: split along the longer bounding-box
       axis at the median, handing the larger (lower) half the larger
       share of the remaining region budget.  The lower half holds
       [ceil (n/2)] sinks and receives [ceil (k/2)] regions, so [k <= n]
       guarantees every region ends up non-empty, by induction.  The
       whole walk is a pure serial function of the sink set — region
       contents and order never depend on jobs. *)
    let rec split ids k =
      if k <= 1 then out := ids :: !out
      else begin
        let lo, hi = Split.bipartition point_of ids in
        let kl = (k + 1) / 2 in
        split lo kl;
        split hi (k - kl)
      end
    in
    split (Array.init n Fun.id) k;
    Array.of_list (List.rev !out)
  end

(* A region's routing instance: its sinks re-indexed densely (sorted by
   global id, so ids within a region rank the same way globally — for
   [clusters = 1] the sub-instance is structurally identical to the
   original) with every other instance parameter carried over.  Group
   ids are global: a region's delay maps need no translation when its
   root joins the top-level merge. *)
let sub_instance (inst : Instance.t) ids =
  let sinks = Array.mapi (fun i gid -> { inst.sinks.(gid) with Sink.id = i }) ids in
  Instance.make ~params:inst.params ~rd:inst.rd ~bound:inst.bound
    ?group_bounds:inst.group_bounds ~source:inst.source
    ~n_groups:inst.n_groups sinks

(* Swap each leaf's re-indexed sink back for the global one it mirrors.
   Regions, caps and delay maps are unaffected (a leaf's fields depend
   on location, load and group only), so the rebuilt plan embeds to the
   same geometry while the final tree reports global sink ids. *)
let rec reglobalize (inst : Instance.t) ids (s : Subtree.t) =
  match s.Subtree.build with
  | Subtree.Leaf l ->
    { s with Subtree.build = Subtree.Leaf inst.sinks.(ids.(l.Sink.id)) }
  | Subtree.Merge { left; right; lengths } ->
    {
      s with
      Subtree.build =
        Subtree.Merge
          {
            left = reglobalize inst ids left;
            right = reglobalize inst ids right;
            lengths;
          };
    }

let add_trials (a : Engine.trial_stats) (b : Engine.trial_stats) =
  Engine.
    {
      trial_merges = a.trial_merges + b.trial_merges;
      cache_hits = a.cache_hits + b.cache_hits;
      cache_misses = a.cache_misses + b.cache_misses;
      elided_trials = a.elided_trials + b.elided_trials;
      reused_trials = a.reused_trials + b.reused_trials;
    }

(* Component-wise sum, except [gc]: per-plan samples come from whichever
   domain ran the plan, so the aggregate instead carries the caller's
   whole-run differential (passed in by [run]). *)
let add_stats (a : Engine.stats) (b : Engine.stats) =
  Engine.
    {
      rounds = a.rounds + b.rounds;
      same_group = a.same_group + b.same_group;
      cross_group = a.cross_group + b.cross_group;
      shared_one = a.shared_one + b.shared_one;
      shared_multi = a.shared_multi + b.shared_multi;
      planned_snake = a.planned_snake +. b.planned_snake;
      infeasible_merges = a.infeasible_merges + b.infeasible_merges;
      nn_reprobes = a.nn_reprobes + b.nn_reprobes;
      nn_probes_saved = a.nn_probes_saved + b.nn_probes_saved;
      trial = add_trials a.trial b.trial;
      gc = Obs.Gcstat.zero;
    }

let run ?(config = Engine.default) ?(trace = Obs.Trace.null) ?clusters inst =
  let gc0 = Obs.Gcstat.sample () in
  let tracing = Obs.Trace.enabled trace in
  let k =
    match clusters with
    | Some k -> Int.max 1 (Int.min k (Int.max 1 (Instance.n_sinks inst)))
    | None -> auto_clusters inst
  in
  let regions = partition inst ~clusters:k in
  let k = Array.length regions in
  Obs.Counter.add c_regions k;
  if tracing then
    Obs.Trace.merge_manifest trace
      [ ("cluster_regions", Obs.Json.Int k) ];
  let jobs = Int.max 1 config.Engine.jobs in
  Par.Pool.with_pool ~jobs (fun pool ->
      (* Bottom level: one serial plan per region.  [Par.Pool] is not
         reentrant, so region plans never see the pool — parallelism
         across regions comes from mapping the regions themselves over
         the pool's domains.  Each plan builds its own private arena and
         grid shard, mutates nothing shared (counters are atomic,
         trace/histogram sinks are mutex-guarded), and its result is a
         pure function of the region's sub-instance — so the gathered
         array, and everything downstream, is bit-identical for any
         jobs count. *)
      let plan_region c =
        let ids = regions.(c) in
        let sub = sub_instance inst ids in
        let t0 = Obs.Timer.now () in
        let root, stats = Engine.plan ~config ~trace sub in
        let wall_s = Float.max 0. (Obs.Timer.now () -. t0) in
        (reglobalize inst ids root, { cluster = c; n_sinks = Array.length ids; wall_s; stats })
      in
      let cs = Array.init k Fun.id in
      let planned =
        let body () =
          match pool with
          | Some pool when k > 1 -> Par.Pool.map_chunked pool ~chunk:1 plan_region cs
          | _ -> Array.map plan_region cs
        in
        if tracing then
          Obs.Trace.span trace ~cat:"dme.cluster"
            ~args:[ ("regions", Obs.Json.Int k); ("jobs", Obs.Json.Int jobs) ]
            "cluster.plan" body
        else body ()
      in
      let per_cluster = Array.map snd planned in
      Array.iter
        (fun (c : cluster_stats) -> Obs.Counter.add c_region_sinks c.n_sinks)
        per_cluster;
      if tracing then
        Array.iter
          (fun (c : cluster_stats) ->
            Obs.Trace.journal trace
              (Obs.Json.Obj
                 [
                   ("type", Obs.Json.String "cluster");
                   ("cluster", Obs.Json.Int c.cluster);
                   ("n_sinks", Obs.Json.Int c.n_sinks);
                   ("rounds", Obs.Json.Int c.stats.Engine.rounds);
                   ("nn_reprobes", Obs.Json.Int c.stats.Engine.nn_reprobes);
                   ( "trial_merges",
                     Obs.Json.Int c.stats.Engine.trial.Engine.trial_merges );
                   ( "planned_snake",
                     Obs.Json.Float c.stats.Engine.planned_snake );
                   ("wall_s", Obs.Json.Float c.wall_s);
                   ("gc", Obs.Gcstat.json c.stats.Engine.gc);
                 ]))
          per_cluster;
      (* Top level: stitch the region roots with one more AST-DME plan
         over the global instance (global bbox drives the penalty /
         reach-cap / grid scales), then embed the whole two-level plan
         in a single top-down pass — the skew bound is enforced across
         region boundaries exactly as it is within them. *)
      let leaves =
        Array.mapi (fun i (root, _) -> { root with Subtree.id = i }) planned
      in
      let root, top =
        Engine.plan ~config ~trace ?pool ~leaves inst
      in
      let routed = Embed.run ?pool ~trace inst root in
      let aggregate =
        let sum = Array.fold_left (fun acc c -> add_stats acc c.stats) top per_cluster in
        { sum with Engine.gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0 }
      in
      (routed, aggregate, { n_clusters = k; per_cluster; top }))
