module Instance = Clocktree.Instance
module Sink = Clocktree.Sink
module Split = Geometry.Split

type cluster_stats = {
  cluster : int;
  n_sinks : int;
  wall_s : float;
  stats : Engine.stats;
}

type stats = {
  n_clusters : int;
  depth : int;
  per_cluster : cluster_stats array;
  super : cluster_stats array;
  top : Engine.stats;
}

let c_regions = Obs.Counter.make "dme.cluster.regions"
let c_region_sinks = Obs.Counter.make "dme.cluster.region_sinks"

(* Roughly one region per thousand sinks — no cap: beyond 64 regions the
   clustering goes multi-level ({!auto_depth}) instead of letting region
   size grow with the instance, so per-region planning cost stays flat
   on the 10^6-sink curve. *)
let auto_clusters inst = Int.max 1 ((Instance.n_sinks inst + 999) / 1000)

(* Stitch fan-in cap: no plan (leaf-region stitch or super-stitch) sees
   more than this many children, matching the historical two-level
   region cap. *)
let fanout_cap = 64

(* Smallest depth whose stitch tree can reach [k] regions under the
   fan-out cap. *)
let auto_depth k =
  let d = ref 1 and reach = ref fanout_cap in
  while !reach < k do
    incr d;
    reach := !reach * fanout_cap
  done;
  !d

(* Smallest integer fan-out f >= 2 with f^depth >= budget: the most
   balanced split of a region budget over [depth] remaining stitch
   levels. *)
let iroot budget depth =
  let reaches f =
    let acc = ref 1 and i = ref 0 in
    while !acc < budget && !i < depth do
      acc := !acc * f;
      incr i
    done;
    !acc >= budget
  in
  let f = ref 2 in
  while not (reaches !f) do
    incr f
  done;
  !f

let fanout_for ~budget ~depth =
  if depth <= 1 then budget
  else Int.max 2 (Int.min fanout_cap (iroot budget depth))

(* Budgeted top-down MMM-style halving: split along the longer
   bounding-box axis at the median, handing the larger (lower) half the
   larger share of both the region budget and the fan-out.  The lower
   half holds [ceil (n/2)] sinks and receives [ceil (k/2)] regions, so
   [k <= n] guarantees every group ends up non-empty, by induction; the
   synchronized halving [fl = ceil (f/2)] keeps [f <= k] invariant, so
   every emitted group carries a positive budget.  Because the
   bipartition tree depends only on the sink set and the budget — never
   on the fan-out at which groups are cut off and later resumed — the
   leaf regions of the recursive (multi-level) scheme are identical, in
   contents and order, to the flat [partition] at the same total budget.
   The whole walk is a pure serial function of the sink set. *)
let split_ids point_of ids ~budget ~fanout =
  let n = Array.length ids in
  let out = ref [] in
  let rec split ids k f =
    if f <= 1 then out := (ids, k) :: !out
    else begin
      let lo, hi = Split.bipartition point_of ids in
      let kl = (k + 1) / 2 in
      let fl = (f + 1) / 2 in
      split lo kl fl;
      split hi (k - kl) (f - fl)
    end
  in
  let k = Int.max 1 (Int.min budget n) in
  split ids k (Int.max 1 (Int.min fanout k));
  Array.of_list (List.rev !out)

let partition inst ~clusters =
  let sinks = inst.Instance.sinks in
  let n = Array.length sinks in
  if n = 0 then [||]
  else begin
    let point_of id = sinks.(id).Sink.loc in
    Array.map fst
      (split_ids point_of (Array.init n Fun.id) ~budget:clusters
         ~fanout:clusters)
  end

(* A region's routing instance: its sinks re-indexed densely (sorted by
   global id, so ids within a region rank the same way globally — for
   [clusters = 1] the sub-instance is structurally identical to the
   original) with every other instance parameter carried over.  Group
   ids are global: a region's delay maps need no translation when its
   root joins the top-level merge. *)
let sub_instance (inst : Instance.t) ids =
  let sinks = Array.mapi (fun i gid -> { inst.sinks.(gid) with Sink.id = i }) ids in
  Instance.make ~params:inst.params ~rd:inst.rd ~bound:inst.bound
    ?group_bounds:inst.group_bounds ~source:inst.source
    ~n_groups:inst.n_groups sinks

(* Swap each leaf's re-indexed sink back for the global one it mirrors.
   Regions, caps and delay maps are unaffected (a leaf's fields depend
   on location, load and group only), so the rebuilt plan embeds to the
   same geometry while the final tree reports global sink ids. *)
let rec reglobalize (inst : Instance.t) ids (s : Subtree.t) =
  match s.Subtree.build with
  | Subtree.Leaf l ->
    { s with Subtree.build = Subtree.Leaf inst.sinks.(ids.(l.Sink.id)) }
  | Subtree.Merge { left; right; lengths } ->
    {
      s with
      Subtree.build =
        Subtree.Merge
          {
            left = reglobalize inst ids left;
            right = reglobalize inst ids right;
            lengths;
          };
    }

let add_trials (a : Engine.trial_stats) (b : Engine.trial_stats) =
  Engine.
    {
      trial_merges = a.trial_merges + b.trial_merges;
      cache_hits = a.cache_hits + b.cache_hits;
      cache_misses = a.cache_misses + b.cache_misses;
      elided_trials = a.elided_trials + b.elided_trials;
      reused_trials = a.reused_trials + b.reused_trials;
    }

(* Component-wise sum, except [gc]: per-plan samples come from whichever
   domain ran the plan, so the aggregate instead carries the caller's
   whole-run differential (passed in by [run]). *)
let add_stats (a : Engine.stats) (b : Engine.stats) =
  Engine.
    {
      rounds = a.rounds + b.rounds;
      same_group = a.same_group + b.same_group;
      cross_group = a.cross_group + b.cross_group;
      shared_one = a.shared_one + b.shared_one;
      shared_multi = a.shared_multi + b.shared_multi;
      planned_snake = a.planned_snake +. b.planned_snake;
      infeasible_merges = a.infeasible_merges + b.infeasible_merges;
      nn_reprobes = a.nn_reprobes + b.nn_reprobes;
      nn_probes_saved = a.nn_probes_saved + b.nn_probes_saved;
      trial = add_trials a.trial b.trial;
      gc = Obs.Gcstat.zero;
    }

(* One planned subtree of the stitch hierarchy: its root (already on
   global sink ids), the leaf-region stats and super-stitch stats it
   contains (in traversal order; [cluster] indices are assigned after
   the top-level gather) and how many stitch levels it holds. *)
type part = {
  pr_root : Subtree.t;
  pr_leaves : cluster_stats list;
  pr_supers : cluster_stats list;
  pr_levels : int;
}

(* Plan one node of the stitch hierarchy, serially — recursion below
   the top level never sees the pool ([Par.Pool] is not reentrant);
   parallelism comes from mapping the top-level groups over the pool's
   domains.  A budget-1 node is a leaf region: one private [Engine.plan]
   on its sub-instance.  A larger node splits its ids with the
   synchronized halving and stitches its children with an [Engine.plan
   ~leaves] over the {e global} instance, so every stitch level uses the
   same bbox-derived penalty / reach-cap / grid scales as the top. *)
let rec plan_node ~config ~trace ~progress ~pdepth (inst : Instance.t) ids
    ~budget ~depth =
  if budget <= 1 then begin
    let sub = sub_instance inst ids in
    let t0 = Obs.Timer.now () in
    let root, stats = Engine.plan ~config ~trace sub in
    let wall_s = Float.max 0. (Obs.Timer.now () -. t0) in
    (* Leaf regions all report at one progress depth regardless of how
       deep the halving placed them: the heartbeat's ETA wants one
       homogeneous completion counter, not the hierarchy's shape. *)
    (match pdepth with
     | Some dd -> Obs.Progress.region_done progress ~depth:dd
     | None -> ());
    {
      pr_root = reglobalize inst ids root;
      pr_leaves =
        [ { cluster = 0; n_sinks = Array.length ids; wall_s; stats } ];
      pr_supers = [];
      pr_levels = 0;
    }
  end
  else begin
    let point_of id = inst.Instance.sinks.(id).Sink.loc in
    let groups =
      split_ids point_of ids ~budget ~fanout:(fanout_for ~budget ~depth)
    in
    let parts =
      Array.map
        (fun (gids, gbudget) ->
          plan_node ~config ~trace ~progress ~pdepth inst gids
            ~budget:gbudget ~depth:(depth - 1))
        groups
    in
    let leaves =
      Array.mapi (fun i p -> { p.pr_root with Subtree.id = i }) parts
    in
    let t0 = Obs.Timer.now () in
    let root, stats = Engine.plan ~config ~trace ~leaves inst in
    let wall_s = Float.max 0. (Obs.Timer.now () -. t0) in
    let stitch = { cluster = 0; n_sinks = Array.length ids; wall_s; stats } in
    {
      pr_root = root;
      pr_leaves = List.concat_map (fun p -> p.pr_leaves) (Array.to_list parts);
      pr_supers =
        List.concat_map (fun p -> p.pr_supers) (Array.to_list parts)
        @ [ stitch ];
      pr_levels =
        1 + Array.fold_left (fun acc p -> Int.max acc p.pr_levels) 0 parts;
    }
  end

let renumber cs = Array.mapi (fun i c -> { c with cluster = i }) cs

let run_arena ?(config = Engine.default) ?(trace = Obs.Trace.null)
    ?(sched = Obs.Sched.null) ?(progress = Obs.Progress.null) ?clusters
    ?depth inst =
  let gc0 = Obs.Gcstat.sample () in
  let tracing = Obs.Trace.enabled trace in
  let n = Instance.n_sinks inst in
  let k =
    match clusters with
    | Some k -> Int.max 1 (Int.min k (Int.max 1 n))
    | None -> auto_clusters inst
  in
  let d = match depth with Some d -> Int.max 1 d | None -> auto_depth k in
  let point_of id = inst.Instance.sinks.(id).Sink.loc in
  let groups =
    if n = 0 then [||]
    else
      split_ids point_of (Array.init n Fun.id) ~budget:k
        ~fanout:(fanout_for ~budget:k ~depth:d)
  in
  let kr = Array.fold_left (fun acc (_, b) -> acc + b) 0 groups in
  Obs.Counter.add c_regions kr;
  (* Announce the hierarchy to the heartbeat: top-level groups at
     progress depth 0 and — when the hierarchy actually has a second
     level — the leaf regions at depth 1 (a depth-1 hierarchy's top
     groups ARE its leaf regions, so announcing both would double
     count). *)
  let pdepth = if d > 1 then Some 1 else None in
  if Array.length groups > 0 then begin
    Obs.Progress.add_regions progress ~depth:0 (Array.length groups);
    match pdepth with
    | Some dd -> Obs.Progress.add_regions progress ~depth:dd kr
    | None -> ()
  end;
  let jobs = Int.max 1 config.Engine.jobs in
  Par.Pool.with_pool ~jobs (fun pool ->
      (* Top-level groups map over the pool's domains (one chunk each);
         each group plans serially ([plan_node]).  Each plan builds its
         own private arena and grid shard, mutates nothing shared
         (counters are atomic, trace/histogram sinks are mutex-guarded),
         and its result is a pure function of its sub-instance and
         budget — so the gathered array, and everything downstream, is
         bit-identical for any jobs count. *)
      let plan_group (gids, gbudget) =
        let part =
          plan_node ~config ~trace ~progress ~pdepth inst gids
            ~budget:gbudget ~depth:(d - 1)
        in
        Obs.Progress.region_done progress ~depth:0;
        part
      in
      let parts =
        let body () =
          match pool with
          | Some pool when Array.length groups > 1 ->
            Par.Pool.map_chunked pool ~sched ~label:"engine.regions" ~chunk:1
              plan_group groups
          | _ -> Array.map plan_group groups
        in
        if tracing then
          Obs.Trace.span trace ~cat:"dme.cluster"
            ~args:
              [
                ("regions", Obs.Json.Int kr);
                ("depth", Obs.Json.Int d);
                ("jobs", Obs.Json.Int jobs);
              ]
            "cluster.plan" body
        else body ()
      in
      let per_cluster =
        renumber
          (Array.of_list
             (List.concat_map (fun p -> p.pr_leaves) (Array.to_list parts)))
      in
      let super =
        renumber
          (Array.of_list
             (List.concat_map (fun p -> p.pr_supers) (Array.to_list parts)))
      in
      let realized_depth =
        1 + Array.fold_left (fun acc p -> Int.max acc p.pr_levels) 0 parts
      in
      Array.iter
        (fun (c : cluster_stats) -> Obs.Counter.add c_region_sinks c.n_sinks)
        per_cluster;
      if tracing then begin
        Obs.Trace.merge_manifest trace
          [
            ("cluster_regions", Obs.Json.Int kr);
            ("cluster_depth", Obs.Json.Int realized_depth);
          ];
        let journal kind (c : cluster_stats) =
          Obs.Trace.journal trace
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.String kind);
                 ("cluster", Obs.Json.Int c.cluster);
                 ("n_sinks", Obs.Json.Int c.n_sinks);
                 ("rounds", Obs.Json.Int c.stats.Engine.rounds);
                 ("nn_reprobes", Obs.Json.Int c.stats.Engine.nn_reprobes);
                 ( "trial_merges",
                   Obs.Json.Int c.stats.Engine.trial.Engine.trial_merges );
                 ("planned_snake", Obs.Json.Float c.stats.Engine.planned_snake);
                 ("wall_s", Obs.Json.Float c.wall_s);
                 ("gc", Obs.Gcstat.json c.stats.Engine.gc);
               ])
        in
        Array.iter (journal "cluster") per_cluster;
        Array.iter (journal "cluster_super") super
      end;
      (* Top level: stitch the group roots with one more AST-DME plan
         over the global instance (global bbox drives the penalty /
         reach-cap / grid scales), then embed the whole multi-level plan
         in a single top-down pass straight into the arena — the skew
         bound is enforced across region boundaries exactly as it is
         within them. *)
      let leaves =
        Array.mapi (fun i p -> { p.pr_root with Subtree.id = i }) parts
      in
      let root, top = Engine.plan ~config ~trace ~sched ?pool ~leaves inst in
      let arena = Embed.run_arena ?pool ~trace ~sched inst root in
      let aggregate =
        let sum =
          Array.fold_left (fun acc c -> add_stats acc c.stats) top per_cluster
        in
        let sum =
          Array.fold_left (fun acc c -> add_stats acc c.stats) sum super
        in
        { sum with Engine.gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0 }
      in
      ( arena,
        aggregate,
        { n_clusters = kr; depth = realized_depth; per_cluster; super; top } ))

let run ?config ?trace ?sched ?progress ?clusters ?depth inst =
  let gc0 = Obs.Gcstat.sample () in
  let arena, stats, detail =
    run_arena ?config ?trace ?sched ?progress ?clusters ?depth inst
  in
  let routed = Clocktree.Arena.to_routed arena in
  (routed, { stats with Engine.gc = Obs.Gcstat.diff (Obs.Gcstat.sample ()) gc0 },
   detail)
