(** Top-down embedding: turn the bottom-up merge plan into a concrete
    embedded tree (the second phase of DME/BST).

    The root lands on the point of the final merging region nearest to
    the clock source; every child lands on the point of its region
    nearest to its parent's placement.  Committed wire lengths are
    honoured exactly (shortfall is snaked), shortest-path merges consume
    exactly the planned total.

    With [pool] (and more than one job) the top of the plan is expanded
    on the calling domain until roughly [4 * jobs] independent subtrees
    exist, each subtree is embedded on a pool domain, and the pieces are
    grafted back in input order.  Embedding a subtree is a pure function
    of the frozen merge plan and its placement point, so the routed tree
    is bit-identical to the serial walk for any jobs count.

    With [trace] enabled the whole embedding is wrapped in one
    ["embed"] span; the default {!Obs.Trace.null} emits nothing. *)

val run :
  ?pool:Par.Pool.t ->
  ?trace:Obs.Trace.t ->
  Clocktree.Instance.t ->
  Subtree.t ->
  Clocktree.Tree.routed
