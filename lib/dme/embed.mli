(** Top-down embedding: turn the bottom-up merge plan into a concrete
    embedded tree (the second phase of DME/BST).

    The root lands on the point of the final merging region nearest to
    the clock source; every child lands on the point of its region
    nearest to its parent's placement.  Committed wire lengths are
    honoured exactly (shortfall is snaked), shortest-path merges consume
    exactly the planned total.

    With [trace] enabled the whole embedding is wrapped in one
    ["embed"] span; the default {!Obs.Trace.null} emits nothing. *)

val run :
  ?trace:Obs.Trace.t -> Clocktree.Instance.t -> Subtree.t ->
  Clocktree.Tree.routed
