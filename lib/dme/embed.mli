(** Top-down embedding: turn the bottom-up merge plan into a concrete
    embedded tree (the second phase of DME/BST).

    The root lands on the point of the final merging region nearest to
    the clock source; every child lands on the point of its region
    nearest to its parent's placement.  Committed wire lengths are
    honoured exactly (shortfall is snaked), shortest-path merges consume
    exactly the planned total.

    The embedding is {e arena-native}: {!run_arena} writes the tree
    straight into a pre-sized flat post-order {!Clocktree.Arena} —
    index for index what [Arena.of_routed] would assign flattening the
    boxed tree — so the router's embed → evaluate → repair hot path
    never builds pointer nodes.  The walk is iterative (explicit frame
    stack, like [Arena.of_routed]), so degenerate 10^5-deep merge plans
    embed without stack overflow.

    With [pool] (and more than one job) the top of the plan is expanded
    on the calling domain until roughly [4 * jobs] pending subtrees
    exist.  A subtree with [s] sinks occupies exactly [2 s - 1]
    contiguous arena slots, so every pending subtree's window is known
    at expansion time: prefix nodes are written immediately and the
    windows fill on pool domains, disjoint index ranges of the shared
    arrays.  Every element is computed by the serial expressions from
    the same operands, so the arena is bit-identical to the serial walk
    for any jobs count ([Check.Oracle.embed_identity] enforces this).

    With [trace] enabled the whole embedding is wrapped in one
    ["embed"] span; the default {!Obs.Trace.null} emits nothing.  An
    enabled [sched] recorder ledgers the pooled window fill under
    ["engine.embed"]; the default {!Obs.Sched.null} records nothing. *)

val run_arena :
  ?pool:Par.Pool.t ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  Clocktree.Instance.t ->
  Subtree.t ->
  Clocktree.Arena.t

(** {!run_arena} followed by [Arena.to_routed] — the boxed-tree entry
    point for callers that want the external representation (figures,
    Io, Svg). *)
val run :
  ?pool:Par.Pool.t ->
  ?trace:Obs.Trace.t ->
  ?sched:Obs.Sched.t ->
  Clocktree.Instance.t ->
  Subtree.t ->
  Clocktree.Tree.routed

(** Executable specification: the original recursive boxed-tree
    embedder, kept as the independent reference that the arena-direct
    identity oracle and property tests compare against.  Recursive —
    oracle/test-sized instances only. *)
val run_reference :
  Clocktree.Instance.t -> Subtree.t -> Clocktree.Tree.routed
