(** The four merge cases of the AST-DME algorithm (Fig. 6 of the thesis).

    Dispatch is on the group relation between the two subtrees:

    - {b same group} / {b shared groups} (steps 4, 6, 7): the shared
      groups impose skew constraints; wire lengths are committed by
      {!Rc.Balance.plan} (snaking when the slack cannot absorb the
      imbalance — the Instance 1/2 machinery of §V.E reduced to delay
      algebra) and the merging region is
      [trr(A, ea) ∩ trr(B, eb)].
    - {b different groups} (step 5): no constraint; the merging region is
      the shortest-distance region between the child regions (Fig. 3),
      restricted so that the delay uncertainty it introduces stays within
      the configured fraction of each group's remaining slack. *)

type kind = Same_group | Cross_group | Shared_one | Shared_multi

type result = {
  subtree : Subtree.t;
  kind : kind;
  planned_wire : float;  (** wire committed by this merge *)
  snake : float;  (** part of [planned_wire] beyond the region distance *)
  feasible : bool;  (** false when constraints were mutually inconsistent *)
}

(** [run inst ~split_slack ~width_cap ~sdr_samples ~id a b] merges two
    subtrees.  [split_slack] is the fraction of [bound] a cross-group
    merge may spend on split-range delay uncertainty per merge;
    [width_cap] caps the cumulative width of any group's delay window at
    that fraction of the bound, reserving slack for later constrained
    merges; [slack_usage] (default 0.3) is the fraction of each group's
    remaining slack one merge may consume before snaking is considered;
    [id] names the new subtree. *)
val run :
  Clocktree.Instance.t ->
  ?slack_usage:float ->
  split_slack:float ->
  width_cap:float ->
  sdr_samples:int ->
  id:int ->
  Subtree.t ->
  Subtree.t ->
  result

(** [committed_feasible inst ~slack_usage ~dist a b] is
    [(run inst ~slack_usage ... a b).feasible], bit for bit, computed
    without building the merged subtree — no region intersection, no
    delay-map union, no allocation beyond a few boxed floats.  [dist]
    must be [Octagon.dist a.region b.region].  This is the trial merge's
    only cost-relevant output when ranking by region distance with
    [avoid_infeasible], so the ranking loop can skip trial merges
    entirely (see {!Engine}). *)
val committed_feasible :
  Clocktree.Instance.t ->
  slack_usage:float ->
  dist:float ->
  Subtree.t ->
  Subtree.t ->
  bool

val pp_kind : Format.formatter -> kind -> unit
