(** Generic RC trees: the electrical view of an embedded clock tree.

    Node 0 is the root, driven from an ideal step source through a driver
    resistance.  Every other node connects to its parent through a
    resistance and carries a grounded capacitance. *)

type t

(** [build ~rd nodes] builds a tree from per-node [(parent, res, cap)]
    triples: [parent] is the parent index ([-1] for node 0 and only node
    0), [res] the resistance to the parent (ohm, ignored for the root)
    and [cap] the node capacitance (fF).  Parents must appear before
    children.  [rd] is the driver resistance (ohm). *)
val build : rd:float -> (int * float * float) array -> t

val size : t -> int
val driver_resistance : t -> float
val cap : t -> int -> float
val res : t -> int -> float
val parent : t -> int -> int
val children : t -> int -> int array

(** Electrical sanity faults of the tree: negative or non-finite
    resistances / capacitances / driver resistance.  Empty on a healthy
    tree.  (The structural invariants — dense parents, parents before
    children — are enforced by {!build} and cannot be violated here.) *)
val audit : t -> string list

(** Total capacitance hanging below each node, including its own. *)
val downstream_cap : t -> float array

(** Exact Elmore delay (ps) from the step source to every node, driver
    resistance included. *)
val elmore : t -> float array
