type t = {
  rd : float;
  parent : int array;
  res : float array;
  cap : float array;
  children : int array array;
}

let build ~rd nodes =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Rctree.build: empty tree";
  let parent = Array.make n (-1) in
  let res = Array.make n 0. in
  let cap = Array.make n 0. in
  let child_lists = Array.make n [] in
  Array.iteri
    (fun i (p, r, c) ->
      if i = 0 then begin
        if p <> -1 then invalid_arg "Rctree.build: node 0 must be the root"
      end
      else if p < 0 || p >= i then
        invalid_arg "Rctree.build: parents must precede children";
      parent.(i) <- p;
      res.(i) <- r;
      cap.(i) <- c;
      if i > 0 then child_lists.(p) <- i :: child_lists.(p))
    nodes;
  let children = Array.map (fun l -> Array.of_list (List.rev l)) child_lists in
  { rd; parent; res; cap; children }

let size t = Array.length t.cap
let driver_resistance t = t.rd
let cap t i = t.cap.(i)
let res t i = t.res.(i)
let parent t i = t.parent.(i)
let children t i = t.children.(i)

let downstream_cap t =
  let n = size t in
  let down = Array.copy t.cap in
  (* Parents precede children, so a reverse scan accumulates bottom-up. *)
  for i = n - 1 downto 1 do
    down.(t.parent.(i)) <- down.(t.parent.(i)) +. down.(i)
  done;
  down

let audit t =
  let faults = ref [] in
  let fault fmt = Printf.ksprintf (fun m -> faults := m :: !faults) fmt in
  if not (Float.is_finite t.rd) || t.rd < 0. then
    fault "driver resistance %g is negative or non-finite" t.rd;
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) || r < 0. then
        fault "node %d: resistance %g is negative or non-finite" i r)
    t.res;
  Array.iteri
    (fun i c ->
      if not (Float.is_finite c) || c < 0. then
        fault "node %d: capacitance %g is negative or non-finite" i c)
    t.cap;
  List.rev !faults

let elmore t =
  let n = size t in
  let down = downstream_cap t in
  let delay = Array.make n 0. in
  delay.(0) <- Wire.ps_per_ohm_ff *. t.rd *. down.(0);
  for i = 1 to n - 1 do
    delay.(i) <-
      delay.(t.parent.(i)) +. (Wire.ps_per_ohm_ff *. t.res.(i) *. down.(i))
  done;
  delay
