(** Backward-Euler transient simulation of RC trees.

    The repository's stand-in for SPICE: it integrates the exact circuit
    equations of an [Rctree.t] under a unit voltage step and reports
    threshold-crossing times, so Elmore-based skew estimates can be
    validated against "simulated" delays (Chapter III of the thesis). *)

type result = {
  crossing : float array;
      (** time (ps) at which each node first reaches the threshold;
          [nan] if it never did within the simulated horizon *)
  steps : int;
}

(** [step_response tree ~dt ~t_end ~threshold] simulates a 0→1 V step at
    the source.  [dt] and [t_end] are in ps; [threshold] in volts
    (e.g. 0.5).  Each step solves the tree-structured linear system in
    O(n).  With [trace] enabled the simulation is wrapped in a
    ["step_response"] span and emits strided ["solver_step"] instants
    (at most ~32 per run); the default {!Obs.Trace.null} emits
    nothing. *)
val step_response :
  ?trace:Obs.Trace.t ->
  Rctree.t -> dt:float -> t_end:float -> threshold:float -> result

(** Convenience wrapper choosing [dt] and [t_end] from the tree's Elmore
    delays: [dt] = max Elmore / [resolution], horizon = 20× max Elmore. *)
val step_response_auto :
  ?trace:Obs.Trace.t -> ?resolution:int -> ?threshold:float -> Rctree.t ->
  result
