type result = { crossing : float array; steps : int }

(* fF / ps = 1e-3 siemens: converts capacitive conductance into the same
   units as 1/R (ohm). *)
let siemens_per_ff_ps = 1e-3

let step_response ?(trace = Obs.Trace.null) tree ~dt ~t_end ~threshold =
  if dt <= 0. || t_end <= 0. then
    invalid_arg "Transient.step_response: dt and t_end must be positive";
  let tracing = Obs.Trace.enabled trace in
  let n = Rctree.size tree in
  (* Zero-length edges (merge points placed on a child) would give
     infinite conductance and wreck the elimination numerically; floor
     the resistance at a value whose time constants are negligible. *)
  let min_res = 1e-6 in
  let g = Array.make n 0. in
  for i = 1 to n - 1 do
    g.(i) <- 1. /. Float.max min_res (Rctree.res tree i)
  done;
  let g_drv = 1. /. Float.max min_res (Rctree.driver_resistance tree) in
  let cg = Array.init n (fun i -> siemens_per_ff_ps *. Rctree.cap tree i /. dt) in
  (* Static diagonal of (C/dt + G): capacitor, link to parent, links to
     children, and the driver conductance at the root. *)
  let diag_static = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref cg.(i) in
    if i > 0 then acc := !acc +. g.(i);
    Array.iter (fun ch -> acc := !acc +. g.(ch)) (Rctree.children tree i);
    if i = 0 then acc := !acc +. g_drv;
    diag_static.(i) <- !acc
  done;
  let v = Array.make n 0. in
  let crossing = Array.make n Float.nan in
  let remaining = ref n in
  let diag = Array.make n 0. in
  let rhs = Array.make n 0. in
  let steps = int_of_float (Float.ceil (t_end /. dt)) in
  let step_count = ref 0 in
  (* Solver-iteration events are strided so a long horizon does not
     flood the trace: at most ~32 instants per simulation. *)
  let stride = Int.max 1 (steps / 32) in
  let body () =
  (try
     for s = 1 to steps do
       step_count := s;
       if tracing && s mod stride = 0 then
         Obs.Trace.instant trace ~cat:"rc.transient"
           ~args:
             [
               ("step", Obs.Json.Int s); ("settled", Obs.Json.Int (n - !remaining));
             ]
           "solver_step";
       Array.blit diag_static 0 diag 0 n;
       for i = 0 to n - 1 do
         rhs.(i) <- cg.(i) *. v.(i)
       done;
       rhs.(0) <- rhs.(0) +. g_drv (* source held at 1 V *);
       (* Eliminate leaves upward: children have larger indices. *)
       for i = n - 1 downto 1 do
         let p = Rctree.parent tree i in
         let f = g.(i) /. diag.(i) in
         diag.(p) <- diag.(p) -. (g.(i) *. f);
         rhs.(p) <- rhs.(p) +. (rhs.(i) *. f)
       done;
       let t_now = dt *. float_of_int s in
       let update i value =
         let prev = v.(i) in
         v.(i) <- value;
         if Float.is_nan crossing.(i) && value >= threshold then begin
           let frac =
             if value -. prev <= 0. then 1.
             else (threshold -. prev) /. (value -. prev)
           in
           crossing.(i) <- t_now -. dt +. (dt *. frac);
           decr remaining
         end
       in
       update 0 (rhs.(0) /. diag.(0));
       for i = 1 to n - 1 do
         let p = Rctree.parent tree i in
         update i ((rhs.(i) +. (g.(i) *. v.(p))) /. diag.(i))
       done;
       if !remaining = 0 then raise Exit
     done
   with Exit -> ());
  { crossing; steps = !step_count }
  in
  if tracing then
    Obs.Trace.span trace ~cat:"rc.transient"
      ~args:
        [
          ("nodes", Obs.Json.Int n);
          ("dt", Obs.Json.Float dt);
          ("t_end", Obs.Json.Float t_end);
        ]
      "step_response" body
  else body ()

let step_response_auto ?trace ?(resolution = 2000) ?(threshold = 0.5) tree =
  let elmore = Rctree.elmore tree in
  let max_delay = Array.fold_left Float.max 1e-9 elmore in
  let dt = max_delay /. float_of_int resolution in
  step_response ?trace tree ~dt ~t_end:(20. *. max_delay) ~threshold
