(* A timer's three fields are updated together under its mutex so a
   sample recorded on one domain is never observed torn from another.
   Timing a section is far coarser-grained than counter bumps, so an
   uncontended lock per sample is noise. *)
type t = {
  name : string;
  lock : Mutex.t;
  mutable wall : float;
  mutable cpu : float;
  mutable count : int;
}

let registry : t list Atomic.t = Atomic.make []

let make name =
  let t = { name; lock = Mutex.create (); wall = 0.; cpu = 0.; count = 0 } in
  let rec register () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (t :: old)) then register ()
  in
  register ();
  t

let name t = t.name
let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Negative samples are clamped to zero: [Unix.gettimeofday] is not
   monotonic, so a wall-clock step during a timed section would
   otherwise subtract from the accumulated total. *)
let record t ~wall ~cpu =
  locked t (fun () ->
      t.wall <- t.wall +. Float.max 0. wall;
      t.cpu <- t.cpu +. Float.max 0. cpu;
      t.count <- t.count + 1)

let time t f =
  let w0 = now () and c0 = Sys.time () in
  Fun.protect
    ~finally:(fun () -> record t ~wall:(now () -. w0) ~cpu:(Sys.time () -. c0))
    f

let wall_seconds t = locked t (fun () -> t.wall)
let cpu_seconds t = locked t (fun () -> t.cpu)
let calls t = locked t (fun () -> t.count)

let reset t =
  locked t (fun () ->
      t.wall <- 0.;
      t.cpu <- 0.;
      t.count <- 0)

let all () = List.rev (Atomic.get registry)
let find name = List.find_opt (fun t -> t.name = name) (all ())
