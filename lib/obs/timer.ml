type t = {
  name : string;
  mutable wall : float;
  mutable cpu : float;
  mutable count : int;
}

let registry : t list ref = ref []

let make name =
  let t = { name; wall = 0.; cpu = 0.; count = 0 } in
  registry := t :: !registry;
  t

let name t = t.name
let now () = Unix.gettimeofday ()

let record t ~wall ~cpu =
  t.wall <- t.wall +. wall;
  t.cpu <- t.cpu +. cpu;
  t.count <- t.count + 1

let time t f =
  let w0 = now () and c0 = Sys.time () in
  Fun.protect
    ~finally:(fun () -> record t ~wall:(now () -. w0) ~cpu:(Sys.time () -. c0))
    f

let wall_seconds t = t.wall
let cpu_seconds t = t.cpu
let calls t = t.count

let reset t =
  t.wall <- 0.;
  t.cpu <- 0.;
  t.count <- 0

let all () = List.rev !registry
let find name = List.find_opt (fun t -> t.name = name) (all ())
