(** Snapshot and reset of every registered {!Counter} and {!Timer}.

    The snapshot is a JSON object

    {v
    { "counters": { "<name>": <int>, ... },
      "timers":   { "<name>": { "wall_s": <float>,
                                "cpu_s": <float>,
                                "calls": <int> }, ... } }
    v}

    with entries in registration order.  Benchmarks typically call
    {!reset} before a measured region and {!snapshot} after it. *)

val snapshot : unit -> Json.t

(** Zero every registered counter and timer. *)
val reset : unit -> unit

(** Current value of the named counter; 0 when no such counter exists. *)
val counter : string -> int
