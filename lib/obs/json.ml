type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.12g keeps stats values readable with ample precision; JSON has no
   representation for non-finite numbers, so those become null. *)
let float_repr f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* --- Parsing --------------------------------------------------------------

   Recursive-descent parser for the emitter's output (and standard JSON
   generally): the bench `compare` subcommand reads BENCH_*.json files
   back.  Numbers with a '.', exponent or non-finite spelling become
   [Float], others [Int]; [null] parses to [Null] (the emitter writes
   non-finite floats as null, which is lossy by design).  Unicode escapes
   outside the Latin-1 range are replaced with '?' — stats files never
   contain them. *)

exception Parse_error of { pos : int; msg : string }

let parse_error pos msg = raise (Parse_error { pos; msg })

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error !pos "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'
         | Some '\\' -> Buffer.add_char buf '\\'
         | Some '/' -> Buffer.add_char buf '/'
         | Some 'n' -> Buffer.add_char buf '\n'
         | Some 'r' -> Buffer.add_char buf '\r'
         | Some 't' -> Buffer.add_char buf '\t'
         | Some 'b' -> Buffer.add_char buf '\b'
         | Some 'f' -> Buffer.add_char buf '\012'
         | Some 'u' ->
           if !pos + 4 >= n then parse_error !pos "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           (* Exactly four hex digits: OCaml's own int-literal syntax
              would also accept signs and underscores ("\u00_1"), which
              are not JSON. *)
           let is_hex = function
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
             | _ -> false
           in
           if not (String.for_all is_hex hex) then
             parse_error !pos "bad \\u escape";
           let code = int_of_string ("0x" ^ hex) in
           Buffer.add_char buf (if code < 0x100 then Char.chr code else '?');
           pos := !pos + 4
         | _ -> parse_error !pos "bad escape");
        advance ();
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    (* JSON numbers may start with '-' or a digit only; OCaml's
       [int_of_string] would otherwise accept a leading '+'. *)
    (match peek () with
     | Some ('-' | '0' .. '9') -> ()
     | _ -> parse_error start "bad number");
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let floaty = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit in
    if floaty then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> parse_error start "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None ->
        (* Integer literal overflowing native int (not produced by the
           emitter, but legal JSON): degrade to float. *)
        (match float_of_string_opt lit with
         | Some f -> Float f
         | None -> parse_error start "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_body ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> parse_error !pos "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> parse_error !pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then parse_error !pos "trailing garbage";
  v

let of_string_opt s =
  match of_string s with v -> Some v | exception Parse_error _ -> None

let read_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string contents
