(* Opt-in stderr heartbeat: a [null] reporter is [None] and every entry
   point is a no-op through it, so the pipeline can call [region_done]
   unconditionally.  Region completions arrive from worker domains (the
   cluster planner maps one region per chunk), so all state lives under
   one mutex; emission is throttled to [interval] seconds except on
   phase changes and [finish], which always print. *)

type ctx = {
  lock : Mutex.t;
  out : out_channel;
  interval : float;
  t0 : float;
  mutable last_emit : float;
  mutable phase : string;
  mutable phase_t0 : float;
  mutable totals : int array;  (** regions announced, per cluster depth *)
  mutable dones : int array;  (** regions completed, per cluster depth *)
  mutable heap_watermark : int;  (** top_heap_words high-water, in words *)
}

type t = ctx option

let null : t = None

let create ?(interval = 1.0) ?(out = stderr) () : t =
  let now = Timer.now () in
  Some
    {
      lock = Mutex.create ();
      out;
      interval = Float.max 0. interval;
      t0 = now;
      last_emit = Float.neg_infinity;
      phase = "start";
      phase_t0 = now;
      totals = [||];
      dones = [||];
      heap_watermark = 0;
    }

let enabled = Option.is_some

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let grow c depth =
  let len = Array.length c.totals in
  if depth >= len then begin
    let totals = Array.make (depth + 1) 0 in
    let dones = Array.make (depth + 1) 0 in
    Array.blit c.totals 0 totals 0 len;
    Array.blit c.dones 0 dones 0 len;
    c.totals <- totals;
    c.dones <- dones
  end

(* One heartbeat line, strictly space-separated [key=value] tokens so
   the CI smoke (and anything watching stderr) can parse it:

     progress phase=engine wall_s=12.4 heap_words=1234567 eta_s=3.2 \
       regions0=3/8 regions1=12/64

   [eta_s] extrapolates the busiest region level from its completion
   ratio and the elapsed phase wall; "?" until a first region lands. *)
let emit c now =
  c.last_emit <- now;
  let hw = (Gc.quick_stat ()).Gc.top_heap_words in
  if hw > c.heap_watermark then c.heap_watermark <- hw;
  let buf = Buffer.create 128 in
  Buffer.add_string buf "progress";
  Printf.bprintf buf " phase=%s" c.phase;
  Printf.bprintf buf " wall_s=%.1f" (now -. c.t0);
  Printf.bprintf buf " heap_words=%d" c.heap_watermark;
  let eta = ref None in
  let best_total = ref 0 in
  Array.iteri
    (fun depth total ->
      if total > 0 && total > !best_total then begin
        best_total := total;
        let d = c.dones.(depth) in
        if d > 0 && d < total then
          eta :=
            Some
              ((now -. c.phase_t0) *. float_of_int (total - d)
              /. float_of_int d)
        else eta := None
      end)
    c.totals;
  (match !eta with
   | Some e -> Printf.bprintf buf " eta_s=%.1f" e
   | None -> Buffer.add_string buf " eta_s=?");
  Array.iteri
    (fun depth total ->
      if total > 0 then
        Printf.bprintf buf " regions%d=%d/%d" depth c.dones.(depth) total)
    c.totals;
  Buffer.add_char buf '\n';
  output_string c.out (Buffer.contents buf);
  flush c.out

let maybe_emit c =
  let now = Timer.now () in
  if now -. c.last_emit >= c.interval then emit c now

let phase (t : t) name =
  match t with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        c.phase <- name;
        c.phase_t0 <- Timer.now ();
        (* A new phase's region counters start fresh: completed levels
           of the previous phase would poison the ETA ratio. *)
        Array.fill c.totals 0 (Array.length c.totals) 0;
        Array.fill c.dones 0 (Array.length c.dones) 0;
        emit c (Timer.now ()))

let add_regions (t : t) ~depth n =
  match t with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        grow c depth;
        c.totals.(depth) <- c.totals.(depth) + Int.max 0 n)

let region_done (t : t) ~depth =
  match t with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        grow c depth;
        c.dones.(depth) <- c.dones.(depth) + 1;
        maybe_emit c)

let tick (t : t) =
  match t with None -> () | Some c -> locked c (fun () -> maybe_emit c)

let finish (t : t) =
  match t with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        c.phase <- "done";
        emit c (Timer.now ()))

let heap_watermark_words (t : t) =
  match t with
  | None -> None
  | Some c -> Some (locked c (fun () -> c.heap_watermark))
