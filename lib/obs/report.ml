let snapshot () =
  let counters =
    List.map
      (fun c -> (Counter.name c, Json.Int (Counter.value c)))
      (Counter.all ())
  in
  let timers =
    List.map
      (fun t ->
        ( Timer.name t,
          Json.Obj
            [
              ("wall_s", Json.Float (Timer.wall_seconds t));
              ("cpu_s", Json.Float (Timer.cpu_seconds t));
              ("calls", Json.Int (Timer.calls t));
            ] ))
      (Timer.all ())
  in
  Json.Obj [ ("counters", Json.Obj counters); ("timers", Json.Obj timers) ]

let reset () =
  List.iter Counter.reset (Counter.all ());
  List.iter Timer.reset (Timer.all ())

let counter name =
  match Counter.find name with Some c -> Counter.value c | None -> 0
