(** Log-bucketed histograms for positively skewed observability metrics
    (probe costs, merging-region extents, per-sink delays).

    Buckets partition the positive reals into [per_decade] logarithmic
    slices per power of ten: an observation [v > 0] lands in the bucket
    whose bounds are [10^(i/k) <= v < 10^((i+1)/k)].  Only touched
    buckets are stored, so the value range is unbounded in both
    directions.  Non-positive observations are tallied in a separate
    underflow cell (log buckets cannot hold them), positive infinities
    in an overflow cell, and NaNs are ignored entirely.

    Unlike {!Counter} and {!Timer}, histograms do not register in a
    global registry: they belong to the {!Trace} context that created
    them (or to the caller, when built directly).  Observation is
    mutex-guarded, so recording from concurrent domains is safe. *)

type t

(** [create ?per_decade name] makes an empty histogram.  [per_decade]
    (default 8) is clamped to at least 1. *)
val create : ?per_decade:int -> string -> t

val name : t -> string

(** Record one observation (see the bucketing rules above). *)
val observe : t -> float -> unit

(** Observations recorded, NaNs excluded. *)
val count : t -> int

(** Sum of all counted observations. *)
val sum : t -> float

val underflow : t -> int
val overflow : t -> int

(** Touched buckets as [(lo, hi, count)], ascending by bound; [lo] is
    inclusive, [hi] exclusive. *)
val buckets : t -> (float * float * int) list

val reset : t -> unit

(** {v
    { "name": ..., "count": n, "sum": s, "min": ..., "max": ...,
      "underflow": n, "overflow": n,
      "buckets": [ { "lo": ..., "hi": ..., "count": n }, ... ] }
    v}

    [min]/[max] are [null] while the histogram is empty. *)
val to_json : t -> Json.t
