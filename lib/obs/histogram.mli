(** Log-bucketed histograms for positively skewed observability metrics
    (probe costs, merging-region extents, per-sink delays).

    Buckets partition the positive reals into [per_decade] logarithmic
    slices per power of ten: an observation [v > 0] lands in the bucket
    whose bounds are [10^(i/k) <= v < 10^((i+1)/k)].  Only touched
    buckets are stored, so the value range is unbounded in both
    directions.  Non-positive observations are tallied in a separate
    underflow cell (log buckets cannot hold them), positive infinities
    in an overflow cell, and NaNs are ignored entirely.

    Unlike {!Counter} and {!Timer}, histograms do not register in a
    global registry: they belong to the {!Trace} context that created
    them (or to the caller, when built directly).  Observation is
    mutex-guarded, so recording from concurrent domains is safe.

    Buckets are stored as a dense count array over the touched index
    range, so once a histogram has seen its value range, {!observe},
    {!reset} and {!merge_into} allocate nothing — the property the
    progress heartbeat and the scheduler ledger rely on to stay off the
    allocator in steady state. *)

type t

(** [create ?per_decade name] makes an empty histogram.  [per_decade]
    (default 8) is clamped to at least 1. *)
val create : ?per_decade:int -> string -> t

val name : t -> string

(** Record one observation (see the bucketing rules above). *)
val observe : t -> float -> unit

(** Observations recorded, NaNs excluded. *)
val count : t -> int

(** Sum of all counted observations. *)
val sum : t -> float

val underflow : t -> int
val overflow : t -> int

(** Touched buckets as [(lo, hi, count)], ascending by bound; [lo] is
    inclusive, [hi] exclusive. *)
val buckets : t -> (float * float * int) list

(** Zero every cell but keep the grown bucket storage, so a scratch
    histogram refilled per heartbeat tick never re-allocates. *)
val reset : t -> unit

(** [merge_into src ~into:dst] adds every cell of [src] (counts, sum,
    min/max, under/overflow) into [dst] in place; [src] is left
    untouched.  Allocation-free once [dst]'s bucket range covers
    [src]'s.  Safe against concurrent observers of either side (locks
    are taken in a global order).  Raises [Invalid_argument] when the
    two histograms disagree on [per_decade] or are the same histogram. *)
val merge_into : t -> into:t -> unit

(** [quantile t q] estimates the [q]-quantile ([q] clamped to [0, 1])
    from the bucket tallies: the upper bound of the first bucket whose
    cumulative count reaches [ceil (q * count)], clamped into the
    observed [min, max] range (underflow resolves to [min], overflow to
    [max]).  [None] while the histogram is empty.  Resolution is one
    bucket, i.e. a factor of [10^(1/per_decade)]. *)
val quantile : t -> float -> float option

(** {v
    { "name": ..., "count": n, "sum": s, "min": ..., "max": ...,
      "underflow": n, "overflow": n,
      "buckets": [ { "lo": ..., "hi": ..., "count": n }, ... ] }
    v}

    [min]/[max] are [null] while the histogram is empty. *)
val to_json : t -> Json.t
