(** A minimal JSON value type, emitter and parser — just enough for the
    stats output of {!Report} and the benchmark harness (including
    reading BENCH_*.json files back for [bench compare]), with no
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Write the value to [path] followed by a newline, creating or
    truncating the file. *)
val write_file : string -> t -> unit

(** Raised by {!of_string} and {!read_file} on malformed input; [pos] is
    a byte offset into the text. *)
exception Parse_error of { pos : int; msg : string }

(** Parse one JSON value (standard JSON; numbers without '.' or an
    exponent become [Int], others [Float]).  Exactly inverts
    {!to_string} up to the emitter's lossy cases: non-finite floats were
    written as [null] and parse back as [Null], and [\u] escapes beyond
    Latin-1 degrade to ['?'].  Raises {!Parse_error}. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** [read_file path] parses the file's entire contents as one JSON
    value.  Raises {!Parse_error} on malformed JSON and [Sys_error] on
    I/O failure. *)
val read_file : string -> t
