(** A minimal JSON value type and emitter — just enough for the stats
    output of {!Report} and the benchmark harness, with no external
    dependency.  Emission only; parsing is out of scope. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Write the value to [path] followed by a newline, creating or
    truncating the file. *)
val write_file : string -> t -> unit
