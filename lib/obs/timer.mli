(** Named accumulating wall/CPU timers.

    Like {!Counter}, timers register themselves globally at creation and
    are collected by {!Report.snapshot}.  Each {!time} call adds one
    sample: elapsed wall-clock seconds, elapsed process CPU seconds and
    a call count.  Samples are recorded under a per-timer mutex, so
    timing sections on concurrent domains is safe (no lost or torn
    samples). *)

type t

val make : string -> t
val name : t -> string

(** [time t f] runs [f ()], accumulating its wall and CPU time into [t]
    (also on exception). *)
val time : t -> (unit -> 'a) -> 'a

(** Current wall clock in seconds (arbitrary epoch); for callers that
    time phases manually. *)
val now : unit -> float

(** [record t ~wall ~cpu] adds one externally measured sample.  Negative
    durations (a non-monotonic wall clock stepping backwards during a
    timed section) are clamped to zero, so accumulated totals never
    decrease. *)
val record : t -> wall:float -> cpu:float -> unit

val wall_seconds : t -> float
val cpu_seconds : t -> float
val calls : t -> int
val reset : t -> unit
val all : unit -> t list
val find : string -> t option
