(* The flight recorder mirrors Trace's explicit-context discipline: a
   [null] recorder is [None], every recording entry point checks it
   first, and the disabled path neither locks nor allocates.  When
   enabled, Par.Pool opens a [recording] per map_chunked call, worker
   slots accumulate busy time into disjoint cells of a per-recording
   floatarray (no contention, no locks on the chunk path beyond the
   latency histogram's own mutex), and the completed ledger folds into
   its phase under the context lock. *)

type label_stats = {
  mutable l_ledgers : int;
  mutable l_items : int;
  mutable l_chunks : int;
  mutable l_par_wall_s : float;
}

type phase = {
  pname : string;
  latency : Histogram.t;  (** chunk latencies, seconds *)
  mutable p_jobs : int;  (** widest pool seen in this phase *)
  mutable p_ledgers : int;
  mutable p_items : int;
  mutable p_chunks : int;
  mutable p_par_wall_s : float;  (** wall spent inside map_chunked *)
  mutable p_wall_s : float;  (** phase wall noted by the driver *)
  mutable p_busy : floatarray;  (** per-slot busy seconds *)
  mutable p_chunks_per_slot : int array;
  mutable labels : (string * label_stats) list;  (** insertion order *)
}

(* Pool sizes are capped at 64 (Par.Pool.max_jobs), so a fixed 65-cell
   occupancy table covers every level; cell [k] counts chunk starts
   observed while [k] domains (including the starter) were inside an
   instrumented chunk anywhere in the process. *)
let occ_levels = 65

type ctx = {
  lock : Mutex.t;
  mutable phases : (string * phase) list;  (** insertion order *)
  gauge : int Atomic.t;
  occ : int Atomic.t array;
}

type t = ctx option

let null : t = None

let create () : t =
  Some
    {
      lock = Mutex.create ();
      phases = [];
      gauge = Atomic.make 0;
      occ = Array.init occ_levels (fun _ -> Atomic.make 0);
    }

let enabled = Option.is_some

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* A ledger label is "phase.detail" (or just "phase"): the prefix names
   the pipeline phase the ledger is attributed to, the full label keys
   the per-call-site breakdown within it. *)
let phase_of_label label =
  match String.index_opt label '.' with
  | Some i -> String.sub label 0 i
  | None -> label

(* Callers hold the lock. *)
let find_phase c name =
  match List.assoc_opt name c.phases with
  | Some p -> p
  | None ->
    let p =
      {
        pname = name;
        latency = Histogram.create (name ^ ".chunk_s");
        p_jobs = 1;
        p_ledgers = 0;
        p_items = 0;
        p_chunks = 0;
        p_par_wall_s = 0.;
        p_wall_s = 0.;
        p_busy = Float.Array.make 0 0.;
        p_chunks_per_slot = [||];
        labels = [];
      }
    in
    c.phases <- c.phases @ [ (name, p) ];
    p

let find_label p label =
  match List.assoc_opt label p.labels with
  | Some l -> l
  | None ->
    let l = { l_ledgers = 0; l_items = 0; l_chunks = 0; l_par_wall_s = 0. } in
    p.labels <- p.labels @ [ (label, l) ];
    l

type recording = {
  r_ctx : ctx;
  r_phase : phase;
  r_label : label_stats;
  r_jobs : int;
  r_items : int;
  r_chunks : int;
  r_t0 : float;
  r_busy : floatarray;  (** per-slot; slots write disjoint cells *)
  r_runs : int array;
}

let map_begin (t : t) ~label ~jobs ~items ~chunks =
  match t with
  | None -> None
  | Some c ->
    let phase, lbl =
      locked c (fun () ->
          let p = find_phase c (phase_of_label label) in
          (p, find_label p label))
    in
    Some
      {
        r_ctx = c;
        r_phase = phase;
        r_label = lbl;
        r_jobs = jobs;
        r_items = items;
        r_chunks = chunks;
        r_t0 = Timer.now ();
        r_busy = Float.Array.make jobs 0.;
        r_runs = Array.make jobs 0;
      }

let chunk_begin r =
  let o = 1 + Atomic.fetch_and_add r.r_ctx.gauge 1 in
  Atomic.incr (Array.unsafe_get r.r_ctx.occ (Int.min o (occ_levels - 1)));
  Timer.now ()

let chunk_end r ~slot ~t0 =
  Atomic.decr r.r_ctx.gauge;
  let dt = Float.max 0. (Timer.now () -. t0) in
  Float.Array.unsafe_set r.r_busy slot
    (Float.Array.unsafe_get r.r_busy slot +. dt);
  r.r_runs.(slot) <- r.r_runs.(slot) + 1;
  Histogram.observe r.r_phase.latency dt

let map_end r =
  let wall = Float.max 0. (Timer.now () -. r.r_t0) in
  let c = r.r_ctx in
  locked c (fun () ->
      let p = r.r_phase in
      p.p_jobs <- Int.max p.p_jobs r.r_jobs;
      p.p_ledgers <- p.p_ledgers + 1;
      p.p_items <- p.p_items + r.r_items;
      p.p_chunks <- p.p_chunks + r.r_chunks;
      p.p_par_wall_s <- p.p_par_wall_s +. wall;
      if Float.Array.length p.p_busy < r.r_jobs then begin
        let busy = Float.Array.make r.r_jobs 0. in
        Float.Array.blit p.p_busy 0 busy 0 (Float.Array.length p.p_busy);
        p.p_busy <- busy;
        let runs = Array.make r.r_jobs 0 in
        Array.blit p.p_chunks_per_slot 0 runs 0
          (Array.length p.p_chunks_per_slot);
        p.p_chunks_per_slot <- runs
      end;
      for slot = 0 to r.r_jobs - 1 do
        Float.Array.set p.p_busy slot
          (Float.Array.get p.p_busy slot +. Float.Array.get r.r_busy slot);
        p.p_chunks_per_slot.(slot) <-
          p.p_chunks_per_slot.(slot) + r.r_runs.(slot)
      done;
      let l = r.r_label in
      l.l_ledgers <- l.l_ledgers + 1;
      l.l_items <- l.l_items + r.r_items;
      l.l_chunks <- l.l_chunks + r.r_chunks;
      l.l_par_wall_s <- l.l_par_wall_s +. wall)

let note_phase (t : t) ~phase ~wall_s =
  match t with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        let p = find_phase c phase in
        p.p_wall_s <- p.p_wall_s +. Float.max 0. wall_s)

(* --- report ---------------------------------------------------------------- *)

type label_report = {
  label : string;
  ledgers : int;
  items : int;
  chunks : int;
  par_wall_s : float;
}

type phase_report = {
  phase : string;
  wall_s : float;
  par_wall_s : float;
  serial_s : float;
  serial_fraction : float;
  jobs : int;
  busy_s : float array;  (** per slot: 0 = caller, 1.. = workers *)
  busy_fraction : float array;  (** busy_s / par_wall_s per slot *)
  chunks_per_slot : int array;
  chunk_p50_s : float;
  chunk_p99_s : float;
  amdahl : (int * float) array;
  labels : label_report list;
}

type report = {
  jobs : int;
  wall_s : float;
  par_wall_s : float;
  serial_s : float;
  serial_fraction : float;
  amdahl : (int * float) array;
  occupancy : (int * int) array;  (** (busy domains, chunk-start samples) *)
  phases : phase_report list;
}

(* Amdahl's bound for measured serial fraction [s]: the projected
   speedup of the whole run at [n] domains is 1 / (s + (1 - s) / n). *)
let amdahl_points = [| 4; 8; 16 |]

let amdahl_of s =
  Array.map
    (fun n -> (n, 1. /. (s +. ((1. -. s) /. float_of_int n))))
    amdahl_points

let serial_split ~wall ~par =
  let wall = Float.max wall par in
  let serial = Float.max 0. (wall -. par) in
  let fraction = if wall > 0. then serial /. wall else 1. in
  (wall, serial, fraction)

let report (t : t) =
  match t with
  | None -> None
  | Some c ->
    let phases =
      locked c (fun () ->
          List.map
            (fun (_, p) ->
              (* The noted wall is authoritative; a phase that only ever
                 ran maps (nobody noted it) counts as fully parallel. *)
              let wall, serial, fraction =
                serial_split ~wall:p.p_wall_s ~par:p.p_par_wall_s
              in
              let slots = Float.Array.length p.p_busy in
              let busy_s =
                Array.init slots (fun i -> Float.Array.get p.p_busy i)
              in
              let busy_fraction =
                Array.map
                  (fun b ->
                    if p.p_par_wall_s > 0. then b /. p.p_par_wall_s else 0.)
                  busy_s
              in
              let q x =
                Option.value ~default:0. (Histogram.quantile p.latency x)
              in
              {
                phase = p.pname;
                wall_s = wall;
                par_wall_s = p.p_par_wall_s;
                serial_s = serial;
                serial_fraction = fraction;
                jobs = p.p_jobs;
                busy_s;
                busy_fraction;
                chunks_per_slot = Array.copy p.p_chunks_per_slot;
                chunk_p50_s = q 0.5;
                chunk_p99_s = q 0.99;
                amdahl = amdahl_of fraction;
                labels =
                  List.map
                    (fun (label, l) ->
                      {
                        label;
                        ledgers = l.l_ledgers;
                        items = l.l_items;
                        chunks = l.l_chunks;
                        par_wall_s = l.l_par_wall_s;
                      })
                    p.labels;
              })
            c.phases)
    in
    let wall =
      List.fold_left (fun a (p : phase_report) -> a +. p.wall_s) 0. phases
    in
    let par =
      List.fold_left (fun a (p : phase_report) -> a +. p.par_wall_s) 0. phases
    in
    let wall, serial, fraction = serial_split ~wall ~par in
    let occupancy =
      Array.to_list c.occ
      |> List.mapi (fun level a -> (level, Atomic.get a))
      |> List.filter (fun (_, n) -> n > 0)
      |> Array.of_list
    in
    Some
      {
        jobs =
          List.fold_left
            (fun a (p : phase_report) -> Int.max a p.jobs)
            1 phases;
        wall_s = wall;
        par_wall_s = par;
        serial_s = serial;
        serial_fraction = fraction;
        amdahl = amdahl_of fraction;
        occupancy;
        phases;
      }

let json_of_amdahl a =
  Json.Obj
    (Array.to_list
       (Array.map (fun (n, s) -> (string_of_int n, Json.Float s)) a))

let mean arr =
  let n = Array.length arr in
  if n = 0 then 0.
  else Array.fold_left ( +. ) 0. arr /. float_of_int n

let json_of_phase (p : phase_report) =
  let busy_mean = mean p.busy_fraction in
  Json.Obj
    [
      ("phase", Json.String p.phase);
      ("wall_s", Json.Float p.wall_s);
      ("par_wall_s", Json.Float p.par_wall_s);
      ("serial_s", Json.Float p.serial_s);
      ("serial_fraction", Json.Float p.serial_fraction);
      ("jobs", Json.Int p.jobs);
      ( "busy_s",
        Json.List (Array.to_list (Array.map (fun b -> Json.Float b) p.busy_s))
      );
      ( "busy_fraction",
        Json.List
          (Array.to_list (Array.map (fun b -> Json.Float b) p.busy_fraction))
      );
      ("busy_fraction_mean", Json.Float busy_mean);
      ("idle_fraction", Json.Float (Float.max 0. (1. -. busy_mean)));
      ( "chunks_per_slot",
        Json.List
          (Array.to_list (Array.map (fun n -> Json.Int n) p.chunks_per_slot))
      );
      ("chunk_latency_p50_s", Json.Float p.chunk_p50_s);
      ("chunk_latency_p99_s", Json.Float p.chunk_p99_s);
      ("amdahl", json_of_amdahl p.amdahl);
      ( "labels",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("label", Json.String l.label);
                   ("ledgers", Json.Int l.ledgers);
                   ("items", Json.Int l.items);
                   ("chunks", Json.Int l.chunks);
                   ("par_wall_s", Json.Float l.par_wall_s);
                 ])
             p.labels) );
    ]

let json_of_report (r : report) =
  Json.Obj
    [
      ("jobs", Json.Int r.jobs);
      ("wall_s", Json.Float r.wall_s);
      ("par_wall_s", Json.Float r.par_wall_s);
      ("serial_s", Json.Float r.serial_s);
      ("serial_fraction", Json.Float r.serial_fraction);
      ("amdahl", json_of_amdahl r.amdahl);
      ( "occupancy",
        Json.List
          (Array.to_list
             (Array.map
                (fun (level, n) ->
                  Json.Obj
                    [ ("busy", Json.Int level); ("samples", Json.Int n) ])
                r.occupancy)) );
      ("phases", Json.List (List.map json_of_phase r.phases));
    ]
