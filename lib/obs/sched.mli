(** Parallel-efficiency flight recorder.

    [Sched] answers "where do the domains sit idle?" for the clustered
    routing pipeline.  {!Par.Pool.map_chunked} opens a {!recording} per
    call when handed an enabled recorder, timestamps every chunk on the
    domain that ran it, and folds the finished per-call ledger into the
    recorder under a phase name derived from the ledger label
    ("engine.rank" and "engine.commit" both land in phase "engine").
    Drivers note phase walls with {!note_phase}; {!report} then derives,
    per phase, the wall spent inside parallel maps, the serial residue
    outside them, per-slot busy time and chunk counts, chunk-latency
    quantiles, and Amdahl-projected speedups at 4/8/16 domains from the
    measured serial fraction.

    Discipline is identical to {!Trace}: {!null} is free, every entry
    point checks {!enabled} first, and a disabled recorder adds no
    locking, no allocation and no clock reads to the hot path.  The
    recorder observes scheduling only — it never influences chunk
    assignment — so routed trees are bit-identical with the recorder on
    or off (the [sched_identity] oracle in [Check.Oracle] enforces
    this). *)

type t

(** The disabled recorder: recording through it is a no-op. *)
val null : t

val create : unit -> t
val enabled : t -> bool

(** {1 Recording — called by [Par.Pool]} *)

(** One in-flight [map_chunked] ledger.  Slots index the domains of the
    pool: slot 0 is the calling domain, slots 1.. its workers.  Each
    slot writes only its own cells, so recording needs no locks on the
    chunk path. *)
type recording

(** Open a ledger; [None] when the recorder is disabled.  [label] names
    the call site as ["phase.detail"]; [jobs] is the pool width,
    [items]/[chunks] the input split. *)
val map_begin :
  t -> label:string -> jobs:int -> items:int -> chunks:int ->
  recording option

(** Timestamp a chunk start (also samples pool occupancy); pass the
    result to {!chunk_end}. *)
val chunk_begin : recording -> float

(** Account one finished chunk to [slot]. *)
val chunk_end : recording -> slot:int -> t0:float -> unit

(** Close the ledger and fold it into its phase. *)
val map_end : recording -> unit

(** Attribute [wall_s] seconds of driver-measured wall clock to
    [phase]; accumulates across calls.  The phase wall is what the
    serial fraction is measured against — time inside it but outside
    any recorded map is serial residue. *)
val note_phase : t -> phase:string -> wall_s:float -> unit

(** {1 Reporting} *)

type label_report = {
  label : string;
  ledgers : int;  (** map_chunked calls under this label *)
  items : int;
  chunks : int;
  par_wall_s : float;
}

type phase_report = {
  phase : string;
  wall_s : float;  (** driver-noted wall (>= [par_wall_s]) *)
  par_wall_s : float;  (** wall spent inside recorded maps *)
  serial_s : float;  (** [wall_s - par_wall_s] *)
  serial_fraction : float;
  jobs : int;  (** widest pool seen in the phase *)
  busy_s : float array;  (** per slot: 0 = caller, 1.. = workers *)
  busy_fraction : float array;  (** [busy_s / par_wall_s] per slot *)
  chunks_per_slot : int array;
  chunk_p50_s : float;
  chunk_p99_s : float;
  amdahl : (int * float) array;  (** projected speedup at 4/8/16 *)
  labels : label_report list;
}

type report = {
  jobs : int;
  wall_s : float;
  par_wall_s : float;
  serial_s : float;
  serial_fraction : float;
  amdahl : (int * float) array;
  occupancy : (int * int) array;
      (** (concurrently busy domains, chunk-start samples) *)
  phases : phase_report list;
}

(** [None] when the recorder is disabled. *)
val report : t -> report option

val json_of_report : report -> Json.t
