(** Allocation counters sampled from [Gc.quick_stat], for attributing
    garbage-collector work to a phase of the program.

    The intended pattern is differential: [sample] before and after the
    region of interest, then [diff after before].  Counters are those of
    the calling domain (plus any domains that terminated before the
    sample), so a pool-parallel phase under-reports worker allocation —
    the numbers still gate the calling domain's hot path, which is what
    the engine's allocation budget is about. *)

type t = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;  (** words promoted minor -> major *)
  major_words : float;  (** words allocated in the major heap, incl. promotions *)
  minor_collections : int;  (** completed minor collections *)
  major_collections : int;  (** completed major cycles *)
}

val zero : t

(** Counters since program start, as seen from the calling domain. *)
val sample : unit -> t

(** [diff a b] is the per-field difference [a - b]: the GC work between
    sample [b] (earlier) and sample [a] (later). *)
val diff : t -> t -> t

(** [Gc.quick_stat]'s [top_heap_words]: the largest major-heap size the
    process has reached, in words.  A high-water mark, not a counter —
    it never decreases, so it is reported absolutely (per benchmark
    point) rather than differentially. *)
val top_heap_words : unit -> int

val json : t -> Json.t
