type t = {
  name : string;
  per_decade : int;
  lock : Mutex.t;
  buckets : (int, int) Hashtbl.t;  (** bucket index -> count *)
  mutable count : int;
  mutable sum : float;
  mutable underflow : int;
  mutable overflow : int;
  mutable min : float;
  mutable max : float;
}

let create ?(per_decade = 8) name =
  {
    name;
    per_decade = Int.max 1 per_decade;
    lock = Mutex.create ();
    buckets = Hashtbl.create 32;
    count = 0;
    sum = 0.;
    underflow = 0;
    overflow = 0;
    min = Float.infinity;
    max = Float.neg_infinity;
  }

let name t = t.name

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* floor of per_decade * log10 v.  Float.log10 is exact enough for
   observability bucketing; values landing within one ulp of a bucket
   boundary may fall either side, which only moves them between two
   adjacent buckets of a report. *)
let index t v =
  int_of_float (Float.floor (float_of_int t.per_decade *. Float.log10 v))

let observe t v =
  if not (Float.is_nan v) then
    locked t (fun () ->
        t.count <- t.count + 1;
        t.sum <- t.sum +. v;
        t.min <- Float.min t.min v;
        t.max <- Float.max t.max v;
        if v <= 0. then t.underflow <- t.underflow + 1
        else if v = Float.infinity then t.overflow <- t.overflow + 1
        else begin
          let i = index t v in
          Hashtbl.replace t.buckets i
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.buckets i))
        end)

let count t = locked t (fun () -> t.count)
let sum t = locked t (fun () -> t.sum)
let underflow t = locked t (fun () -> t.underflow)
let overflow t = locked t (fun () -> t.overflow)

let bound t i = Float.pow 10. (float_of_int i /. float_of_int t.per_decade)

let buckets t =
  locked t (fun () ->
      Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.buckets []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map (fun (i, n) -> (bound t i, bound t (i + 1), n)))

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.buckets;
      t.count <- 0;
      t.sum <- 0.;
      t.underflow <- 0;
      t.overflow <- 0;
      t.min <- Float.infinity;
      t.max <- Float.neg_infinity)

let to_json t =
  let bs = buckets t in
  locked t (fun () ->
      let extremum v = if t.count = 0 then Json.Null else Json.Float v in
      Json.Obj
        [
          ("name", Json.String t.name);
          ("count", Json.Int t.count);
          ("sum", Json.Float t.sum);
          ("min", extremum t.min);
          ("max", extremum t.max);
          ("underflow", Json.Int t.underflow);
          ("overflow", Json.Int t.overflow);
          ( "buckets",
            Json.List
              (List.map
                 (fun (lo, hi, n) ->
                   Json.Obj
                     [
                       ("lo", Json.Float lo);
                       ("hi", Json.Float hi);
                       ("count", Json.Int n);
                     ])
                 bs) );
        ])
