(* Buckets live in a dense [counts] array: [counts.(k)] is the tally of
   bucket index [base + k].  The array grows (with slack) whenever an
   observation lands outside the covered index range, so in steady state
   — once the value range has been seen — [observe], [merge_into] and
   [reset] run straight-line with zero allocation.  That property is
   load-bearing: the progress heartbeat merges scratch histograms every
   tick, and the scheduler ledger observes a chunk latency per chunk on
   the parallel hot path.  Float aggregates (sum/min/max) live in a
   [floatarray] so updating them never boxes. *)

(* Distinct ids give [merge_into] a total order to take the two locks
   in, making concurrent cross-merges deadlock-free. *)
let next_id = Atomic.make 0

type t = {
  name : string;
  per_decade : int;
  id : int;
  lock : Mutex.t;
  mutable base : int;  (** bucket index of [counts.(0)] *)
  mutable counts : int array;  (** dense tallies; [[||]] until first hit *)
  mutable count : int;
  mutable underflow : int;
  mutable overflow : int;
  fl : floatarray;  (** 0: sum, 1: min, 2: max — unboxed stores *)
}

let create ?(per_decade = 8) name =
  let fl = Float.Array.create 3 in
  Float.Array.set fl 0 0.;
  Float.Array.set fl 1 Float.infinity;
  Float.Array.set fl 2 Float.neg_infinity;
  {
    name;
    per_decade = Int.max 1 per_decade;
    id = Atomic.fetch_and_add next_id 1;
    lock = Mutex.create ();
    base = 0;
    counts = [||];
    count = 0;
    underflow = 0;
    overflow = 0;
    fl;
  }

let name t = t.name

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* floor of per_decade * log10 v.  Float.log10 is exact enough for
   observability bucketing; values landing within one ulp of a bucket
   boundary may fall either side, which only moves them between two
   adjacent buckets of a report. *)
let index t v =
  int_of_float (Float.floor (float_of_int t.per_decade *. Float.log10 v))

(* Grow [counts] to cover bucket index [i].  Called with the lock held;
   allocates only on a range miss (a few times early in a histogram's
   life, then never again). *)
let ensure t i =
  let len = Array.length t.counts in
  if len = 0 then begin
    t.base <- i - 2;
    t.counts <- Array.make 8 0
  end
  else if i < t.base || i >= t.base + len then begin
    let lo = Int.min i t.base - 4 in
    let hi = Int.max i (t.base + len - 1) + 4 in
    let fresh = Array.make (hi - lo + 1) 0 in
    Array.blit t.counts 0 fresh (t.base - lo) len;
    t.base <- lo;
    t.counts <- fresh
  end

(* Straight-line on purpose: no [Fun.protect] closure, no option — the
   body cannot raise (growth aside, which only allocates), so unlock is
   always reached and a steady-state call allocates nothing. *)
let observe t v =
  if not (Float.is_nan v) then begin
    Mutex.lock t.lock;
    t.count <- t.count + 1;
    Float.Array.unsafe_set t.fl 0 (Float.Array.unsafe_get t.fl 0 +. v);
    if v < Float.Array.unsafe_get t.fl 1 then Float.Array.unsafe_set t.fl 1 v;
    if v > Float.Array.unsafe_get t.fl 2 then Float.Array.unsafe_set t.fl 2 v;
    if v <= 0. then t.underflow <- t.underflow + 1
    else if v = Float.infinity then t.overflow <- t.overflow + 1
    else begin
      let i = index t v in
      ensure t i;
      let k = i - t.base in
      Array.unsafe_set t.counts k (1 + Array.unsafe_get t.counts k)
    end;
    Mutex.unlock t.lock
  end

let count t = locked t (fun () -> t.count)
let sum t = locked t (fun () -> Float.Array.get t.fl 0)
let underflow t = locked t (fun () -> t.underflow)
let overflow t = locked t (fun () -> t.overflow)

let bound t i = Float.pow 10. (float_of_int i /. float_of_int t.per_decade)

let buckets t =
  locked t (fun () ->
      let acc = ref [] in
      for k = Array.length t.counts - 1 downto 0 do
        let n = t.counts.(k) in
        if n > 0 then begin
          let i = t.base + k in
          acc := (bound t i, bound t (i + 1), n) :: !acc
        end
      done;
      !acc)

(* Keeps the (grown) bucket array, so a scratch histogram that is reset
   and refilled every heartbeat tick stays allocation-free. *)
let reset t =
  Mutex.lock t.lock;
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.underflow <- 0;
  t.overflow <- 0;
  Float.Array.unsafe_set t.fl 0 0.;
  Float.Array.unsafe_set t.fl 1 Float.infinity;
  Float.Array.unsafe_set t.fl 2 Float.neg_infinity;
  Mutex.unlock t.lock

let merge_into src ~into:dst =
  if src == dst then invalid_arg "Histogram.merge_into: src is dst";
  if src.per_decade <> dst.per_decade then
    invalid_arg "Histogram.merge_into: per_decade mismatch";
  if src.id < dst.id then begin
    Mutex.lock src.lock;
    Mutex.lock dst.lock
  end
  else begin
    Mutex.lock dst.lock;
    Mutex.lock src.lock
  end;
  if src.count > 0 then begin
    dst.count <- dst.count + src.count;
    dst.underflow <- dst.underflow + src.underflow;
    dst.overflow <- dst.overflow + src.overflow;
    Float.Array.unsafe_set dst.fl 0
      (Float.Array.unsafe_get dst.fl 0 +. Float.Array.unsafe_get src.fl 0);
    if Float.Array.unsafe_get src.fl 1 < Float.Array.unsafe_get dst.fl 1 then
      Float.Array.unsafe_set dst.fl 1 (Float.Array.unsafe_get src.fl 1);
    if Float.Array.unsafe_get src.fl 2 > Float.Array.unsafe_get dst.fl 2 then
      Float.Array.unsafe_set dst.fl 2 (Float.Array.unsafe_get src.fl 2);
    let len = Array.length src.counts in
    if len > 0 then begin
      ensure dst src.base;
      ensure dst (src.base + len - 1);
      for k = 0 to len - 1 do
        let c = Array.unsafe_get src.counts k in
        if c <> 0 then begin
          let j = src.base + k - dst.base in
          Array.unsafe_set dst.counts j (c + Array.unsafe_get dst.counts j)
        end
      done
    end
  end;
  Mutex.unlock src.lock;
  Mutex.unlock dst.lock

let quantile t q =
  locked t (fun () ->
      if t.count = 0 then None
      else begin
        let q = Float.max 0. (Float.min 1. q) in
        let target =
          Int.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count)))
        in
        let vmin = Float.Array.get t.fl 1 in
        let vmax = Float.Array.get t.fl 2 in
        if t.underflow >= target then Some vmin
        else begin
          let acc = ref t.underflow in
          let res = ref None in
          let k = ref 0 in
          let len = Array.length t.counts in
          while !res = None && !k < len do
            let c = t.counts.(!k) in
            if c > 0 then begin
              acc := !acc + c;
              if !acc >= target then
                (* Clamp the bucket's upper bound into the observed
                   range so single-valued histograms answer exactly. *)
                res :=
                  Some
                    (Float.max vmin
                       (Float.min (bound t (t.base + !k + 1)) vmax))
            end;
            incr k
          done;
          match !res with None -> Some vmax | some -> some
        end
      end)

let to_json t =
  let bs = buckets t in
  locked t (fun () ->
      let extremum i =
        if t.count = 0 then Json.Null else Json.Float (Float.Array.get t.fl i)
      in
      Json.Obj
        [
          ("name", Json.String t.name);
          ("count", Json.Int t.count);
          ("sum", Json.Float (Float.Array.get t.fl 0));
          ("min", extremum 1);
          ("max", extremum 2);
          ("underflow", Json.Int t.underflow);
          ("overflow", Json.Int t.overflow);
          ( "buckets",
            Json.List
              (List.map
                 (fun (lo, hi, n) ->
                   Json.Obj
                     [
                       ("lo", Json.Float lo);
                       ("hi", Json.Float hi);
                       ("count", Json.Int n);
                     ])
                 bs) );
        ])
