(** Live run heartbeat.

    An opt-in stderr narrator for long clustered routes: the driver
    announces {!phase} changes, the cluster planner and the repair pass
    announce region totals ({!add_regions}) and completions
    ({!region_done}) per hierarchy depth, and the reporter prints a
    throttled heartbeat line carrying the phase, cumulative wall clock,
    a live heap watermark (from [Gc.quick_stat]'s [top_heap_words]),
    per-depth region completion counts, and an ETA extrapolated from
    the completed-region ratio of the busiest level.

    Heartbeat lines are strictly space-separated [key=value] tokens:

    {v
    progress phase=engine wall_s=12.4 heap_words=1234567 eta_s=3.2 regions0=3/8 regions1=12/64
    v}

    The {!null} reporter is free: every entry point is a no-op through
    it, so pipeline code calls in unconditionally.  Completions may
    arrive from worker domains; all entry points are thread-safe. *)

type t

val null : t

(** [create ?interval ?out ()] makes a live reporter printing to [out]
    (default [stderr]) at most once per [interval] seconds (default 1;
    phase changes and {!finish} always print). *)
val create : ?interval:float -> ?out:out_channel -> unit -> t

val enabled : t -> bool

(** Enter a named phase: resets the region counters and prints
    immediately. *)
val phase : t -> string -> unit

(** Announce [n] more regions at hierarchy [depth] (0 = top). *)
val add_regions : t -> depth:int -> int -> unit

(** One region at [depth] completed; prints if the interval elapsed. *)
val region_done : t -> depth:int -> unit

(** Opportunistic heartbeat from any long-running loop. *)
val tick : t -> unit

(** Print a final [phase=done] line. *)
val finish : t -> unit

(** Highest [top_heap_words] sampled so far; [None] when disabled. *)
val heap_watermark_words : t -> int option
