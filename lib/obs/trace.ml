type phase = Instant | Complete of float

type event = {
  seq : int;
  domain : int;
  ts : float;
  name : string;
  cat : string;
  phase : phase;
  args : (string * Json.t) list;
}

type t = {
  enabled : bool;
  seq : int Atomic.t;
  epoch : float;  (** gettimeofday at creation; event [ts] are relative *)
  custom : (event -> unit) option;
  lock : Mutex.t;
  (* One reversed event list per emitting domain; merged and seq-sorted
     by [events].  The table itself is only touched under [lock]. *)
  buffers : (int, event list ref) Hashtbl.t;
  mutable manifest_fields : (string * Json.t) list;  (** first-set order *)
  mutable journal_rev : Json.t list;
  hist_tbl : (string, Histogram.t) Hashtbl.t;
  mutable hist_names_rev : string list;
  dummy_hist : Histogram.t;  (** returned by [histogram] when disabled *)
}

let make ~enabled ~custom =
  {
    enabled;
    seq = Atomic.make 0;
    epoch = Unix.gettimeofday ();
    custom;
    lock = Mutex.create ();
    buffers = Hashtbl.create 8;
    manifest_fields = [];
    journal_rev = [];
    hist_tbl = Hashtbl.create 8;
    hist_names_rev = [];
    dummy_hist = Histogram.create "disabled";
  }

let null = make ~enabled:false ~custom:None
let create ?sink () = make ~enabled:true ~custom:sink
let enabled t = t.enabled

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let emit t ev =
  match t.custom with
  | Some f -> f ev
  | None ->
    locked t (fun () ->
        match Hashtbl.find_opt t.buffers ev.domain with
        | Some l -> l := ev :: !l
        | None -> Hashtbl.add t.buffers ev.domain (ref [ ev ]))

let now t = Float.max 0. (Unix.gettimeofday () -. t.epoch)

let instant t ?(cat = "") ?(args = []) name =
  if t.enabled then begin
    let seq = Atomic.fetch_and_add t.seq 1 in
    let domain = (Domain.self () :> int) in
    emit t { seq; domain; ts = now t; name; cat; phase = Instant; args }
  end

let span t ?(cat = "") ?(args = []) name f =
  if not t.enabled then f ()
  else begin
    (* Sequence and timestamp are taken before [f]: a parent span orders
       before everything emitted inside it. *)
    let seq = Atomic.fetch_and_add t.seq 1 in
    let domain = (Domain.self () :> int) in
    let ts = now t in
    Fun.protect
      ~finally:(fun () ->
        let dur = Float.max 0. (now t -. ts) in
        emit t { seq; domain; ts; name; cat; phase = Complete dur; args })
      f
  end

let merge_manifest t fields =
  if t.enabled then
    locked t (fun () ->
        List.iter
          (fun (k, v) ->
            if List.mem_assoc k t.manifest_fields then
              t.manifest_fields <-
                List.map
                  (fun (k', v') -> if k' = k then (k', v) else (k', v'))
                  t.manifest_fields
            else t.manifest_fields <- t.manifest_fields @ [ (k, v) ])
          fields)

let manifest t = Json.Obj (locked t (fun () -> t.manifest_fields))

let journal t record =
  if t.enabled then
    locked t (fun () -> t.journal_rev <- record :: t.journal_rev)

let histogram t ?per_decade name =
  if not t.enabled then t.dummy_hist
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.hist_tbl name with
        | Some h -> h
        | None ->
          let h = Histogram.create ?per_decade name in
          Hashtbl.add t.hist_tbl name h;
          t.hist_names_rev <- name :: t.hist_names_rev;
          h)

let events t =
  locked t (fun () ->
      Hashtbl.fold (fun _ l acc -> List.rev_append !l acc) t.buffers []
      |> List.sort (fun (a : event) (b : event) -> Int.compare a.seq b.seq))

let journal_records t = locked t (fun () -> List.rev t.journal_rev)

let histograms t =
  locked t (fun () ->
      List.rev_map (fun n -> Hashtbl.find t.hist_tbl n) t.hist_names_rev)

let micros s = Json.Float (s *. 1e6)

let to_chrome t =
  let evs = events t in
  (* Clamp timestamps monotone in sequence order: a wall-clock step must
     not make the exported trace run backwards. *)
  let last = ref 0. in
  let items =
    List.map
      (fun ev ->
        let ts = Float.max ev.ts !last in
        last := ts;
        let phase =
          match ev.phase with
          | Instant -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
          | Complete dur -> [ ("ph", Json.String "X"); ("dur", micros dur) ]
        in
        let args =
          match ev.args with [] -> [] | a -> [ ("args", Json.Obj a) ]
        in
        Json.Obj
          ([
             ("name", Json.String ev.name);
             ("cat", Json.String (if ev.cat = "" then "default" else ev.cat));
             ("pid", Json.Int 1);
             ("tid", Json.Int ev.domain);
             ("ts", micros ts);
           ]
          @ phase @ args))
      evs
  in
  Json.Obj
    [
      ("traceEvents", Json.List items);
      ("displayTimeUnit", Json.String "ms");
      ("otherData", manifest t);
      ("histograms", Json.List (List.map Histogram.to_json (histograms t)));
    ]

let write_chrome path t = Json.write_file path (to_chrome t)

let with_type ty = function
  | Json.Obj fields when not (List.mem_assoc "type" fields) ->
    Json.Obj (("type", Json.String ty) :: fields)
  | v -> v

let write_journal path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let line v =
        output_string oc (Json.to_string v);
        output_char oc '\n'
      in
      line (with_type "manifest" (manifest t));
      List.iter line (journal_records t);
      match histograms t with
      | [] -> ()
      | hs ->
        line
          (Json.Obj
             [
               ("type", Json.String "histograms");
               ("histograms", Json.List (List.map Histogram.to_json hs));
             ]))
