type t = { name : string; n : int Atomic.t }

(* The registry is CAS-updated so counters created from racing domains
   are never lost, though in practice [make] runs at module init on the
   main domain. *)
let registry : t list Atomic.t = Atomic.make []

let make name =
  let c = { name; n = Atomic.make 0 } in
  let rec register () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (c :: old)) then register ()
  in
  register ();
  c

let name c = c.name
let incr c = Atomic.incr c.n
let add c k = ignore (Atomic.fetch_and_add c.n k)
let value c = Atomic.get c.n
let reset c = Atomic.set c.n 0
let all () = List.rev (Atomic.get registry)
let find name = List.find_opt (fun c -> c.name = name) (all ())
