type t = { name : string; mutable n : int }

let registry : t list ref = ref []

let make name =
  let c = { name; n = 0 } in
  registry := c :: !registry;
  c

let name c = c.name
let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let value c = c.n
let reset c = c.n <- 0
let all () = List.rev !registry
let find name = List.find_opt (fun c -> c.name = name) (all ())
