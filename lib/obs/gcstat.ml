type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero =
  {
    minor_words = 0.;
    promoted_words = 0.;
    major_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let sample () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let diff a b =
  {
    minor_words = a.minor_words -. b.minor_words;
    promoted_words = a.promoted_words -. b.promoted_words;
    major_words = a.major_words -. b.major_words;
    minor_collections = a.minor_collections - b.minor_collections;
    major_collections = a.major_collections - b.major_collections;
  }

(* The process-lifetime major-heap high-water mark.  Not part of [t]:
   a running maximum has no meaningful differential, so callers record
   the absolute value per phase instead of diffing it. *)
let top_heap_words () = (Gc.quick_stat ()).Gc.top_heap_words

let json t =
  Json.Obj
    [
      ("minor_words", Json.Float t.minor_words);
      ("promoted_words", Json.Float t.promoted_words);
      ("major_words", Json.Float t.major_words);
      ("minor_collections", Json.Int t.minor_collections);
      ("major_collections", Json.Int t.major_collections);
    ]
