(** Named monotonic counters.

    Counters are created once at module-initialization time (they
    register themselves in a global registry) and bumped from hot paths;
    a bump is a single atomic fetch-and-add, cheap enough for
    per-candidate instrumentation inside the routing kernels and safe to
    issue concurrently from worker domains (increments are never lost,
    so totals are scheduling-independent).  {!Report.snapshot} collects
    every registered counter. *)

type t

(** [make name] creates and registers a counter starting at 0.  Names
    are dotted paths ("dme.engine.trial_merges"); they should be unique
    — {!find} returns the first registration. *)
val make : string -> t

val name : t -> string
val incr : t -> unit
val add : t -> int -> unit
val value : t -> int

(** Reset to 0 (the registration is kept). *)
val reset : t -> unit

(** All registered counters, in registration order. *)
val all : unit -> t list

val find : string -> t option
