(** Structured tracing: spans, instant events, a per-round JSONL journal
    and run-level histograms, exportable as Chrome trace-event JSON
    (loadable in Perfetto / [chrome://tracing]).

    A trace context is either the shared {!null} context — disabled, and
    every operation on it a no-op — or an enabled context created by
    {!create}.  Emission is safe from any domain: events are appended to
    per-domain buffers (one mutex-guarded list per emitting domain) and
    merged at read time, ordered by a process-wide atomic {e sequence
    counter} rather than by wall time, so the merged order is total and
    stable even when domain clocks disagree or step.  Events emitted
    from serial code are therefore in deterministic order; events racing
    on worker domains interleave by acquisition order of the counter.

    Hot paths must guard emission behind {!enabled} so the disabled case
    allocates nothing:

    {[
      if Obs.Trace.enabled trace then
        Obs.Trace.instant trace ~cat:"dme" ~args:[ ("round", Int r) ] "merge"
    ]}

    Timestamps come from [Unix.gettimeofday] relative to the context's
    creation, clamped to be non-negative at emission and to be
    non-decreasing (in sequence order) at export, so exported traces are
    monotone even across clock steps. *)

type phase =
  | Instant
  | Complete of float
      (** a finished span; the payload is its duration in seconds *)

type event = {
  seq : int;  (** process-wide emission order; spans use their begin *)
  domain : int;  (** numeric id of the emitting domain *)
  ts : float;  (** seconds since context creation (span: begin time) *)
  name : string;
  cat : string;
  phase : phase;
  args : (string * Json.t) list;  (** typed key/value payload *)
}

type t

(** The disabled context: {!enabled} is [false], every emitter returns
    without allocating, every reader reports an empty trace. *)
val null : t

(** A fresh enabled context.  With [sink], every event is handed to the
    callback instead of being buffered (the callback must be safe to
    call from worker domains); {!events} is then empty.  Journal
    records, the manifest and histograms are always kept in the
    context. *)
val create : ?sink:(event -> unit) -> unit -> t

val enabled : t -> bool

(** Emit an instant event.  [cat] defaults to [""]. *)
val instant :
  t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit

(** [span t name f] runs [f ()] and emits one {!Complete} event carrying
    the elapsed wall time (also on exception).  The event's sequence
    number is taken {e before} [f] runs, so a parent span always orders
    before the events inside it. *)
val span :
  t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Merge fields into the run manifest, replacing earlier values of the
    same key (first-set key order is kept). *)
val merge_manifest : t -> (string * Json.t) list -> unit

(** The manifest as one JSON object. *)
val manifest : t -> Json.t

(** Append one record to the JSONL journal (main-domain callers only:
    record order is append order). *)
val journal : t -> Json.t -> unit

(** The histogram registered under [name] in this context, created on
    first use (creation-order is kept for {!histograms}).  On a disabled
    context this returns a shared throwaway histogram, but hot paths
    should not rely on that — guard with {!enabled}. *)
val histogram : t -> ?per_decade:int -> string -> Histogram.t

(** All buffered events merged across domains, ascending by [seq]. *)
val events : t -> event list

(** Journal records in append order. *)
val journal_records : t -> Json.t list

(** Histograms in creation order. *)
val histograms : t -> Histogram.t list

(** Chrome trace-event JSON: an object with a ["traceEvents"] list
    (spans as ["ph" = "X"] complete events, instants as ["ph" = "i"],
    [tid] = emitting domain, timestamps in microseconds clamped
    monotone), the manifest under ["otherData"], and the histograms
    under ["histograms"]. *)
val to_chrome : t -> Json.t

val write_chrome : string -> t -> unit

(** Write the JSONL journal: one ["manifest"] record, every {!journal}
    record in order, then one ["histograms"] record (omitted when no
    histogram was touched).  Every line is one self-contained JSON
    object. *)
val write_journal : string -> t -> unit
