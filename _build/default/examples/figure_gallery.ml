(* Reconstructions of the thesis' Figures 1-5 as concrete, measurable
   instances, with an ASCII rendering of the Fig. 3 merging region.

   Run with: dune exec examples/figure_gallery.exe *)

module Octagon = Geometry.Octagon
module Pt = Geometry.Pt

(* Coarse ASCII raster of an octagon, for eyeballing merging regions. *)
let render_region region ~x0 ~x1 ~y0 ~y1 =
  let cols = 60 and rows = 18 in
  for row = rows - 1 downto 0 do
    let y = y0 +. ((y1 -. y0) *. (float_of_int row +. 0.5) /. float_of_int rows) in
    let line =
      String.init cols (fun col ->
          let x =
            x0 +. ((x1 -. x0) *. (float_of_int col +. 0.5) /. float_of_int cols)
          in
          if Octagon.contains region (Pt.make x y) then '#' else '.')
    in
    print_endline line
  done

let () =
  Experiments.Figures.print_all ();
  let f3 = Experiments.Figures.fig3 () in
  Format.printf
    "@.Fig 3 merging region rasterized (the shaded SDR between the two@.merging segments; '#' = admissible merge-node locations):@.@.";
  render_region f3.region ~x0:(-500.) ~x1:5500. ~y0:0. ~y1:3000.;
  Format.printf "@.vertices:@.";
  List.iter (fun v -> Format.printf "  %a@." Pt.pp v) f3.vertices
