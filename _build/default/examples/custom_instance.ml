(* Driving the lower-level engine API directly: build subtrees, inspect
   merging regions and delay windows, choose a custom configuration, and
   embed manually.  Useful as a template for experimenting with new merge
   heuristics.

   Run with: dune exec examples/custom_instance.exe *)

module Pt = Geometry.Pt
module Octagon = Geometry.Octagon
open Clocktree

let () =
  let sink id x y group = Sink.make ~id ~loc:(Pt.make x y) ~cap:30. ~group in
  let sinks =
    [| sink 0 0. 0. 0; sink 1 4000. 0. 0; sink 2 1000. 3000. 1; sink 3 5000. 3000. 1 |]
  in
  let inst = Instance.make ~bound:5. ~source:(Pt.make 2500. 1500.) ~n_groups:2 sinks in
  (* Merge by hand: first within groups, then across. *)
  let merge id a b =
    Dme.Merge.run inst ~split_slack:0.25 ~width_cap:0.7 ~sdr_samples:9 ~id a b
  in
  let leaf i = Dme.Subtree.leaf inst.sinks.(i) in
  let g0 = merge 10 (leaf 0) (leaf 1) in
  let g1 = merge 11 (leaf 2) (leaf 3) in
  Format.printf "group-0 merge: %a@.  region %a@." Dme.Merge.pp_kind g0.kind
    Octagon.pp g0.subtree.region;
  Format.printf "group-1 merge: %a@.  region %a@." Dme.Merge.pp_kind g1.kind
    Octagon.pp g1.subtree.region;
  let top = merge 12 g0.subtree g1.subtree in
  Format.printf "top merge: %a (no skew constraint between the groups)@."
    Dme.Merge.pp_kind top.kind;
  Format.printf "  merging region (SDR): %a@." Octagon.pp top.subtree.region;
  Dme.Subtree.IntMap.iter
    (fun g iv ->
      Format.printf "  group %d nominal delay window: %a (width %.3f ps)@." g
        Geometry.Interval.pp iv (Geometry.Interval.width iv))
    top.subtree.delay;
  (* Embed, repair, evaluate. *)
  let routed = Dme.Embed.run inst top.subtree in
  let routed, repair = Repair.run inst routed in
  let report = Evaluate.run inst routed in
  Format.printf "@.embedded: %a@." Evaluate.pp_report report;
  Format.printf "repair: %+.1f wire on %d edges@." repair.added_wire
    repair.adjusted_edges;
  (* And the engine end-to-end with a custom configuration. *)
  let config = { Dme.Engine.default with multi_merge = false; knn = 4 } in
  let auto = Astskew.Router.ast_dme ~config inst in
  Format.printf "engine (single-merge mode): %a@." Evaluate.pp_report
    auto.evaluation
