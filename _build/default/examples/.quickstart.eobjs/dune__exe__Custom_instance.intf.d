examples/custom_instance.mli:
