examples/quickstart.mli:
