examples/clustered_banks.ml: Array Astskew Clocktree Format Workload
