examples/spice_validation.ml: Experiments Format
