examples/custom_instance.ml: Array Astskew Clocktree Dme Evaluate Format Geometry Instance Repair Sink
