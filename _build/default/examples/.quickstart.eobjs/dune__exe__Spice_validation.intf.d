examples/spice_validation.mli:
