examples/figure_gallery.ml: Experiments Format Geometry List String
