examples/quickstart.ml: Array Astskew Clocktree Format Geometry Instance Sink
