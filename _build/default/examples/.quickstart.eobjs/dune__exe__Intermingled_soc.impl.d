examples/intermingled_soc.ml: Astskew Format List Workload
