examples/intermingled_soc.mli:
