examples/clustered_banks.mli:
