(* Quickstart: build a small associative-skew instance by hand, route it
   with all three routers and print the comparison.

   Run with: dune exec examples/quickstart.exe *)

module Pt = Geometry.Pt
open Clocktree

let () =
  (* 12 flip-flops in two clock domains scattered over a 20x20 mm die.
     Skew matters only between sequentially-adjacent registers, i.e.
     within each domain. *)
  let sinks =
    [|
      (* domain 0 *)
      (1000., 2000., 0); (6000., 1000., 0); (11000., 3000., 0);
      (16000., 2500., 0); (3000., 9000., 0); (14000., 11000., 0);
      (* domain 1 *)
      (2000., 16000., 1); (8000., 18000., 1); (15000., 17000., 1);
      (5000., 12000., 1); (12000., 14000., 1); (18000., 9000., 1);
    |]
    |> Array.mapi (fun id (x, y, group) ->
           Sink.make ~id ~loc:(Pt.make x y) ~cap:35. ~group)
  in
  let inst =
    Instance.make
      ~bound:10. (* 10 ps intra-domain skew bound *)
      ~source:(Pt.make 10000. 10000.)
      ~n_groups:2 sinks
  in
  Format.printf "Instance: %a@.@." Instance.pp inst;
  let show name (r : Astskew.Router.result) =
    Format.printf "%-11s wirelength %8.0f | global skew %6.2f ps | max intra-group skew %5.2f ps@."
      name r.evaluation.wirelength r.evaluation.global_skew
      r.evaluation.max_group_skew
  in
  let zst = Astskew.Router.greedy_dme inst in
  let ext = Astskew.Router.ext_bst inst in
  let ast = Astskew.Router.ast_dme inst in
  show "greedy-DME" zst;
  show "EXT-BST" ext;
  show "AST-DME" ast;
  Format.printf "@.AST-DME saves %.1f%% wire vs EXT-BST and %.1f%% vs greedy-DME,@."
    (100. *. Astskew.Router.reduction ~baseline:ext ast)
    (100. *. Astskew.Router.reduction ~baseline:zst ast);
  Format.printf "while keeping each domain's internal skew within the 10 ps bound.@."
