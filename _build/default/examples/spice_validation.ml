(* Chapter III validation: route a benchmark circuit, convert the clock
   tree into an RC circuit, simulate the step response with the
   backward-Euler transient engine, and compare Elmore vs "SPICE":
   absolute delays disagree badly, skews agree closely.

   Run with: dune exec examples/spice_validation.exe *)

let () =
  Format.printf "Routing r1 and simulating its RC tree (this takes a few seconds)...@.";
  let result = Experiments.Spice_check.run () in
  Experiments.Spice_check.print result;
  Format.printf
    "@.This is why DME-style routers can rely on the Elmore model: the@.balancing decisions depend on skew, and skew error cancels.@."
