(* Clustered sink groups: register banks in their own floorplan regions
   (Table I's scenario).  Here the associative freedom pays less because
   same-group sinks are already neighbours; the example also verifies the
   skew-constraint semantics by reporting the full per-group skew
   breakdown for both routers.

   Run with: dune exec examples/clustered_banks.exe *)

let () =
  let spec = Workload.Circuits.{ name = "banks"; n_sinks = 400; die = 60000. } in
  let n_groups = 8 in
  let inst =
    Workload.Circuits.instance spec ~n_groups
      ~scheme:Workload.Partition.Clustered ~bound:10. ()
  in
  Format.printf "Clustered banks: %d sinks in %d rectangular bank regions@.@."
    spec.n_sinks n_groups;
  let ext = Astskew.Router.ext_bst inst in
  let ast = Astskew.Router.ast_dme inst in
  Format.printf "EXT-BST: wirelength %.0f, global skew %.2f ps@."
    ext.evaluation.wirelength ext.evaluation.global_skew;
  Format.printf "AST-DME: wirelength %.0f (%.2f%% less), global skew %.2f ps@.@."
    ast.evaluation.wirelength
    (100. *. Astskew.Router.reduction ~baseline:ext ast)
    ast.evaluation.global_skew;
  Format.printf "%-7s %-8s %-18s %-18s@." "group" "sinks" "EXT-BST skew (ps)"
    "AST-DME skew (ps)";
  let sizes = Clocktree.Instance.group_sizes inst in
  Array.iteri
    (fun g size ->
      Format.printf "%-7d %-8d %-18.3f %-18.3f@." g size
        ext.evaluation.group_skew.(g) ast.evaluation.group_skew.(g))
    sizes;
  Format.printf
    "@.Both routers keep every bank within 10 ps; AST-DME additionally lets@.banks drift against each other, which saves wire at the bank boundaries.@."
