(* The paper's "difficult instance": many clock groups whose registers are
   physically intermingled across the die — typical of a flattened SoC
   where pipeline stages of different blocks interleave after placement.

   Sweeps the number of groups on a mid-size circuit and shows how the
   associative-skew freedom grows with group count (Table II's trend).

   Run with: dune exec examples/intermingled_soc.exe *)

let () =
  let spec = Workload.Circuits.{ name = "soc"; n_sinks = 600; die = 68000. } in
  Format.printf
    "Intermingled SoC-style instance: %d sinks, %.0f x %.0f die, 10 ps bound@.@."
    spec.n_sinks spec.die spec.die;
  let base_inst =
    Workload.Circuits.instance spec ~n_groups:1
      ~scheme:Workload.Partition.Intermingled ~bound:10. ()
  in
  let ext = Astskew.Router.ext_bst base_inst in
  Format.printf "EXT-BST baseline (all groups tied together): wirelength %.0f@.@."
    ext.evaluation.wirelength;
  Format.printf "%-8s %-12s %-11s %-13s %-14s@." "#groups" "wirelength"
    "reduction" "global skew" "max grp skew";
  List.iter
    (fun g ->
      let inst =
        Workload.Circuits.instance spec ~n_groups:g
          ~scheme:Workload.Partition.Intermingled ~bound:10. ()
      in
      let ast = Astskew.Router.ast_dme inst in
      Format.printf "%-8d %-12.0f %-10.2f%% %-13.1f %-14.2f@." g
        ast.evaluation.wirelength
        (100. *. Astskew.Router.reduction ~baseline:ext ast)
        ast.evaluation.global_skew ast.evaluation.max_group_skew)
    [ 2; 4; 6; 8; 10; 16 ];
  Format.printf
    "@.Global skew grows (it is unconstrained between groups) while every@.group stays within its own 10 ps budget — that freedom is the wire saving.@."
