(* Tests for the synthetic benchmark generator. *)

open Workload

let test_rng_determinism () =
  let a = Rng.create 123L and b = Rng.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_ranges () =
  let r = Rng.create 5L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.);
    let i = Rng.int r 7 in
    Alcotest.(check bool) "int in [0,7)" true (i >= 0 && i < 7)
  done

let test_rng_shuffle_is_permutation () =
  let r = Rng.create 9L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_specs () =
  Alcotest.(check int) "five circuits" 5 (List.length Circuits.specs);
  let names = List.map (fun (s : Circuits.spec) -> s.name) Circuits.specs in
  Alcotest.(check (list string)) "names" [ "r1"; "r2"; "r3"; "r4"; "r5" ] names;
  let sizes = List.map (fun (s : Circuits.spec) -> s.n_sinks) Circuits.specs in
  Alcotest.(check (list int)) "paper sink counts" [ 267; 598; 862; 1903; 3101 ] sizes;
  Alcotest.(check bool) "find r3" true (Circuits.find "r3" <> None);
  Alcotest.(check bool) "find bogus" true (Circuits.find "r9" = None)

let test_instance_determinism () =
  let spec = Option.get (Circuits.find "r1") in
  let mk () =
    Circuits.instance spec ~n_groups:4 ~scheme:Partition.Intermingled
      ~bound:10. ()
  in
  let a = mk () and b = mk () in
  Array.iteri
    (fun i (s : Clocktree.Sink.t) ->
      let t = b.sinks.(i) in
      Alcotest.(check bool) "same sink" true
        (Geometry.Pt.equal s.loc t.loc && s.group = t.group && s.cap = t.cap))
    a.sinks

let test_all_groups_nonempty () =
  let spec = Option.get (Circuits.find "r1") in
  List.iter
    (fun scheme ->
      List.iter
        (fun g ->
          let inst = Circuits.instance spec ~n_groups:g ~scheme ~bound:10. () in
          let sizes = Clocktree.Instance.group_sizes inst in
          Array.iteri
            (fun gi n ->
              Alcotest.(check bool)
                (Printf.sprintf "%s g=%d group %d non-empty"
                   (Partition.scheme_to_string scheme) g gi)
                true (n > 0))
            sizes)
        [ 1; 4; 6; 8; 10 ])
    [ Partition.Clustered; Partition.Intermingled ]

let group_bbox (inst : Clocktree.Instance.t) g =
  Array.fold_left
    (fun acc (s : Clocktree.Sink.t) ->
      if s.group = g then Geometry.Octagon.hull acc (Geometry.Octagon.of_point s.loc)
      else acc)
    Geometry.Octagon.empty inst.sinks

let test_clustered_vs_intermingled_geometry () =
  let spec = Option.get (Circuits.find "r1") in
  let measure scheme =
    let inst = Circuits.instance spec ~n_groups:4 ~scheme ~bound:10. () in
    let spans =
      List.init 4 (fun g -> Geometry.Octagon.diameter (group_bbox inst g))
    in
    List.fold_left Float.max 0. spans
  in
  let clustered = measure Partition.Clustered in
  let intermingled = measure Partition.Intermingled in
  (* Intermingled groups span (almost) the whole die; clustered groups
     are confined to a quadrant-sized box. *)
  Alcotest.(check bool)
    (Printf.sprintf "clustered %.0f < intermingled %.0f" clustered intermingled)
    true
    (clustered < 0.75 *. intermingled)

let test_scheme_strings () =
  Alcotest.(check bool) "roundtrip clustered" true
    (Partition.scheme_of_string "clustered" = Some Partition.Clustered);
  Alcotest.(check bool) "roundtrip intermingled" true
    (Partition.scheme_of_string "intermingled" = Some Partition.Intermingled);
  Alcotest.(check bool) "unknown" true (Partition.scheme_of_string "x" = None)

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_is_permutation;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "specs" `Quick test_specs;
          Alcotest.test_case "determinism" `Quick test_instance_determinism;
        ] );
      ( "partition",
        [
          Alcotest.test_case "groups non-empty" `Quick test_all_groups_nonempty;
          Alcotest.test_case "clustered vs intermingled" `Quick
            test_clustered_vs_intermingled_geometry;
          Alcotest.test_case "scheme strings" `Quick test_scheme_strings;
        ] );
    ]
