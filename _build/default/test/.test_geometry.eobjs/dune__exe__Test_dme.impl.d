test/test_dme.ml: Alcotest Array Clocktree Dme Evaluate Geometry Instance Int Int64 List Printf QCheck QCheck_alcotest Rc Repair Sink Tree Workload
