test/test_core.ml: Alcotest Array Astskew Clocktree Format Geometry Instance Printf Sink String Workload
