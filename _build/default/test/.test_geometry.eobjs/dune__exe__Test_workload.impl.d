test/test_workload.ml: Alcotest Array Circuits Clocktree Float Fun Geometry List Option Partition Printf Rng Workload
