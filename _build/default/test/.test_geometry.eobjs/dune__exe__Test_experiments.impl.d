test/test_experiments.ml: Alcotest Dme Experiments Geometry List Printf Workload
