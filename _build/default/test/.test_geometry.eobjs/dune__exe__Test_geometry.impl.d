test/test_geometry.ml: Alcotest Float Format Geometry Grid_index Interval List Octagon Pt QCheck QCheck_alcotest
