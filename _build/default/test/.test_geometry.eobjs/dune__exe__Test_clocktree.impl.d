test/test_clocktree.ml: Alcotest Array Clocktree Evaluate Geometry Instance Io List QCheck QCheck_alcotest Rc Repair Sink String Svg Tree
