test/test_integration.ml: Alcotest Array Astskew Clocktree Float Instance Printf Rc Tree Workload
