test/test_rc.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rc
