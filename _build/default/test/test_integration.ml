(* Cross-module integration tests: full routing flows on benchmark-style
   instances, Elmore-vs-transient validation, and the headline
   experimental claims at reduced scale. *)

open Clocktree

let small_r1 = Workload.Circuits.{ name = "mini"; n_sinks = 150; die = 40000. }

let test_full_flow_clustered () =
  let inst =
    Workload.Circuits.instance small_r1 ~n_groups:4
      ~scheme:Workload.Partition.Clustered ~bound:10. ()
  in
  let ext = Astskew.Router.ext_bst inst in
  let ast = Astskew.Router.ast_dme inst in
  Alcotest.(check bool) "ext within bound" true
    (ext.evaluation.max_group_skew <= 10. +. 1e-4);
  Alcotest.(check bool) "ast within bound" true
    (ast.evaluation.max_group_skew <= 10. +. 1e-4);
  (* Clustered groups: AST should be at least no worse than EXT-BST. *)
  Alcotest.(check bool)
    (Printf.sprintf "ast %.0f <= ext %.0f * 1.01" ast.evaluation.wirelength
       ext.evaluation.wirelength)
    true
    (ast.evaluation.wirelength <= 1.01 *. ext.evaluation.wirelength)

let test_full_flow_intermingled () =
  let inst =
    Workload.Circuits.instance small_r1 ~n_groups:6
      ~scheme:Workload.Partition.Intermingled ~bound:10. ()
  in
  let ext = Astskew.Router.ext_bst inst in
  let ast = Astskew.Router.ast_dme inst in
  let red = Astskew.Router.reduction ~baseline:ext ast in
  Alcotest.(check bool)
    (Printf.sprintf "reduction %.2f%% positive" (100. *. red))
    true (red > 0.);
  Alcotest.(check bool) "ast satisfies groups" true
    (ast.evaluation.max_group_skew <= 10. +. 1e-4)

let test_elmore_vs_transient_skew () =
  (* Route a small instance, simulate the RC tree, and verify the thesis'
     Chapter III claim at our scale: Elmore skew error is small even
     though absolute delay error is large. *)
  let spec = Workload.Circuits.{ name = "spice"; n_sinks = 40; die = 20000. } in
  let inst =
    Workload.Circuits.instance spec ~n_groups:1
      ~scheme:Workload.Partition.Clustered ~bound:0. ()
  in
  let r = Astskew.Router.greedy_dme inst in
  let rct, sink_index =
    Tree.to_rctree inst.params ~rd:inst.rd ~n_sinks:(Instance.n_sinks inst)
      r.routed
  in
  let elmore = Rc.Rctree.elmore rct in
  let sim = Rc.Transient.step_response_auto ~resolution:4000 rct in
  let delays_e = Array.map (fun i -> elmore.(i)) sink_index in
  let delays_t = Array.map (fun i -> sim.crossing.(i)) sink_index in
  Array.iter
    (fun t -> Alcotest.(check bool) "crossed" true (Float.is_nan t |> not))
    delays_t;
  let spread arr =
    Array.fold_left Float.max Float.neg_infinity arr
    -. Array.fold_left Float.min Float.infinity arr
  in
  let skew_e = spread delays_e and skew_t = spread delays_t in
  let mean arr =
    Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)
  in
  (* absolute delays differ a lot between the models... *)
  let delay_gap = Float.abs (mean delays_e -. mean delays_t) in
  Alcotest.(check bool) "absolute delay error is significant" true
    (delay_gap > 10. *. skew_t);
  (* ...but the zero-skew tree stays nearly zero skew in the transient
     model: skew error is a tiny fraction of the mean delay. *)
  Alcotest.(check bool)
    (Printf.sprintf "transient skew %.3f ps small vs delay %.1f ps" skew_t
       (mean delays_t))
    true
    (skew_t <= 0.02 *. mean delays_t +. 2.);
  Alcotest.(check bool) "elmore skew ~ 0" true (skew_e <= 1e-4)

let test_repair_is_noop_on_planned_trees () =
  (* A well-planned AST tree should need (almost) no repair wire. *)
  let inst =
    Workload.Circuits.instance small_r1 ~n_groups:4
      ~scheme:Workload.Partition.Intermingled ~bound:10. ()
  in
  let ast = Astskew.Router.ast_dme inst in
  Alcotest.(check bool)
    (Printf.sprintf "repair added %.1f wire" ast.repair.added_wire)
    true
    (ast.repair.added_wire <= 0.01 *. ast.evaluation.wirelength)

let test_more_groups_more_freedom () =
  (* Monotone trend at fixed seed: more groups -> AST reduction tends to
     grow (checked loosely: 10 groups beats 1 group). *)
  let run g =
    let inst =
      Workload.Circuits.instance small_r1 ~n_groups:g
        ~scheme:Workload.Partition.Intermingled ~bound:10. ()
    in
    (Astskew.Router.ast_dme inst).evaluation.wirelength
  in
  let wl1 = run 1 and wl10 = run 10 in
  Alcotest.(check bool)
    (Printf.sprintf "wl(10 groups) %.0f < wl(1 group) %.0f" wl10 wl1)
    true (wl10 < wl1)

let () =
  Alcotest.run "integration"
    [
      ( "flows",
        [
          Alcotest.test_case "clustered flow" `Slow test_full_flow_clustered;
          Alcotest.test_case "intermingled flow" `Slow test_full_flow_intermingled;
          Alcotest.test_case "repair is a no-op" `Slow
            test_repair_is_noop_on_planned_trees;
          Alcotest.test_case "groups add freedom" `Slow test_more_groups_more_freedom;
        ] );
      ( "validation",
        [
          Alcotest.test_case "elmore vs transient skew" `Slow
            test_elmore_vs_transient_skew;
        ] );
    ]
