(* Tests for the experiment harness: the table generator and every figure
   reconstruction, each checked against the paper's qualitative claim. *)

let small =
  (* A reduced circuit keeps the suite fast while exercising the same
     code paths as the full tables. *)
  Workload.Circuits.{ name = "t"; n_sinks = 120; die = 35000. }

let test_tables_structure () =
  let rows =
    Experiments.Tables.run ~circuits:[ small ] ~groups:[ 4; 6 ]
      ~scheme:Workload.Partition.Intermingled ()
  in
  Alcotest.(check int) "1 baseline + 2 ast rows" 3 (List.length rows);
  (match rows with
   | base :: rest ->
     Alcotest.(check string) "baseline algo" "EXT-BST" base.algorithm;
     Alcotest.(check bool) "baseline has no reduction" true
       (base.reduction_pct = None);
     List.iter
       (fun (r : Experiments.Tables.row) ->
         Alcotest.(check string) "ast algo" "AST-DME" r.algorithm;
         Alcotest.(check bool) "reduction present" true (r.reduction_pct <> None);
         Alcotest.(check bool) "wirelength positive" true (r.wirelength > 0.);
         Alcotest.(check bool) "cpu recorded" true (r.cpu_s >= 0.))
       rest
   | [] -> Alcotest.fail "no rows")

let test_tables_intermingled_beats_baseline () =
  let rows =
    Experiments.Tables.run ~circuits:[ small ] ~groups:[ 8 ]
      ~scheme:Workload.Partition.Intermingled ()
  in
  match rows with
  | [ _; ast ] ->
    (match ast.reduction_pct with
     | Some red ->
       Alcotest.(check bool)
         (Printf.sprintf "positive reduction (%.2f%%)" red)
         true (red > 0.)
     | None -> Alcotest.fail "expected reduction")
  | _ -> Alcotest.fail "unexpected row count"

let test_fig1 () =
  let f = Experiments.Figures.fig1 () in
  Alcotest.(check bool) "zst truly zero skew" true (f.zst_skew <= 1e-4);
  Alcotest.(check bool) "bst skew within bound" true (f.bst_skew <= 2. +. 1e-4);
  Alcotest.(check bool) "bounded skew saves wire" true
    (f.bst_wirelength < f.zst_wirelength)

let test_fig2 () =
  let f = Experiments.Figures.fig2 () in
  Alcotest.(check bool) "associative merging saves wire" true
    (f.associative_wirelength < f.stitched_wirelength)

let test_fig3 () =
  let f = Experiments.Figures.fig3 () in
  Alcotest.(check bool) "region non-empty" false (Geometry.Octagon.is_empty f.region);
  Alcotest.(check bool) "has vertices" true (List.length f.vertices >= 1);
  Alcotest.(check bool) "positive child distance" true (f.distance > 0.)

let test_fig4 () =
  let f = Experiments.Figures.fig4 () in
  Alcotest.(check bool) "instance-1 merge kind" true
    (f.kind = Dme.Merge.Shared_one);
  Alcotest.(check (list int)) "groups associated" [ 0; 1; 2 ] f.merged_groups;
  Alcotest.(check bool) "shared group within bound" true
    (f.shared_group_width <= 10. +. 1e-6)

let test_fig5 () =
  let f = Experiments.Figures.fig5 () in
  Alcotest.(check (float 1e-9)) "eq 5.1 residual" 0. f.residual_51;
  Alcotest.(check (float 1e-9)) "eq 5.2 residual" 0. f.residual_52;
  Alcotest.(check (float 1e-6)) "eq 5.3" 8000. (f.alpha +. f.beta)

let test_spice_check () =
  let spec = Workload.Circuits.{ name = "sp"; n_sinks = 60; die = 25000. } in
  let r = Experiments.Spice_check.run ~spec ~n_groups:4 () in
  Alcotest.(check bool) "absolute delay error large" true (r.delay_error_pct > 10.);
  Alcotest.(check bool)
    (Printf.sprintf "skew gap small (%.3f ps)" r.skew_gap)
    true
    (r.skew_gap < 0.2 *. r.max_group_skew_elmore +. 1.);
  Alcotest.(check bool) "transient slower than elmore predicts zero" true
    (r.mean_delay_transient > 0.)

let test_ablation_rows () =
  let spec = Workload.Circuits.{ name = "ab"; n_sinks = 80; die = 30000. } in
  let rows = Experiments.Ablation.run ~spec ~n_groups:4 () in
  Alcotest.(check int) "six variants" 6 (List.length rows);
  (match rows with
   | default :: _ ->
     Alcotest.(check string) "first is default" "default" default.name;
     Alcotest.(check (float 1e-9)) "default is its own reference" 0.
       default.reduction_vs_default_pct
   | [] -> Alcotest.fail "no rows");
  List.iter
    (fun (r : Experiments.Ablation.row) ->
      Alcotest.(check bool)
        (r.name ^ " produced a tree")
        true (r.wirelength > 0.))
    rows

let test_single_merge_ablation_rounds () =
  (* The §V.F-1 ablation: single-merge mode needs ~n rounds, multi-merge
     logarithmically fewer. *)
  let spec = Workload.Circuits.{ name = "ab"; n_sinks = 80; die = 30000. } in
  let rows = Experiments.Ablation.run ~spec ~n_groups:4 () in
  let find name =
    List.find (fun (r : Experiments.Ablation.row) -> r.name = name) rows
  in
  let d = find "default" and s = find "single-merge (no §V.F-1)" in
  Alcotest.(check int) "single-merge rounds = n-1" 79 s.rounds;
  Alcotest.(check bool)
    (Printf.sprintf "multi-merge needs far fewer rounds (%d)" d.rounds)
    true
    (d.rounds < 30)

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "structure" `Slow test_tables_structure;
          Alcotest.test_case "intermingled wins" `Slow
            test_tables_intermingled_beats_baseline;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig1 zst vs bst" `Quick test_fig1;
          Alcotest.test_case "fig2 stitch vs associative" `Quick test_fig2;
          Alcotest.test_case "fig3 merging region" `Quick test_fig3;
          Alcotest.test_case "fig4 instance 1" `Quick test_fig4;
          Alcotest.test_case "fig5 instance 2" `Quick test_fig5;
        ] );
      ( "validation",
        [ Alcotest.test_case "elmore vs transient" `Slow test_spice_check ] );
      ( "ablation",
        [
          Alcotest.test_case "rows" `Slow test_ablation_rows;
          Alcotest.test_case "multi-merge rounds" `Slow
            test_single_merge_ablation_rounds;
        ] );
    ]
