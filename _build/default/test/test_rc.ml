(* Tests for the Elmore delay model, merge planning and the transient
   RC simulator. *)

let params = Rc.Wire.default

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* --- Elmore formulas ----------------------------------------------------- *)

let test_wire_delay () =
  (* r=0.003, c=0.02: 10000 units into 100 fF:
     0.003*10000*(0.02*10000/2 + 100) = 30 * 200 = 6000 ohm.fF = 6 ps *)
  check_float "wire delay" 6.
    (Rc.Elmore.wire_delay params ~len:10000. ~load:100.);
  check_float "zero length" 0. (Rc.Elmore.wire_delay params ~len:0. ~load:50.);
  check_float "driver delay" 0.5 (Rc.Elmore.driver_delay ~rd:10. ~load:50.)

let test_wire_for_delay_inverse () =
  let len = Rc.Elmore.wire_for_delay params ~load:100. ~delay:6. in
  check_float ~tol:1e-6 "inverse of wire_delay" 10000. len;
  check_float "zero delay" 0. (Rc.Elmore.wire_for_delay params ~load:42. ~delay:0.);
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Elmore.wire_for_delay: negative delay") (fun () ->
      ignore (Rc.Elmore.wire_for_delay params ~load:1. ~delay:(-1.)))

let prop_wire_for_delay_roundtrip =
  QCheck.Test.make ~name:"wire_for_delay inverts wire_delay" ~count:300
    QCheck.(pair (QCheck.make (QCheck.Gen.float_range 0. 200.))
              (QCheck.make (QCheck.Gen.float_range 1. 500.)))
    (fun (delay, load) ->
      let len = Rc.Elmore.wire_for_delay params ~load ~delay in
      let back = Rc.Elmore.wire_delay params ~len ~load in
      Float.abs (back -. delay) <= 1e-6 *. (1. +. delay))

let prop_balance_split_solves_equation =
  let gen =
    QCheck.Gen.(
      let pos lo hi = float_range lo hi in
      quad (pos 10. 50000.) (pos 1. 500.) (pos 1. 500.) (pos (-50.) 50.))
  in
  QCheck.Test.make ~name:"balance_split satisfies the balance equation"
    ~count:300
    (QCheck.make gen)
    (fun (dist, cap_a, cap_b, diff) ->
      let ea = Rc.Elmore.balance_split params ~dist ~cap_a ~cap_b ~diff in
      let wa = Rc.Elmore.wire_delay params ~len:ea ~load:cap_a in
      let wb = Rc.Elmore.wire_delay params ~len:(dist -. ea) ~load:cap_b in
      Float.abs (wa -. wb -. diff) <= 1e-6 *. (1. +. Float.abs diff))

(* --- Balance.plan -------------------------------------------------------- *)

let side lo hi : Rc.Balance.side = { lo; hi }

let test_plan_zero_skew () =
  let cons = [ Rc.Balance.{ a = side 10. 10.; b = side 14. 14.; bound = 0. } ] in
  let p = Rc.Balance.plan params ~dist:20000. ~cap_a:100. ~cap_b:150. ~cons ~pref:4. in
  Alcotest.(check bool) "feasible" true p.feasible;
  check_float ~tol:1e-6 "delays equalized" (10. +. p.wa) (14. +. p.wb);
  check_float ~tol:1e-6 "no snake" 0. p.snake;
  check_float ~tol:1e-6 "lengths add up" 20000. (p.ea +. p.eb)

let test_plan_snaking () =
  (* Side a is so much slower that b's wire must snake. *)
  let cons = [ Rc.Balance.{ a = side 100. 100.; b = side 0. 0.; bound = 0. } ] in
  let p = Rc.Balance.plan params ~dist:1000. ~cap_a:50. ~cap_b:50. ~cons ~pref:(-100.) in
  Alcotest.(check bool) "feasible" true p.feasible;
  Alcotest.(check bool) "snake positive" true (p.snake > 0.);
  check_float ~tol:1e-6 "a wire collapsed" 0. p.ea;
  check_float ~tol:1e-6 "balanced via snake" (100. +. p.wa) (0. +. p.wb)

let test_plan_bounded_slack () =
  (* A 10 ps bound absorbs a 6 ps imbalance without snaking and leaves
     positional freedom. *)
  let cons = [ Rc.Balance.{ a = side 0. 0.; b = side 6. 6.; bound = 10. } ] in
  let p = Rc.Balance.plan params ~dist:1000. ~cap_a:50. ~cap_b:50. ~cons ~pref:0. in
  Alcotest.(check bool) "feasible" true p.feasible;
  check_float ~tol:1e-6 "no snake" 0. p.snake;
  (* pref = 0 is inside the slack so the merge keeps wa = wb. *)
  let width = Float.max (0. +. p.wa) (6. +. p.wb) -. Float.min (0. +. p.wa) (6. +. p.wb) in
  Alcotest.(check bool) "width within bound" true (width <= 10. +. 1e-9)

let test_plan_infeasible_marked () =
  (* Two groups pulling in opposite directions beyond their bounds. *)
  let cons =
    [
      Rc.Balance.{ a = side 0. 0.; b = side 50. 50.; bound = 1. };
      Rc.Balance.{ a = side 50. 50.; b = side 0. 0.; bound = 1. };
    ]
  in
  let p = Rc.Balance.plan params ~dist:1000. ~cap_a:50. ~cap_b:50. ~cons ~pref:0. in
  Alcotest.(check bool) "marked infeasible" false p.feasible

let prop_plan_respects_bound =
  let gen =
    QCheck.Gen.(
      let* dist = float_range 0. 50000. in
      let* cap_a = float_range 1. 500. in
      let* cap_b = float_range 1. 500. in
      let* ta = float_range 0. 100. in
      let* tb = float_range 0. 100. in
      let* wa_width = float_range 0. 5. in
      let* wb_width = float_range 0. 5. in
      let* bound = float_range 6. 30. in
      return (dist, cap_a, cap_b, (ta, wa_width), (tb, wb_width), bound))
  in
  QCheck.Test.make ~name:"plan keeps merged width within bound" ~count:500
    (QCheck.make gen)
    (fun (dist, cap_a, cap_b, (ta, wwa), (tb, wwb), bound) ->
      let cons =
        [ Rc.Balance.{ a = side ta (ta +. wwa); b = side tb (tb +. wwb); bound } ]
      in
      let pref = tb +. (wwb /. 2.) -. ta -. (wwa /. 2.) in
      let p = Rc.Balance.plan params ~dist ~cap_a ~cap_b ~cons ~pref in
      if not p.feasible then QCheck.assume_fail ()
      else begin
        let lo = Float.min (ta +. p.wa) (tb +. p.wb) in
        let hi = Float.max (ta +. wwa +. p.wa) (tb +. wwb +. p.wb) in
        hi -. lo <= bound +. 1e-6
        && p.ea >= 0. && p.eb >= 0.
        && p.ea +. p.eb >= dist -. 1e-6
      end)

let test_instance2 () =
  let l_cf = 8000. and l_ac = 1500. and l_bc = 2500. in
  let l_df = 1200. and l_ef = 2000. in
  let cap_a = 40. and cap_b = 60. and cap_c = 150. in
  let cap_d = 30. and cap_e = 50. and cap_f = 140. in
  let alpha, beta, gamma =
    Rc.Balance.instance2 params ~l_cf ~l_ac ~l_bc ~l_df ~l_ef ~cap_a ~cap_b
      ~cap_c ~cap_d ~cap_e ~cap_f
  in
  check_float ~tol:1e-6 "eq 5.3: alpha + beta = l_cf" l_cf (alpha +. beta);
  let w len load = Rc.Elmore.wire_delay params ~len ~load in
  (* Eq 5.1: delay to root of Ta equals delay to root of Td. *)
  check_float ~tol:1e-6 "eq 5.1 balanced"
    (w alpha cap_c +. w l_ac cap_a)
    (w beta cap_f +. w l_df cap_d);
  (* Eq 5.2: delay to root of Tb equals delay to root of Te with the
     gamma-extended wire. *)
  check_float ~tol:1e-6 "eq 5.2 balanced"
    (w alpha cap_c +. w l_bc cap_b)
    (w beta cap_f +. w (gamma +. l_ef) cap_e)

(* --- Rctree -------------------------------------------------------------- *)

let line_tree ~rd ~segments =
  (* A chain of [segments] (res, cap) pairs below the root. *)
  let nodes =
    Array.of_list
      ((-1, 0., 0.)
      :: List.mapi (fun i (r, c) -> (i, r, c)) segments)
  in
  Rc.Rctree.build ~rd nodes

let test_rctree_elmore () =
  (* Root - R=100 - node1(C=50) - R=200 - node2(C=30), driver 10 ohm.
     Elmore(node2) = 10*(80) + 100*80 + 200*30 = 800+8000+6000 = 14800
     ohm.fF = 14.8 ps. *)
  let t = line_tree ~rd:10. ~segments:[ (100., 50.); (200., 30.) ] in
  let d = Rc.Rctree.elmore t in
  check_float "root delay" 0.8 d.(0);
  check_float "node1 delay" 8.8 d.(1);
  check_float "node2 delay" 14.8 d.(2);
  let down = Rc.Rctree.downstream_cap t in
  check_float "downstream root" 80. down.(0);
  check_float "downstream leaf" 30. down.(2)

let test_rctree_build_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Rctree.build: empty tree")
    (fun () -> ignore (Rc.Rctree.build ~rd:1. [||]));
  Alcotest.check_raises "bad root"
    (Invalid_argument "Rctree.build: node 0 must be the root") (fun () ->
      ignore (Rc.Rctree.build ~rd:1. [| (0, 1., 1.) |]))

(* --- Transient ----------------------------------------------------------- *)

let test_transient_single_pole () =
  (* One RC: 50%-crossing of a single pole is ln 2 × RC while Elmore is
     RC; ratio must be ~0.693. *)
  let t = line_tree ~rd:100. ~segments:[ (0.001, 1000.) ] in
  let elmore = (Rc.Rctree.elmore t).(1) in
  let res = Rc.Transient.step_response_auto ~resolution:5000 t in
  let ratio = res.crossing.(1) /. elmore in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.4f close to ln 2" ratio)
    true
    (Float.abs (ratio -. Float.log 2.) < 0.01)

let test_transient_symmetric_skew () =
  (* A symmetric H: two identical branches must have zero skew in both
     models. *)
  let nodes =
    [|
      (-1, 0., 10.);
      (0, 150., 40.);
      (0, 150., 40.);
      (1, 300., 25.);
      (2, 300., 25.);
    |]
  in
  let t = Rc.Rctree.build ~rd:20. nodes in
  let elmore = Rc.Rctree.elmore t in
  check_float "elmore skew" 0. (elmore.(3) -. elmore.(4));
  let res = Rc.Transient.step_response_auto t in
  check_float ~tol:1e-9 "transient skew" 0. (res.crossing.(3) -. res.crossing.(4))

let test_transient_skew_tracks_elmore () =
  (* Asymmetric branches: the thesis' claim is that Elmore *skew* error is
     small even when absolute delay error is not.  Check the transient
     skew has the same sign and similar magnitude. *)
  let nodes =
    [|
      (-1, 0., 10.);
      (0, 150., 40.);
      (0, 250., 60.);
      (1, 300., 25.);
      (2, 450., 35.);
    |]
  in
  let t = Rc.Rctree.build ~rd:20. nodes in
  let elmore = Rc.Rctree.elmore t in
  let skew_e = elmore.(4) -. elmore.(3) in
  let res = Rc.Transient.step_response_auto ~resolution:5000 t in
  let skew_t = res.crossing.(4) -. res.crossing.(3) in
  Alcotest.(check bool) "same sign" true (skew_e *. skew_t > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "magnitudes comparable (elmore %.3f vs transient %.3f)"
       skew_e skew_t)
    true
    (skew_t > 0.3 *. skew_e && skew_t < 1.5 *. skew_e)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "rc"
    [
      ( "elmore",
        [
          Alcotest.test_case "wire delay" `Quick test_wire_delay;
          Alcotest.test_case "wire_for_delay" `Quick test_wire_for_delay_inverse;
        ]
        @ qsuite [ prop_wire_for_delay_roundtrip; prop_balance_split_solves_equation ]
      );
      ( "balance",
        [
          Alcotest.test_case "zero-skew plan" `Quick test_plan_zero_skew;
          Alcotest.test_case "snaking plan" `Quick test_plan_snaking;
          Alcotest.test_case "bounded slack" `Quick test_plan_bounded_slack;
          Alcotest.test_case "infeasible flag" `Quick test_plan_infeasible_marked;
          Alcotest.test_case "instance 2 equations" `Quick test_instance2;
        ]
        @ qsuite [ prop_plan_respects_bound ] );
      ( "rctree",
        [
          Alcotest.test_case "elmore hand check" `Quick test_rctree_elmore;
          Alcotest.test_case "build errors" `Quick test_rctree_build_errors;
        ] );
      ( "transient",
        [
          Alcotest.test_case "single pole ln2" `Quick test_transient_single_pole;
          Alcotest.test_case "symmetric skew" `Quick test_transient_symmetric_skew;
          Alcotest.test_case "skew tracks elmore" `Quick test_transient_skew_tracks_elmore;
        ] );
    ]
