type 'a entry = { pt : Pt.t; value : 'a }

type 'a t = {
  cell : float;
  cells : (int * int, (int, 'a entry) Hashtbl.t) Hashtbl.t;
  mutable count : int;
}

let create ~cell =
  if cell <= 0. then invalid_arg "Grid_index.create: cell must be positive";
  { cell; cells = Hashtbl.create 257; count = 0 }

let key t (p : Pt.t) =
  ( int_of_float (Float.floor (p.x /. t.cell)),
    int_of_float (Float.floor (p.y /. t.cell)) )

let add t ~id p v =
  let k = key t p in
  let bucket =
    match Hashtbl.find_opt t.cells k with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 7 in
      Hashtbl.add t.cells k b;
      b
  in
  Hashtbl.replace bucket id { pt = p; value = v };
  t.count <- t.count + 1

let remove t ~id p =
  let k = key t p in
  match Hashtbl.find_opt t.cells k with
  | None -> ()
  | Some b ->
    if Hashtbl.mem b id then begin
      Hashtbl.remove b id;
      t.count <- t.count - 1;
      if Hashtbl.length b = 0 then Hashtbl.remove t.cells k
    end

let size t = t.count

(* Visit cells in expanding square rings around the query cell.  A hit at
   ring [r] guarantees no closer hit exists beyond ring
   [ceil (best / cell) + 1], which bounds the scan; the bounding box of
   occupied cells bounds it even when the caller's stop condition never
   fires (e.g. fewer entries than requested). *)
let fold_rings t (p : Pt.t) ~stop f =
  let cx, cy = key t p in
  let max_ring =
    Hashtbl.fold
      (fun (gx, gy) _ acc ->
        Int.max acc (Int.max (Int.abs (gx - cx)) (Int.abs (gy - cy))))
      t.cells 0
  in
  let rec ring r =
    if r > max_ring || stop r then ()
    else begin
      if r = 0 then begin
        (match Hashtbl.find_opt t.cells (cx, cy) with
         | Some b -> Hashtbl.iter (fun id e -> f id e) b
         | None -> ())
      end
      else begin
        let visit gx gy =
          match Hashtbl.find_opt t.cells (gx, gy) with
          | Some b -> Hashtbl.iter (fun id e -> f id e) b
          | None -> ()
        in
        for gx = cx - r to cx + r do
          visit gx (cy - r);
          visit gx (cy + r)
        done;
        for gy = cy - r + 1 to cy + r - 1 do
          visit (cx - r) gy;
          visit (cx + r) gy
        done
      end;
      ring (r + 1)
    end
  in
  ring 0

let nearest t ?(skip = fun _ -> false) p =
  if t.count = 0 then None
  else begin
    let best = ref None in
    let best_dist = ref Float.infinity in
    let stop r =
      (* Cells at ring r are at least (r-1) * cell away in L-infinity,
         hence at least that far in L1. *)
      match !best with
      | None -> false
      | Some _ -> float_of_int (r - 1) *. t.cell > !best_dist
    in
    fold_rings t p ~stop (fun id e ->
        if not (skip id) then begin
          let d = Pt.dist p e.pt in
          if d < !best_dist then begin
            best_dist := d;
            best := Some (id, e.pt, e.value)
          end
        end);
    !best
  end

let k_nearest t ?(skip = fun _ -> false) p k =
  if t.count = 0 || k <= 0 then []
  else begin
    let acc = ref [] in
    let nacc = ref 0 in
    let kth_dist = ref Float.infinity in
    let recompute_kth () =
      if !nacc >= k then begin
        let ds = List.map (fun (_, q, _) -> Pt.dist p q) !acc in
        let sorted = List.sort Float.compare ds in
        kth_dist := List.nth sorted (k - 1)
      end
    in
    let stop r =
      !nacc >= k && float_of_int (r - 1) *. t.cell > !kth_dist
    in
    fold_rings t p ~stop (fun id e ->
        if not (skip id) then begin
          acc := (id, e.pt, e.value) :: !acc;
          incr nacc;
          recompute_kth ()
        end);
    let sorted =
      List.sort
        (fun (_, a, _) (_, b, _) -> Float.compare (Pt.dist p a) (Pt.dist p b))
        !acc
    in
    List.filteri (fun i _ -> i < k) sorted
  end

let within t p r =
  let acc = ref [] in
  let stop ring = float_of_int (ring - 1) *. t.cell > r in
  fold_rings t p ~stop (fun id e ->
      if Pt.dist p e.pt <= r then acc := (id, e.pt, e.value) :: !acc);
  !acc

let iter t f =
  Hashtbl.iter (fun _ b -> Hashtbl.iter (fun id e -> f id e.pt e.value) b)
    t.cells
