(** Points of the Manhattan plane. *)

type t = { x : float; y : float }

val make : float -> float -> t
val zero : t

(** Manhattan (L1) distance. *)
val dist : t -> t -> float

(** Chebyshev (L-infinity) distance. *)
val dist_linf : t -> t -> float

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** Midpoint of the segment [p]–[q]. *)
val mid : t -> t -> t

(** Rotated coordinates [x + y] (often written [s]) and [x - y] ([d]); the
    Manhattan metric is the Chebyshev metric in these coordinates. *)
val s : t -> float

val d : t -> float

(** Inverse of the rotation: point with the given [x+y] and [x-y] values. *)
val of_sd : float -> float -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
