(** Floating-point tolerances shared by the geometry kernel. *)

(** Absolute tolerance used for all geometric comparisons. *)
val tol : float

val equal : float -> float -> bool
val leq : float -> float -> bool
val geq : float -> float -> bool
val is_zero : float -> bool
val clamp : float -> float -> float -> float
