type t = { lo : float; hi : float }

let make lo hi = { lo; hi }
let point v = { lo = v; hi = v }
let is_empty i = i.lo > i.hi +. Eps.tol
let width i = Float.max 0. (i.hi -. i.lo)
let mid i = (i.lo +. i.hi) /. 2.
let contains i v = Eps.leq i.lo v && Eps.leq v i.hi
let inter a b = { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let inflate r i = { lo = i.lo -. r; hi = i.hi +. r }

let gap a b =
  if a.hi < b.lo then b.lo -. a.hi
  else if b.hi < a.lo then a.lo -. b.hi
  else 0.

let shift c i = { lo = i.lo +. c; hi = i.hi +. c }
let clamp i v = Eps.clamp i.lo i.hi v
let equal a b = Eps.equal a.lo b.lo && Eps.equal a.hi b.hi
let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
