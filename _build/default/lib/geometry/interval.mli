(** Closed real intervals, used for bound bookkeeping (delay ranges,
    octagon projections). *)

type t = { lo : float; hi : float }

val make : float -> float -> t

(** Degenerate interval [v, v]. *)
val point : float -> t

val is_empty : t -> bool
val width : t -> float
val mid : t -> float
val contains : t -> float -> bool
val inter : t -> t -> t
val hull : t -> t -> t

(** Minkowski sum: widen both ends by [r]. *)
val inflate : float -> t -> t

(** Signed gap between two intervals: 0 when they overlap, otherwise the
    distance between the nearest endpoints. *)
val gap : t -> t -> float

(** Shift by a constant. *)
val shift : float -> t -> t

val clamp : t -> float -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
