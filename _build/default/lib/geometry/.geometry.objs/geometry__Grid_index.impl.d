lib/geometry/grid_index.ml: Float Hashtbl Int List Pt
