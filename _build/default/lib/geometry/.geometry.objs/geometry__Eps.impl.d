lib/geometry/eps.ml: Float
