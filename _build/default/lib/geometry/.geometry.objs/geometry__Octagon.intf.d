lib/geometry/octagon.mli: Format Interval Pt
