lib/geometry/eps.mli:
