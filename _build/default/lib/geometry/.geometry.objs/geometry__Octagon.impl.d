lib/geometry/octagon.ml: Array Eps Float Format Int Interval List Pt
