lib/geometry/pt.mli: Format
