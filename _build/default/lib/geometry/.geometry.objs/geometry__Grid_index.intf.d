lib/geometry/grid_index.mli: Pt
