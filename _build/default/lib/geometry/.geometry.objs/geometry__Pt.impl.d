lib/geometry/pt.ml: Eps Float Format
