lib/geometry/interval.ml: Eps Float Format
