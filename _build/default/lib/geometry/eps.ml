(** Floating-point tolerances shared by the geometry kernel.

    Coordinates are layout units with magnitudes up to ~1e6; a chain of a
    few thousand additions keeps the absolute error well below 1e-6, so a
    single absolute tolerance is adequate for the whole kernel. *)

let tol = 1e-6

let equal a b = Float.abs (a -. b) <= tol
let leq a b = a <= b +. tol
let geq a b = a >= b -. tol
let is_zero a = Float.abs a <= tol

(** [clamp lo hi x] restricts [x] to the closed interval [lo, hi]. *)
let clamp lo hi x = if x < lo then lo else if x > hi then hi else x
