lib/experiments/spice_check.mli: Workload
