lib/experiments/figures.ml: Array Astskew Clocktree Dme Evaluate Format Geometry Instance List Rc Repair Sink String Tree
