lib/experiments/ablation.ml: Astskew Format List Option Workload
