lib/experiments/tables.ml: Astskew Format List Printf Workload
