lib/experiments/spice_check.ml: Array Astskew Clocktree Float Format Instance Option Rc Sink Tree Workload
