lib/experiments/figures.mli: Dme Geometry
