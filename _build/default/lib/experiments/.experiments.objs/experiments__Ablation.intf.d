lib/experiments/ablation.mli: Workload
