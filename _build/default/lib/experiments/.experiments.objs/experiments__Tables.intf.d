lib/experiments/tables.mli: Dme Workload
