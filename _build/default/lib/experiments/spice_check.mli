(** Chapter III validation: Elmore skew versus "SPICE" (the backward-Euler
    transient simulator) skew on routed trees.

    The thesis argues Elmore delay is inaccurate in absolute terms but the
    error largely cancels in skew; this experiment quantifies both on a
    routed benchmark circuit. *)

type result = {
  circuit : string;
  n_sinks : int;
  mean_delay_elmore : float;  (** ps *)
  mean_delay_transient : float;  (** ps *)
  delay_error_pct : float;  (** relative error of mean delay *)
  max_group_skew_elmore : float;  (** ps *)
  max_group_skew_transient : float;  (** ps *)
  skew_gap : float;  (** |transient - elmore| max group skew, ps *)
}

(** Route the given circuit with AST-DME and compare delay models.
    Defaults: r1, 8 intermingled groups, 10 ps bound. *)
val run :
  ?spec:Workload.Circuits.spec ->
  ?n_groups:int ->
  ?bound:float ->
  unit ->
  result

val print : result -> unit
