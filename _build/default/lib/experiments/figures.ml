module Pt = Geometry.Pt
module Octagon = Geometry.Octagon
open Clocktree

let pt = Pt.make
let sink id x y ?(cap = 20.) group = Sink.make ~id ~loc:(pt x y) ~cap ~group

type fig1 = {
  zst_wirelength : float;
  zst_skew : float;
  bst_wirelength : float;
  bst_skew : float;
}

(* A wide two-sink pair (large internal delay) merged with a sink sitting
   right next to their merging segment, using the figure's own topology:
   zero skew must snake the near sink's wire to match the pair's internal
   delay; a 2 ps bound absorbs most of it.  Same instance, same topology
   — only the skew constraint differs, as in Fig. 1. *)
let fig1 () =
  let route bound =
    let sinks =
      [| sink 0 0. 0. 0; sink 1 20000. 0. 0; sink 2 10000. 2000. 0 |]
    in
    let inst =
      Instance.make ~bound ~source:(pt 10000. 1000.) ~n_groups:1 sinks
    in
    let merge id a b =
      (Dme.Merge.run inst ~split_slack:0.25 ~width_cap:0.7 ~sdr_samples:9 ~id a b)
        .subtree
    in
    let leaf i = Dme.Subtree.leaf inst.sinks.(i) in
    let pair = merge 10 (leaf 0) (leaf 1) in
    let root = merge 11 pair (leaf 2) in
    let routed = Dme.Embed.run inst root in
    let routed, _ = Repair.run inst routed in
    Evaluate.run inst routed
  in
  let zst = route 0. in
  let bst = route 2. in
  {
    zst_wirelength = zst.wirelength;
    zst_skew = zst.global_skew;
    bst_wirelength = bst.wirelength;
    bst_skew = bst.global_skew;
  }

type fig2 = { stitched_wirelength : float; associative_wirelength : float }

(* Interleaved groups on a line, as in Fig. 2: rectangles at 0 and 2000,
   circles at 1000 and 3000. *)
let fig2 () =
  let sinks =
    [| sink 0 0. 0. 0; sink 1 1000. 0. 1; sink 2 2000. 0. 0; sink 3 3000. 0. 1 |]
  in
  let inst = Instance.make ~bound:0. ~source:(pt 1500. 0.) ~n_groups:2 sinks in
  (* (a) route each group separately as a zero-skew tree and stitch the
     two roots together at the source. *)
  let route_group g =
    let members =
      Array.of_list
        (List.mapi
           (fun i (s : Sink.t) -> { s with id = i })
           (Instance.group_sinks inst g))
    in
    let sub = Instance.make ~bound:0. ~source:inst.source ~n_groups:1
        (Array.map (fun (s : Sink.t) -> { s with group = 0 }) members)
    in
    Astskew.Router.greedy_dme sub
  in
  let a = route_group 0 and b = route_group 1 in
  let stitch =
    Pt.dist inst.source (Tree.pos a.routed.tree)
    +. Pt.dist inst.source (Tree.pos b.routed.tree)
  in
  let stitched =
    Tree.tree_wirelength a.routed.tree +. Tree.tree_wirelength b.routed.tree
    +. stitch
  in
  (* (b) associative merging on the full instance. *)
  let ast = Astskew.Router.ast_dme inst in
  {
    stitched_wirelength = stitched;
    associative_wirelength = Tree.wirelength ast.routed;
  }

type fig3 = {
  region : Octagon.t;
  vertices : Pt.t list;
  distance : float;
}

let fig3 () =
  let sinks =
    [| sink 0 0. 0. 0; sink 1 0. 2000. 0; sink 2 5000. 500. 1; sink 3 5000. 2500. 1 |]
  in
  let inst = Instance.make ~bound:10. ~source:(pt 0. 0.) ~n_groups:2 sinks in
  let merge id a b =
    (Dme.Merge.run inst ~split_slack:0.25 ~width_cap:0.7 ~sdr_samples:9 ~id a b)
      .subtree
  in
  let leaf i = Dme.Subtree.leaf inst.sinks.(i) in
  let ta = merge 10 (leaf 0) (leaf 1) in
  let tb = merge 11 (leaf 2) (leaf 3) in
  let distance = Octagon.dist ta.region tb.region in
  let merged = merge 12 ta tb in
  {
    region = merged.region;
    vertices = Octagon.vertices merged.region;
    distance;
  }

type fig4 = {
  kind : Dme.Merge.kind;
  merged_groups : int list;
  shared_group_width : float;
}

let fig4 () =
  (* Ta and Td from G0, Tb from G1, Te from G2 (groups 0/1/2 standing in
     for the figure's G1/G2/G3). *)
  let sinks =
    [|
      sink 0 0. 0. 0 (* a *);
      sink 1 800. 0. 1 (* b *);
      sink 2 4000. 0. 0 (* d *);
      sink 3 4800. 0. 2 (* e *);
    |]
  in
  let inst = Instance.make ~bound:10. ~source:(pt 0. 0.) ~n_groups:3 sinks in
  let merge id a b =
    Dme.Merge.run inst ~split_slack:0.25 ~width_cap:0.7 ~sdr_samples:9 ~id a b
  in
  let leaf i = Dme.Subtree.leaf inst.sinks.(i) in
  let tc = (merge 10 (leaf 0) (leaf 1)).subtree in
  let tf = (merge 11 (leaf 2) (leaf 3)).subtree in
  let r = merge 12 tc tf in
  let width =
    Geometry.Interval.width (Dme.Subtree.IntMap.find 0 r.subtree.delay)
  in
  {
    kind = r.kind;
    merged_groups = Dme.Subtree.groups r.subtree;
    shared_group_width = width;
  }

type fig5 = {
  alpha : float;
  beta : float;
  gamma : float;
  residual_51 : float;
  residual_52 : float;
}

let fig5 () =
  let params = Rc.Wire.default in
  let l_cf = 8000. and l_ac = 1500. and l_bc = 2500. in
  let l_df = 1200. and l_ef = 2000. in
  let cap_a = 40. and cap_b = 60. and cap_c = 150. in
  let cap_d = 30. and cap_e = 50. and cap_f = 140. in
  let alpha, beta, gamma =
    Rc.Balance.instance2 params ~l_cf ~l_ac ~l_bc ~l_df ~l_ef ~cap_a ~cap_b
      ~cap_c ~cap_d ~cap_e ~cap_f
  in
  let w len load = Rc.Elmore.wire_delay params ~len ~load in
  let residual_51 =
    w alpha cap_c +. w l_ac cap_a -. (w beta cap_f +. w l_df cap_d)
  in
  let residual_52 =
    w alpha cap_c +. w l_bc cap_b -. (w beta cap_f +. w (gamma +. l_ef) cap_e)
  in
  { alpha; beta; gamma; residual_51; residual_52 }

let print_all () =
  let f1 = fig1 () in
  Format.printf
    "@.Fig 1 (zero-skew vs bounded-skew): ZST wl=%.0f skew=%.2fps | BST wl=%.0f skew=%.2fps | saving %.1f%%@."
    f1.zst_wirelength f1.zst_skew f1.bst_wirelength f1.bst_skew
    (100. *. (f1.zst_wirelength -. f1.bst_wirelength) /. f1.zst_wirelength);
  let f2 = fig2 () in
  Format.printf
    "Fig 2 (stitching vs associative): stitched wl=%.0f | associative wl=%.0f | saving %.1f%%@."
    f2.stitched_wirelength f2.associative_wirelength
    (100.
    *. (f2.stitched_wirelength -. f2.associative_wirelength)
    /. f2.stitched_wirelength);
  let f3 = fig3 () in
  Format.printf
    "Fig 3 (cross-group merging region): child distance %.0f, region %a with %d vertices@."
    f3.distance Octagon.pp f3.region (List.length f3.vertices);
  let f4 = fig4 () in
  Format.printf
    "Fig 4 (instance 1): merge kind %a, association {%s}, shared-group width %.3fps@."
    Dme.Merge.pp_kind f4.kind
    (String.concat ", " (List.map string_of_int f4.merged_groups))
    f4.shared_group_width;
  let f5 = fig5 () in
  Format.printf
    "Fig 5 (instance 2, eqs 5.1-5.3): alpha=%.1f beta=%.1f gamma=%.1f, residuals %.2e / %.2e ps@."
    f5.alpha f5.beta f5.gamma f5.residual_51 f5.residual_52
