(** Regeneration of Tables I and II of the thesis: EXT-BST versus AST-DME
    over the r1–r5 circuits at 4/6/8/10 sink groups, with clustered
    (Table I) or intermingled (Table II) partitions. *)

type row = {
  circuit : string;
  n_sinks : int;
  n_groups : int;
  algorithm : string;  (** "EXT-BST" or "AST-DME" *)
  wirelength : float;
  reduction_pct : float option;  (** vs the circuit's EXT-BST baseline *)
  max_skew_ps : float;  (** maximum skew over all sinks, as in the paper *)
  cpu_s : float;
}

(** [run ~scheme ()] produces the rows of one table: per circuit, the
    EXT-BST baseline (1 group at the instance bound) followed by AST-DME
    at each group count.  Restrict [circuits]/[groups] for quick runs. *)
val run :
  ?circuits:Workload.Circuits.spec list ->
  ?groups:int list ->
  ?bound:float ->
  ?config:Dme.Engine.config ->
  scheme:Workload.Partition.scheme ->
  unit ->
  row list

(** Print in the thesis' layout. *)
val print : title:string -> row list -> unit
