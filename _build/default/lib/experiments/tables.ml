type row = {
  circuit : string;
  n_sinks : int;
  n_groups : int;
  algorithm : string;
  wirelength : float;
  reduction_pct : float option;
  max_skew_ps : float;
  cpu_s : float;
}

let default_groups = [ 4; 6; 8; 10 ]

let run ?(circuits = Workload.Circuits.specs) ?(groups = default_groups)
    ?(bound = 10.) ?config ~scheme () =
  List.concat_map
    (fun (spec : Workload.Circuits.spec) ->
      (* The baseline does not depend on the grouping, so route it on the
         1-group instance, exactly as "#groups = 1 / EXT-BST" in the
         paper's tables. *)
      let base_inst =
        Workload.Circuits.instance spec ~n_groups:1 ~scheme ~bound ()
      in
      let base = Astskew.Router.ext_bst ?config base_inst in
      let base_row =
        {
          circuit = spec.name;
          n_sinks = spec.n_sinks;
          n_groups = 1;
          algorithm = "EXT-BST";
          wirelength = base.evaluation.wirelength;
          reduction_pct = None;
          max_skew_ps = base.evaluation.global_skew;
          cpu_s = base.cpu_seconds;
        }
      in
      let ast_rows =
        List.map
          (fun g ->
            let inst = Workload.Circuits.instance spec ~n_groups:g ~scheme ~bound () in
            let ast = Astskew.Router.ast_dme ?config inst in
            {
              circuit = spec.name;
              n_sinks = spec.n_sinks;
              n_groups = g;
              algorithm = "AST-DME";
              wirelength = ast.evaluation.wirelength;
              reduction_pct =
                Some (100. *. Astskew.Router.reduction ~baseline:base ast);
              max_skew_ps = ast.evaluation.global_skew;
              cpu_s = ast.cpu_seconds;
            })
          groups
      in
      base_row :: ast_rows)
    circuits

let print ~title rows =
  Format.printf "@.%s@." title;
  Format.printf
    "%-8s %-8s %-8s %-10s %-10s %-14s %-8s@." "Circuit" "#groups" "Algo"
    "Wirelen" "Reduction" "MaxSkew(ps)" "CPU(s)";
  let last_circuit = ref "" in
  List.iter
    (fun r ->
      let circuit_cell =
        if r.circuit = !last_circuit then ""
        else begin
          last_circuit := r.circuit;
          Printf.sprintf "%s/%d" r.circuit r.n_sinks
        end
      in
      Format.printf "%-8s %-8d %-8s %-10.0f %-10s %-14.1f %-8.2f@."
        circuit_cell r.n_groups r.algorithm r.wirelength
        (match r.reduction_pct with
         | None -> "-"
         | Some p -> Printf.sprintf "%.2f%%" p)
        r.max_skew_ps r.cpu_s)
    rows
