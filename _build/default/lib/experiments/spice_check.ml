open Clocktree

type result = {
  circuit : string;
  n_sinks : int;
  mean_delay_elmore : float;
  mean_delay_transient : float;
  delay_error_pct : float;
  max_group_skew_elmore : float;
  max_group_skew_transient : float;
  skew_gap : float;
}

let group_skews (inst : Instance.t) delays =
  let lo = Array.make inst.n_groups Float.infinity in
  let hi = Array.make inst.n_groups Float.neg_infinity in
  Array.iter
    (fun (s : Sink.t) ->
      lo.(s.group) <- Float.min lo.(s.group) delays.(s.id);
      hi.(s.group) <- Float.max hi.(s.group) delays.(s.id))
    inst.sinks;
  Array.init inst.n_groups (fun g -> hi.(g) -. lo.(g))

let mean arr = Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)

let run ?spec ?(n_groups = 8) ?(bound = 10.) () =
  let spec =
    match spec with
    | Some s -> s
    | None -> Option.get (Workload.Circuits.find "r1")
  in
  let inst =
    Workload.Circuits.instance spec ~n_groups
      ~scheme:Workload.Partition.Intermingled ~bound ()
  in
  let ast = Astskew.Router.ast_dme inst in
  let rct, sink_index =
    Tree.to_rctree inst.params ~rd:inst.rd ~n_sinks:(Instance.n_sinks inst)
      ast.routed
  in
  let elmore_nodes = Rc.Rctree.elmore rct in
  let sim = Rc.Transient.step_response_auto ~resolution:3000 rct in
  let delays_e = Array.map (fun i -> elmore_nodes.(i)) sink_index in
  let delays_t = Array.map (fun i -> sim.crossing.(i)) sink_index in
  let skews_e = group_skews inst delays_e in
  let skews_t = group_skews inst delays_t in
  let max_e = Array.fold_left Float.max 0. skews_e in
  let max_t = Array.fold_left Float.max 0. skews_t in
  let gap =
    Array.fold_left Float.max 0.
      (Array.mapi (fun g se -> Float.abs (se -. skews_t.(g))) skews_e)
  in
  {
    circuit = spec.name;
    n_sinks = spec.n_sinks;
    mean_delay_elmore = mean delays_e;
    mean_delay_transient = mean delays_t;
    delay_error_pct =
      100.
      *. Float.abs (mean delays_e -. mean delays_t)
      /. mean delays_t;
    max_group_skew_elmore = max_e;
    max_group_skew_transient = max_t;
    skew_gap = gap;
  }

let print r =
  Format.printf
    "@.Elmore vs transient on %s (%d sinks):@.  mean delay: %.1f ps (Elmore) vs %.1f ps (transient) — %.1f%% absolute error@.  max intra-group skew: %.2f ps (Elmore) vs %.2f ps (transient) — gap %.2f ps@.  => delay error is large, skew error is small (Chapter III claim)@."
    r.circuit r.n_sinks r.mean_delay_elmore r.mean_delay_transient
    r.delay_error_pct r.max_group_skew_elmore r.max_group_skew_transient
    r.skew_gap
