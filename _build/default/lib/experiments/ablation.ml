type row = {
  name : string;
  wirelength : float;
  cpu_s : float;
  snaking : float;
  rounds : int;
  reduction_vs_default_pct : float;
}

let variants =
  let d = Astskew.Router.ast_default_config in
  [
    ("default", d);
    ("single-merge (no §V.F-1)", { d with multi_merge = false });
    ("no delay-target order (§V.F-2 off)", { d with delay_order_weight = 0. });
    ("cost-ranked candidates", { d with cost_by_planned_wire = true });
    ("no split slack", { d with split_slack = 0. });
    ("full split slack", { d with split_slack = 1.; width_cap = 1. });
  ]

let run ?spec ?(n_groups = 8) ?(bound = 10.) () =
  let spec =
    match spec with
    | Some s -> s
    | None -> Option.get (Workload.Circuits.find "r3")
  in
  let inst =
    Workload.Circuits.instance spec ~n_groups
      ~scheme:Workload.Partition.Intermingled ~bound ()
  in
  let results =
    List.map
      (fun (name, config) -> (name, Astskew.Router.ast_dme ~config inst))
      variants
  in
  let default_wl =
    match results with
    | (_, first) :: _ -> first.Astskew.Router.evaluation.wirelength
    | [] -> assert false
  in
  List.map
    (fun (name, (r : Astskew.Router.result)) ->
      {
        name;
        wirelength = r.evaluation.wirelength;
        cpu_s = r.cpu_seconds;
        snaking = r.evaluation.snaking;
        rounds = r.engine.rounds;
        reduction_vs_default_pct =
          100. *. (r.evaluation.wirelength -. default_wl) /. default_wl;
      })
    results

let print rows =
  Format.printf "@.Ablation (AST-DME engine variants):@.";
  Format.printf "%-28s %-11s %-9s %-9s %-7s %-10s@." "Variant" "Wirelen"
    "vs default" "Snaking" "Rounds" "CPU(s)";
  List.iter
    (fun r ->
      Format.printf "%-28s %-11.0f %+-9.2f%% %-9.0f %-7d %-10.2f@." r.name
        r.wirelength r.reduction_vs_default_pct r.snaking r.rounds r.cpu_s)
    rows
