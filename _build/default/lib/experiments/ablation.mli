(** Ablations of the design choices called out in DESIGN.md and §V.F of
    the thesis: the multi-merge speed-up, the delay-target merge order,
    cost-based candidate ranking, and the SDR split-slack. *)

type row = {
  name : string;
  wirelength : float;
  cpu_s : float;
  snaking : float;
  rounds : int;
  reduction_vs_default_pct : float;
}

(** Run all engine variants on one circuit (default r3, 8 intermingled
    groups, 10 ps bound). *)
val run :
  ?spec:Workload.Circuits.spec ->
  ?n_groups:int ->
  ?bound:float ->
  unit ->
  row list

val print : row list -> unit
