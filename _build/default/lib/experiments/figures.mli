(** Runnable reconstructions of the thesis' illustrative figures.

    Figures 1–5 are conceptual drawings; each function here builds a
    concrete instance exhibiting the figure's phenomenon and returns the
    measured quantities, so the claims become checkable. *)

(** Fig. 1: zero-skew vs bounded-skew routing of a small instance.
    Bounded skew trades a little skew for less wire. *)
type fig1 = {
  zst_wirelength : float;
  zst_skew : float;
  bst_wirelength : float;
  bst_skew : float;
}

val fig1 : unit -> fig1

(** Fig. 2: routing each group separately and stitching vs associative
    merging, on interleaved groups. *)
type fig2 = { stitched_wirelength : float; associative_wirelength : float }

val fig2 : unit -> fig2

(** Fig. 3: merging two subtrees from different groups — the merging
    region is the shortest-distance region between their merging
    segments. *)
type fig3 = {
  region : Geometry.Octagon.t;
  vertices : Geometry.Pt.t list;
  distance : float;
}

val fig3 : unit -> fig3

(** Fig. 4: Instance 1 — subtrees sharing exactly one group; the merge
    satisfies that group's constraint and fuses all involved groups into
    one association. *)
type fig4 = {
  kind : Dme.Merge.kind;
  merged_groups : int list;
  shared_group_width : float;  (** <= bound after the merge *)
}

val fig4 : unit -> fig4

(** Fig. 5: Instance 2 — the closed-form solution of Eqs. (5.1)–(5.3):
    split of the c–f wire and the snaking length on the e wire, with the
    residuals of both balance equations (≈ 0). *)
type fig5 = {
  alpha : float;
  beta : float;
  gamma : float;
  residual_51 : float;
  residual_52 : float;
}

val fig5 : unit -> fig5

(** Print all figure reconstructions. *)
val print_all : unit -> unit
