(** Embedded clock routing trees.

    Edge lengths are stored explicitly and may exceed the L1 distance
    between the endpoints: the excess is wire snaking, which is physical
    wire and counts toward both wirelength and delay. *)

type t =
  | Leaf of Sink.t
  | Node of { pos : Geometry.Pt.t; left : t; right : t; llen : float; rlen : float }

(** A complete routed tree: the merge tree plus the connection from the
    clock source to the tree root. *)
type routed = {
  tree : t;
  source : Geometry.Pt.t;
  source_len : float;  (** wire length from source to the root *)
}

(** Position of a subtree root (sink location for leaves). *)
val pos : t -> Geometry.Pt.t

(** [node pos left right ~llen ~rlen] builds an internal node, checking
    that each edge length covers the L1 distance to the child. *)
val node : Geometry.Pt.t -> t -> t -> llen:float -> rlen:float -> t

(** [route source tree] connects [tree] to [source] with a direct wire. *)
val route : Geometry.Pt.t -> t -> routed

val sinks : t -> Sink.t list
val n_sinks : t -> int
val n_nodes : t -> int
val depth : t -> int

(** Total wirelength of the merge tree (without the source wire). *)
val tree_wirelength : t -> float

(** Total wirelength including the source connection. *)
val wirelength : routed -> float

(** Total snaking wire: sum over edges of (length - L1 endpoint distance). *)
val total_snaking : routed -> float

(** Fold over internal nodes, top-down. *)
val iter_nodes : t -> (Geometry.Pt.t -> t -> t -> float -> float -> unit) -> unit

(** Convert to an electrical RC tree.  Returns the RC tree together with
    the RC node index of each sink (indexed by sink id, which must be
    dense).  Wire segments are modelled as single pi-segments per edge. *)
val to_rctree : Rc.Wire.params -> rd:float -> n_sinks:int -> routed -> Rc.Rctree.t * int array
