type report = {
  wirelength : float;
  snaking : float;
  delays : float array;
  min_delay : float;
  max_delay : float;
  global_skew : float;
  group_skew : float array;
  max_group_skew : float;
}

(* Delays are computed through the same RC-tree conversion the transient
   simulator uses, so Elmore numbers and "SPICE" numbers describe the
   identical circuit. *)
let delays (inst : Instance.t) (r : Tree.routed) =
  let rct, sink_index =
    Tree.to_rctree inst.params ~rd:inst.rd ~n_sinks:(Instance.n_sinks inst) r
  in
  let node_delay = Rc.Rctree.elmore rct in
  Array.map (fun idx -> node_delay.(idx)) sink_index

let run (inst : Instance.t) (r : Tree.routed) =
  let delays = delays inst r in
  let min_delay = Array.fold_left Float.min Float.infinity delays in
  let max_delay = Array.fold_left Float.max Float.neg_infinity delays in
  let lo = Array.make inst.n_groups Float.infinity in
  let hi = Array.make inst.n_groups Float.neg_infinity in
  Array.iter
    (fun (s : Sink.t) ->
      lo.(s.group) <- Float.min lo.(s.group) delays.(s.id);
      hi.(s.group) <- Float.max hi.(s.group) delays.(s.id))
    inst.sinks;
  let group_skew =
    Array.init inst.n_groups (fun g ->
        if lo.(g) > hi.(g) then 0. else hi.(g) -. lo.(g))
  in
  {
    wirelength = Tree.wirelength r;
    snaking = Tree.total_snaking r;
    delays;
    min_delay;
    max_delay;
    global_skew = max_delay -. min_delay;
    group_skew;
    max_group_skew = Array.fold_left Float.max 0. group_skew;
  }

let within_bound ?(slack = 1e-4) (inst : Instance.t) report =
  let ok = ref true in
  Array.iteri
    (fun g w -> if w > Instance.bound_for inst g +. slack then ok := false)
    report.group_skew;
  !ok

let pp_report ppf r =
  Format.fprintf ppf
    "wirelength %.0f (snaking %.0f), delay [%.2f, %.2f] ps, global skew %.2f ps, max group skew %.3f ps"
    r.wirelength r.snaking r.min_delay r.max_delay r.global_skew
    r.max_group_skew
