(** Plain-text instance files, so circuits can be exchanged with other
    tools and edited by hand.

    Format (one record per line, [#] starts a comment):

    {v
    params <r_ohm_per_unit> <c_ff_per_unit>
    driver <rd_ohm>
    source <x> <y>
    bound <ps>
    groupbound <group> <ps>        # optional, repeatable
    groups <n>
    sink <id> <x> <y> <cap_ff> <group>
    v}

    Records may appear in any order except that [groups] must precede
    any [groupbound].  Sink ids must be dense. *)

val to_string : Instance.t -> string
val write_file : string -> Instance.t -> unit

(** Parse an instance; returns [Error message] on malformed input. *)
val of_string : string -> (Instance.t, string) result

val read_file : string -> (Instance.t, string) result
