lib/clocktree/tree.ml: Array Float Format Geometry Int List Rc Sink
