lib/clocktree/tree.mli: Geometry Rc Sink
