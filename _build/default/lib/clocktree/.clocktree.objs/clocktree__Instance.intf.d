lib/clocktree/instance.mli: Format Geometry Rc Sink
