lib/clocktree/instance.ml: Array Float Format Geometry Rc Seq Sink
