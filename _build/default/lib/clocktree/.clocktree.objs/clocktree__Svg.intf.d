lib/clocktree/svg.mli: Instance Tree
