lib/clocktree/evaluate.ml: Array Float Format Instance Rc Sink Tree
