lib/clocktree/evaluate.mli: Format Instance Tree
