lib/clocktree/sink.mli: Format Geometry
