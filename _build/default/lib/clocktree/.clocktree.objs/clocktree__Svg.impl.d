lib/clocktree/svg.ml: Buffer Float Fun Geometry Instance Printf Sink Tree
