lib/clocktree/io.ml: Array Buffer Fun Geometry In_channel Instance List Option Printf Rc Result Sink String
