lib/clocktree/sink.ml: Format Geometry
