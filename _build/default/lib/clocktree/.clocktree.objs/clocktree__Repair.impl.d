lib/clocktree/repair.ml: Array Evaluate Float Geometry Instance Int Map Rc Sink Tree
