lib/clocktree/io.mli: Instance
