lib/clocktree/repair.mli: Instance Tree
