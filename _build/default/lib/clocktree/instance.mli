(** A routing instance: the full input of the associative-skew problem. *)

type t = private {
  sinks : Sink.t array;
  n_groups : int;
  bound : float;  (** default intra-group skew bound, ps (0 = zero skew) *)
  group_bounds : float array option;
      (** optional per-group bounds overriding [bound] (Chapter II's
          "can be extended to non-zero ... bounded skew constraint") *)
  params : Rc.Wire.params;
  source : Geometry.Pt.t;  (** clock source location *)
  rd : float;  (** driver resistance at the source, ohm *)
}

(** Validates that sink ids are dense (equal to their index) and group
    ids lie in [0, n_groups). *)
val make :
  ?params:Rc.Wire.params ->
  ?rd:float ->
  ?bound:float ->
  ?group_bounds:float array ->
  source:Geometry.Pt.t ->
  n_groups:int ->
  Sink.t array ->
  t

(** Effective skew bound of one group: its entry in [group_bounds], or
    the default [bound]. *)
val bound_for : t -> int -> float

(** The loosest group bound (used to size slack budgets). *)
val max_bound : t -> float

val n_sinks : t -> int

(** Sinks of one group. *)
val group_sinks : t -> int -> Sink.t list

(** Number of sinks per group. *)
val group_sizes : t -> int array

(** Axis-aligned bounding box of the sink locations. *)
val bbox : t -> Geometry.Octagon.t

val pp : Format.formatter -> t -> unit
