type t = {
  sinks : Sink.t array;
  n_groups : int;
  bound : float;
  group_bounds : float array option;
  params : Rc.Wire.params;
  source : Geometry.Pt.t;
  rd : float;
}

let make ?(params = Rc.Wire.default) ?(rd = 100.) ?(bound = 0.) ?group_bounds
    ~source ~n_groups sinks =
  if Array.length sinks = 0 then invalid_arg "Instance.make: no sinks";
  if n_groups <= 0 then invalid_arg "Instance.make: n_groups must be positive";
  if bound < 0. then invalid_arg "Instance.make: negative skew bound";
  (match group_bounds with
   | Some bs ->
     if Array.length bs <> n_groups then
       invalid_arg "Instance.make: group_bounds length mismatch";
     Array.iter
       (fun b ->
         if b < 0. then invalid_arg "Instance.make: negative group bound")
       bs
   | None -> ());
  Array.iteri
    (fun i (s : Sink.t) ->
      if s.id <> i then invalid_arg "Instance.make: sink ids must be dense";
      if s.group >= n_groups then
        invalid_arg "Instance.make: sink group out of range")
    sinks;
  { sinks; n_groups; bound; group_bounds; params; source; rd }

let bound_for t g =
  match t.group_bounds with Some bs -> bs.(g) | None -> t.bound

let max_bound t =
  match t.group_bounds with
  | Some bs -> Array.fold_left Float.max 0. bs
  | None -> t.bound

let n_sinks t = Array.length t.sinks

let group_sinks t g =
  Array.to_list (Array.of_seq (Seq.filter (fun (s : Sink.t) -> s.group = g)
                                 (Array.to_seq t.sinks)))

let group_sizes t =
  let sizes = Array.make t.n_groups 0 in
  Array.iter (fun (s : Sink.t) -> sizes.(s.group) <- sizes.(s.group) + 1) t.sinks;
  sizes

let bbox t =
  Array.fold_left
    (fun acc (s : Sink.t) -> Geometry.Octagon.hull acc (Geometry.Octagon.of_point s.loc))
    Geometry.Octagon.empty t.sinks

let pp ppf t =
  Format.fprintf ppf "%d sinks, %d groups, bound %gps, %a" (n_sinks t)
    t.n_groups t.bound Rc.Wire.pp t.params
