(** SVG rendering of routed clock trees: sinks colored by group, internal
    nodes, rectilinear elbow wires (snaked edges dashed), and the source
    marked.  For inspecting routing quality visually. *)

(** [render inst routed] is a complete standalone SVG document. *)
val render : ?width_px:int -> Instance.t -> Tree.routed -> string

val write_file : ?width_px:int -> string -> Instance.t -> Tree.routed -> unit
