type t = { id : int; loc : Geometry.Pt.t; cap : float; group : int }

let make ~id ~loc ~cap ~group =
  if cap < 0. then invalid_arg "Sink.make: negative capacitance";
  if group < 0 then invalid_arg "Sink.make: negative group";
  { id; loc; cap; group }

let pp ppf s =
  Format.fprintf ppf "sink %d @ %a cap=%gfF group=%d" s.id Geometry.Pt.pp
    s.loc s.cap s.group
