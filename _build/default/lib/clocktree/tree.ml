module Pt = Geometry.Pt

type t =
  | Leaf of Sink.t
  | Node of { pos : Pt.t; left : t; right : t; llen : float; rlen : float }

type routed = { tree : t; source : Pt.t; source_len : float }

let pos = function Leaf s -> s.Sink.loc | Node n -> n.pos

let node p left right ~llen ~rlen =
  let check name len child =
    let d = Pt.dist p (pos child) in
    if len < d -. 1e-4 then
      invalid_arg
        (Format.asprintf "Tree.node: %s length %g < distance %g" name len d)
  in
  check "left" llen left;
  check "right" rlen right;
  Node { pos = p; left; right; llen; rlen }

let route source tree =
  { tree; source; source_len = Pt.dist source (pos tree) }

let rec sinks = function
  | Leaf s -> [ s ]
  | Node n -> sinks n.left @ sinks n.right

let rec n_sinks = function Leaf _ -> 1 | Node n -> n_sinks n.left + n_sinks n.right

let rec n_nodes = function
  | Leaf _ -> 1
  | Node n -> 1 + n_nodes n.left + n_nodes n.right

let rec depth = function
  | Leaf _ -> 1
  | Node n -> 1 + Int.max (depth n.left) (depth n.right)

let rec tree_wirelength = function
  | Leaf _ -> 0.
  | Node n -> n.llen +. n.rlen +. tree_wirelength n.left +. tree_wirelength n.right

let wirelength r = r.source_len +. tree_wirelength r.tree

let total_snaking r =
  let rec go = function
    | Leaf _ -> 0.
    | Node n ->
      let sl = n.llen -. Pt.dist n.pos (pos n.left) in
      let sr = n.rlen -. Pt.dist n.pos (pos n.right) in
      Float.max 0. sl +. Float.max 0. sr +. go n.left +. go n.right
  in
  Float.max 0. (r.source_len -. Pt.dist r.source (pos r.tree)) +. go r.tree

let rec iter_nodes t f =
  match t with
  | Leaf _ -> ()
  | Node n ->
    f n.pos n.left n.right n.llen n.rlen;
    iter_nodes n.left f;
    iter_nodes n.right f

let to_rctree (params : Rc.Wire.params) ~rd ~n_sinks:nsinks r =
  (* RC node 0 models the source end of the source wire; every tree node
     becomes an RC node; each edge is one pi segment: R = r·len with
     c·len/2 lumped at each end. *)
  let specs = ref [] in
  let count = ref 0 in
  let sink_index = Array.make nsinks (-1) in
  let add parent res cap =
    let idx = !count in
    incr count;
    specs := (idx, parent, res, cap) :: !specs;
    idx
  in
  let half len = params.c *. len /. 2. in
  let src_idx = add (-1) 0. (half r.source_len) in
  let rec go parent len t =
    let res = params.r *. len in
    match t with
    | Leaf s ->
      let idx = add parent res (s.Sink.cap +. half len) in
      sink_index.(s.Sink.id) <- idx
    | Node n ->
      let idx = add parent res (half len +. half n.llen +. half n.rlen) in
      go idx n.llen n.left;
      go idx n.rlen n.right
  in
  go src_idx r.source_len r.tree;
  let arr = Array.make !count (-1, 0., 0.) in
  List.iter (fun (i, p, res, cap) -> arr.(i) <- (p, res, cap)) !specs;
  (Rc.Rctree.build ~rd arr, sink_index)
