let to_string (inst : Instance.t) =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.bprintf buf fmt in
  p "# astskew clock routing instance\n";
  p "params %.17g %.17g\n" inst.params.r inst.params.c;
  p "driver %.17g\n" inst.rd;
  p "source %.17g %.17g\n" inst.source.x inst.source.y;
  p "bound %.17g\n" inst.bound;
  p "groups %d\n" inst.n_groups;
  (match inst.group_bounds with
   | None -> ()
   | Some bs -> Array.iteri (fun g b -> p "groupbound %d %.17g\n" g b) bs);
  Array.iter
    (fun (s : Sink.t) ->
      p "sink %d %.17g %.17g %.17g %d\n" s.id s.loc.x s.loc.y s.cap s.group)
    inst.sinks;
  Buffer.contents buf

let write_file path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

type parse_state = {
  mutable params : Rc.Wire.params option;
  mutable rd : float option;
  mutable source : Geometry.Pt.t option;
  mutable bound : float option;
  mutable n_groups : int option;
  mutable group_bounds : (int * float) list;
  mutable sinks : Sink.t list;
}

let of_string text =
  let st =
    {
      params = None;
      rd = None;
      source = None;
      bound = None;
      n_groups = None;
      group_bounds = [];
      sinks = [];
    }
  in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let tokens =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    in
    let float_of s =
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "line %d: bad number %S" lineno s)
    in
    let int_of s =
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "line %d: bad integer %S" lineno s)
    in
    let ( let* ) = Result.bind in
    match tokens with
    | [] -> Ok ()
    | [ "params"; r; c ] ->
      let* r = float_of r in
      let* c = float_of c in
      st.params <- Some (Rc.Wire.make ~r ~c);
      Ok ()
    | [ "driver"; rd ] ->
      let* rd = float_of rd in
      st.rd <- Some rd;
      Ok ()
    | [ "source"; x; y ] ->
      let* x = float_of x in
      let* y = float_of y in
      st.source <- Some (Geometry.Pt.make x y);
      Ok ()
    | [ "bound"; b ] ->
      let* b = float_of b in
      st.bound <- Some b;
      Ok ()
    | [ "groups"; n ] ->
      let* n = int_of n in
      st.n_groups <- Some n;
      Ok ()
    | [ "groupbound"; g; b ] ->
      let* g = int_of g in
      let* b = float_of b in
      st.group_bounds <- (g, b) :: st.group_bounds;
      Ok ()
    | [ "sink"; id; x; y; cap; group ] ->
      let* id = int_of id in
      let* x = float_of x in
      let* y = float_of y in
      let* cap = float_of cap in
      let* group = int_of group in
      st.sinks <- Sink.make ~id ~loc:(Geometry.Pt.make x y) ~cap ~group :: st.sinks;
      Ok ()
    | keyword :: _ ->
      Error (Printf.sprintf "line %d: unrecognized record %S" lineno keyword)
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all lineno = function
    | [] -> Ok ()
    | line :: rest ->
      (match parse_line lineno line with
       | Ok () -> parse_all (lineno + 1) rest
       | Error _ as e -> e)
  in
  match parse_all 1 lines with
  | Error _ as e -> e
  | Ok () ->
    (match (st.source, st.n_groups) with
     | None, _ -> error 0 "missing 'source' record"
     | _, None -> error 0 "missing 'groups' record"
     | Some source, Some n_groups ->
       let sinks =
         Array.of_list
           (List.sort (fun (a : Sink.t) b -> compare a.id b.id) st.sinks)
       in
       let group_bounds =
         match st.group_bounds with
         | [] -> None
         | entries ->
           let bs =
             Array.init n_groups (fun g ->
                 match List.assoc_opt g entries with
                 | Some b -> b
                 | None -> Option.value st.bound ~default:0.)
           in
           Some bs
       in
       (try
          Ok
            (Instance.make
               ?params:st.params
               ?rd:st.rd
               ?bound:st.bound
               ?group_bounds
               ~source ~n_groups sinks)
        with Invalid_argument msg -> Error msg))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
