module Pt = Geometry.Pt

(* Distinct hues per group, fixed saturation/lightness. *)
let group_color g = Printf.sprintf "hsl(%d, 70%%, 45%%)" (g * 61 mod 360)

let render ?(width_px = 800) (inst : Instance.t) (r : Tree.routed) =
  let bbox = Instance.bbox inst in
  let xr = Geometry.Octagon.x_range bbox and yr = Geometry.Octagon.y_range bbox in
  let pad = 0.05 *. Float.max (Geometry.Interval.width xr) (Geometry.Interval.width yr) in
  let pad = Float.max pad 1. in
  let x0 = Float.min xr.lo r.source.x -. pad
  and x1 = Float.max xr.hi r.source.x +. pad in
  let y0 = Float.min yr.lo r.source.y -. pad
  and y1 = Float.max yr.hi r.source.y +. pad in
  let w = x1 -. x0 and h = y1 -. y0 in
  let scale = float_of_int width_px /. w in
  let height_px = int_of_float (Float.ceil (h *. scale)) in
  let sx x = (x -. x0) *. scale in
  (* SVG's y axis points down; flip so the layout reads naturally. *)
  let sy y = (y1 -. y) *. scale in
  let buf = Buffer.create 16384 in
  let p fmt = Printf.bprintf buf fmt in
  p "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
    width_px height_px width_px height_px;
  p "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n";
  let elbow a b ~snaked =
    let dash = if snaked then " stroke-dasharray=\"4 3\"" else "" in
    p
      "<path d=\"M %.1f %.1f L %.1f %.1f L %.1f %.1f\" fill=\"none\" stroke=\"#555\" stroke-width=\"1\"%s/>\n"
      (sx a.Pt.x) (sy a.Pt.y) (sx b.Pt.x) (sy a.Pt.y) (sx b.Pt.x) (sy b.Pt.y)
      dash
  in
  let rec wires t =
    match t with
    | Tree.Leaf _ -> ()
    | Tree.Node n ->
      let edge len child =
        let cpos = Tree.pos child in
        elbow n.pos cpos ~snaked:(len > Pt.dist n.pos cpos +. 1e-4)
      in
      edge n.llen n.left;
      edge n.rlen n.right;
      wires n.left;
      wires n.right
  in
  let root_pos = Tree.pos r.tree in
  elbow r.source root_pos
    ~snaked:(r.source_len > Pt.dist r.source root_pos +. 1e-4);
  wires r.tree;
  let rec nodes t =
    match t with
    | Tree.Leaf s ->
      p
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3.5\" fill=\"%s\"><title>sink %d (group %d)</title></circle>\n"
        (sx s.Sink.loc.x) (sy s.Sink.loc.y)
        (group_color s.Sink.group)
        s.Sink.id s.Sink.group
    | Tree.Node n ->
      p "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"1.5\" fill=\"#999\"/>\n" (sx n.pos.x)
        (sy n.pos.y);
      nodes n.left;
      nodes n.right
  in
  nodes r.tree;
  p
    "<rect x=\"%.1f\" y=\"%.1f\" width=\"9\" height=\"9\" fill=\"black\"><title>clock source</title></rect>\n"
    (sx r.source.x -. 4.5)
    (sy r.source.y -. 4.5);
  p "</svg>\n";
  Buffer.contents buf

let write_file ?width_px path inst r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?width_px inst r))
