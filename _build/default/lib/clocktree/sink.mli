(** Clock sinks: flip-flop clock pins with a location, a load capacitance
    and the sink group they belong to. *)

type t = {
  id : int;  (** dense index, unique within an instance *)
  loc : Geometry.Pt.t;
  cap : float;  (** load capacitance, fF *)
  group : int;  (** group index in [0, n_groups) *)
}

val make : id:int -> loc:Geometry.Pt.t -> cap:float -> group:int -> t
val pp : Format.formatter -> t -> unit
