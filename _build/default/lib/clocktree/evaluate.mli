(** Exact Elmore evaluation of embedded clock trees: wirelength, per-sink
    delays, global skew and per-group skew — the quantities reported in
    the thesis' Tables I and II. *)

type report = {
  wirelength : float;
  snaking : float;
  delays : float array;  (** per sink id, ps, driver included *)
  min_delay : float;
  max_delay : float;
  global_skew : float;  (** max - min over all sinks, ps *)
  group_skew : float array;  (** per-group max - min, ps *)
  max_group_skew : float;
}

(** Per-sink Elmore delays (ps) of a routed tree, indexed by sink id. *)
val delays : Instance.t -> Tree.routed -> float array

val run : Instance.t -> Tree.routed -> report

(** Does the tree satisfy the instance's intra-group bound (within
    [slack], default 1e-4 ps of numerical slack)? *)
val within_bound : ?slack:float -> Instance.t -> report -> bool

val pp_report : Format.formatter -> report -> unit
