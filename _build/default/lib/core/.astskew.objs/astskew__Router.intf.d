lib/core/router.mli: Clocktree Dme Format
