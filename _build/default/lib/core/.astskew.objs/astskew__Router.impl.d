lib/core/router.ml: Array Clocktree Dme Float Format List Option Sys
