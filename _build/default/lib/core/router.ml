module Instance = Clocktree.Instance
module Evaluate = Clocktree.Evaluate
module Repair = Clocktree.Repair

type result = {
  routed : Clocktree.Tree.routed;
  evaluation : Evaluate.report;
  engine : Dme.Engine.stats;
  repair : Repair.stats;
  cpu_seconds : float;
}

(* Route [route_inst] (whose groups define the constraints the engine and
   repair enforce) and evaluate against [eval_inst] (the original problem,
   whose groups define the reported skews). *)
let solve ?config ~route_inst ~eval_inst () =
  let t0 = Sys.time () in
  let routed, engine = Dme.Engine.run ?config route_inst in
  let routed, repair = Repair.run route_inst routed in
  let cpu_seconds = Sys.time () -. t0 in
  let evaluation = Evaluate.run eval_inst routed in
  { routed; evaluation; engine; repair; cpu_seconds }

(* AST-DME ships with the §V.F delay-target merge order on (it prevents
   late deep-vs-shallow shared-group merges that would need heavy
   snaking); the baselines use the plain nearest-neighbour order of
   greedy-DME / greedy-BST, as in the thesis' comparison. *)
let ast_default_config =
  { Dme.Engine.default with delay_order_weight = 400. }

let ast_dme ?(config = ast_default_config) inst =
  solve ~config ~route_inst:inst ~eval_inst:inst ()

(* Fuse all groups into one: intra-group bound becomes a global bound;
   with per-group bounds the tightest one applies, so the fused router
   still satisfies every original constraint. *)
let fused ?bound (inst : Instance.t) =
  let sinks =
    Array.map (fun (s : Clocktree.Sink.t) -> { s with group = 0 }) inst.sinks
  in
  let default =
    List.init inst.n_groups (fun g -> Instance.bound_for inst g)
    |> List.fold_left Float.min Float.infinity
  in
  Instance.make ~params:inst.params ~rd:inst.rd
    ~bound:(Option.value bound ~default)
    ~source:inst.source ~n_groups:1 sinks

let ext_bst ?config inst =
  solve ?config ~route_inst:(fused inst) ~eval_inst:inst ()

let greedy_dme ?config inst =
  solve ?config ~route_inst:(fused ~bound:0. inst) ~eval_inst:inst ()

let mmm_dme ?(config = ast_default_config) inst =
  let t0 = Sys.time () in
  let routed, engine = Dme.Mmm.run ~config inst in
  let routed, repair = Repair.run inst routed in
  let cpu_seconds = Sys.time () -. t0 in
  let evaluation = Evaluate.run inst routed in
  { routed; evaluation; engine; repair; cpu_seconds }

let reduction ~baseline result =
  (baseline.evaluation.wirelength -. result.evaluation.wirelength)
  /. baseline.evaluation.wirelength

let pp_result ppf r =
  Format.fprintf ppf "%a, %.2fs cpu, %d infeasible merges, repair +%.0f wire"
    Evaluate.pp_report r.evaluation r.cpu_seconds r.engine.infeasible_merges
    r.repair.added_wire
