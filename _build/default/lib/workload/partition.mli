(** Sink-group partitions for the two experiments of Chapter VI.

    - {!clustered}: the die is divided into as many rectangular boxes as
      groups; sinks in the same box form a group (Table I's "clusters of
      sink groups").
    - {!intermingled}: groups are assigned uniformly at random, so every
      group is spread across the whole die (Table II's "intermingled sink
      groups" — the difficult instances). *)

type scheme = Clustered | Intermingled

(** [assign scheme rng ~die ~n_groups locs] maps each sink location to a
    group in [0, n_groups).  Every group is guaranteed non-empty (sinks
    are reassigned round-robin if a group would come out empty). *)
val assign :
  scheme ->
  Rng.t ->
  die:float ->
  n_groups:int ->
  Geometry.Pt.t array ->
  int array

val scheme_of_string : string -> scheme option
val scheme_to_string : scheme -> string
