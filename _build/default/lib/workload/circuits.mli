(** Synthetic stand-ins for the r1–r5 clock benchmark circuits.

    The published r1–r5 suite (used by the thesis and by the BST paper it
    extends) is not redistributable, so this module generates
    deterministic circuits with the same sink counts, uniform sink
    placement over a square die, and load capacitances in a realistic
    range.  Relative algorithm comparisons — the only quantities the
    thesis reports — are preserved because all routers run on identical
    instances.  See DESIGN.md, "Substitutions". *)

type spec = {
  name : string;
  n_sinks : int;
  die : float;  (** side of the square die, layout units *)
}

(** The five benchmark circuits: r1 (267 sinks) … r5 (3101 sinks). *)
val specs : spec list

val find : string -> spec option

(** [instance spec ~n_groups ~scheme ~bound ?seed ()] builds a routing
    instance: sinks placed uniformly at random (fixed [seed], default
    derived from the circuit name), groups assigned by [scheme], clock
    source at the die centre. *)
val instance :
  ?seed:int64 ->
  ?rd:float ->
  ?params:Rc.Wire.params ->
  spec ->
  n_groups:int ->
  scheme:Partition.scheme ->
  bound:float ->
  unit ->
  Clocktree.Instance.t
