type scheme = Clustered | Intermingled

(* Grid of rows × cols boxes with rows * cols >= n_groups and box index
   capped: the most square factorization of the smallest grid that can
   host all the groups. *)
let grid_shape n_groups =
  let rows = int_of_float (Float.sqrt (float_of_int n_groups)) in
  let rec best r =
    if r < 1 then (1, n_groups)
    else if n_groups mod r = 0 then (r, n_groups / r)
    else best (r - 1)
  in
  best (Int.max 1 rows)

let clustered ~die ~n_groups (locs : Geometry.Pt.t array) =
  let rows, cols = grid_shape n_groups in
  let assign (p : Geometry.Pt.t) =
    let clampi n v = Int.max 0 (Int.min (n - 1) v) in
    let r = clampi rows (int_of_float (p.y /. die *. float_of_int rows)) in
    let c = clampi cols (int_of_float (p.x /. die *. float_of_int cols)) in
    (r * cols) + c
  in
  Array.map assign locs

let intermingled rng ~n_groups locs =
  Array.map (fun _ -> Rng.int rng n_groups) locs

(* Reassign sinks round-robin into empty groups so every group exists. *)
let fill_empty_groups rng ~n_groups groups =
  let counts = Array.make n_groups 0 in
  Array.iter (fun g -> counts.(g) <- counts.(g) + 1) groups;
  let n = Array.length groups in
  for g = 0 to n_groups - 1 do
    if counts.(g) = 0 then begin
      (* steal a sink from the largest group *)
      let donor = ref 0 in
      for g' = 1 to n_groups - 1 do
        if counts.(g') > counts.(!donor) then donor := g'
      done;
      let start = Rng.int rng n in
      let rec find i =
        if i >= n then ()
        else
          let idx = (start + i) mod n in
          if groups.(idx) = !donor && counts.(!donor) > 1 then begin
            groups.(idx) <- g;
            counts.(!donor) <- counts.(!donor) - 1;
            counts.(g) <- 1
          end
          else find (i + 1)
      in
      find 0
    end
  done;
  groups

let assign scheme rng ~die ~n_groups locs =
  if n_groups <= 0 then invalid_arg "Partition.assign: n_groups must be positive";
  let groups =
    match scheme with
    | Clustered -> clustered ~die ~n_groups locs
    | Intermingled -> intermingled rng ~n_groups locs
  in
  fill_empty_groups rng ~n_groups groups

let scheme_of_string = function
  | "clustered" -> Some Clustered
  | "intermingled" -> Some Intermingled
  | _ -> None

let scheme_to_string = function
  | Clustered -> "clustered"
  | Intermingled -> "intermingled"
