lib/workload/partition.mli: Geometry Rng
