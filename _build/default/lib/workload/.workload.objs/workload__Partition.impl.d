lib/workload/partition.ml: Array Float Geometry Int Rng
