lib/workload/circuits.mli: Clocktree Partition Rc
