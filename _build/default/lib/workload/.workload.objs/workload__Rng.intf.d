lib/workload/rng.mli:
