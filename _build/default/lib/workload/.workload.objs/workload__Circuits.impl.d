lib/workload/circuits.ml: Array Clocktree Geometry Hashtbl Int64 List Option Partition Rc Rng
