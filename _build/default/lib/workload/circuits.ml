module Pt = Geometry.Pt

type spec = { name : string; n_sinks : int; die : float }

(* Die sides chosen so the EXT-BST wirelengths land in the same magnitude
   as the published r1-r5 numbers (~1.1e6 for r1 up to ~8e6 for r5). *)
let specs =
  [
    { name = "r1"; n_sinks = 267; die = 49600. };
    { name = "r2"; n_sinks = 598; die = 67900. };
    { name = "r3"; n_sinks = 862; die = 71300. };
    { name = "r4"; n_sinks = 1903; die = 95400. };
    { name = "r5"; n_sinks = 3101; die = 111000. };
  ]

let find name = List.find_opt (fun s -> s.name = name) specs

let default_seed spec =
  (* Stable per-circuit seed derived from the name. *)
  let h = Hashtbl.hash spec.name land 0xFFFF in
  Int64.of_int ((h * 2654435761) + spec.n_sinks)

let instance ?seed ?(rd = 100.) ?(params = Rc.Wire.default) spec ~n_groups
    ~scheme ~bound () =
  let seed = Option.value seed ~default:(default_seed spec) in
  let rng = Rng.create seed in
  let locs =
    Array.init spec.n_sinks (fun _ ->
        Pt.make (Rng.float_range rng 0. spec.die) (Rng.float_range rng 0. spec.die))
  in
  let caps = Array.init spec.n_sinks (fun _ -> Rng.float_range rng 20. 80.) in
  let groups =
    Partition.assign scheme (Rng.split rng) ~die:spec.die ~n_groups locs
  in
  let sinks =
    Array.init spec.n_sinks (fun i ->
        Clocktree.Sink.make ~id:i ~loc:locs.(i) ~cap:caps.(i) ~group:groups.(i))
  in
  let source = Pt.make (spec.die /. 2.) (spec.die /. 2.) in
  Clocktree.Instance.make ~params ~rd ~bound ~source ~n_groups sinks
