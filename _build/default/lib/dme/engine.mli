(** The complete deferred-merge engine: bottom-up merging (Fig. 6) plus
    top-down embedding.  All three routers of the library — AST-DME,
    EXT-BST and greedy-DME — are this engine run on differently grouped
    instances. *)

type config = {
  multi_merge : bool;  (** §V.F enhancement 1: batch merges per round *)
  merge_fraction : float;  (** batch size as a fraction of active subtrees *)
  knn : int;  (** nearest-neighbour candidates per query *)
  delay_order_weight : float;
      (** §V.F enhancement 2: bias merge order toward slow subtrees,
          layout units per ps (0 = off) *)
  split_slack : float;
      (** fraction of the skew bound a cross-group merge may spend on
          split-range delay uncertainty *)
  slack_usage : float;
      (** fraction of a group's remaining slack one constrained merge may
          consume before snaking is considered (gradual slack spending) *)
  width_cap : float;
      (** cumulative cap on any group's delay-window width as a fraction
          of the bound; reserves slack for end-game merges *)
  sdr_samples : int;  (** slices used to build shortest-distance regions *)
  cost_by_planned_wire : bool;
      (** rank merge candidates by planned wire (including snaking)
          instead of region distance; an ablation knob — distance wins
          in practice because deferring balancing cost lets group
          offsets drift *)
  avoid_infeasible : bool;
      (** heavily penalize candidate pairs whose trial merge has
          mutually inconsistent shared-group constraints (Instance 2
          conflicts), merging them only as a last resort *)
}

val default : config

type stats = {
  rounds : int;
  same_group : int;
  cross_group : int;
  shared_one : int;
  shared_multi : int;
  planned_snake : float;  (** snaking wire committed during planning *)
  infeasible_merges : int;
      (** merges whose constraints were mutually inconsistent; their
          residual skew is fixed by {!Clocktree.Repair} *)
}

(** Plan and embed a clock tree for the instance.  The result is the
    pre-repair tree: callers normally pass it through
    {!Clocktree.Repair.run}. *)
val run : ?config:config -> Clocktree.Instance.t -> Clocktree.Tree.routed * stats
