type config = {
  multi_merge : bool;
  merge_fraction : float;
  knn : int;
  delay_order_weight : float;
  split_slack : float;
  slack_usage : float;
  width_cap : float;
  sdr_samples : int;
  cost_by_planned_wire : bool;
  avoid_infeasible : bool;
}

let default =
  {
    multi_merge = true;
    merge_fraction = 0.5;
    knn = 16;
    delay_order_weight = 0.;
    split_slack = 0.25;
    slack_usage = 0.3;
    width_cap = 0.7;
    sdr_samples = 9;
    cost_by_planned_wire = false;
    avoid_infeasible = true;
  }

type stats = {
  rounds : int;
  same_group : int;
  cross_group : int;
  shared_one : int;
  shared_multi : int;
  planned_snake : float;
  infeasible_merges : int;
}

let run ?(config = default) inst =
  let same_group = ref 0 in
  let cross_group = ref 0 in
  let shared_one = ref 0 in
  let shared_multi = ref 0 in
  let planned_snake = ref 0. in
  let infeasible = ref 0 in
  let merge ~id a b =
    let result =
      Merge.run inst ~slack_usage:config.slack_usage
        ~split_slack:config.split_slack ~width_cap:config.width_cap
        ~sdr_samples:config.sdr_samples ~id a b
    in
    (match result.kind with
     | Merge.Same_group -> incr same_group
     | Merge.Cross_group -> incr cross_group
     | Merge.Shared_one -> incr shared_one
     | Merge.Shared_multi -> incr shared_multi);
    planned_snake := !planned_snake +. result.snake;
    if not result.feasible then incr infeasible;
    result.subtree
  in
  let cost (a : Subtree.t) (b : Subtree.t) =
    let dist = Geometry.Octagon.dist a.region b.region in
    if config.cost_by_planned_wire || config.avoid_infeasible then begin
      let trial =
        Merge.run inst ~slack_usage:config.slack_usage
          ~split_slack:config.split_slack ~width_cap:config.width_cap
          ~sdr_samples:config.sdr_samples ~id:(-1) a b
      in
      let base = if config.cost_by_planned_wire then trial.planned_wire else dist in
      (* An infeasible pair (mutually inconsistent shared-group offsets,
         the thesis' Instance 2) is merged only as a last resort. *)
      if config.avoid_infeasible && not trial.feasible then base +. 1e9
      else base
    end
    else dist
  in
  let order_config =
    Order.
      {
        multi_merge = config.multi_merge;
        merge_fraction = config.merge_fraction;
        knn = config.knn;
        delay_order_weight = config.delay_order_weight;
      }
  in
  let root, rounds = Order.run inst order_config ~cost ~merge in
  let routed = Embed.run inst root in
  ( routed,
    {
      rounds;
      same_group = !same_group;
      cross_group = !cross_group;
      shared_one = !shared_one;
      shared_multi = !shared_multi;
      planned_snake = !planned_snake;
      infeasible_merges = !infeasible;
    } )
