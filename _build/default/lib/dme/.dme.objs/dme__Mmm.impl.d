lib/dme/mmm.ml: Array Clocktree Embed Engine Float Geometry Int Merge Subtree
