lib/dme/subtree.ml: Clocktree Float Format Geometry Int List Map
