lib/dme/engine.ml: Embed Geometry Merge Order Subtree
