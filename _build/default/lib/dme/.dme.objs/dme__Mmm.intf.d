lib/dme/mmm.mli: Clocktree Engine
