lib/dme/engine.mli: Clocktree
