lib/dme/embed.ml: Clocktree Float Geometry Subtree
