lib/dme/order.ml: Array Clocktree Float Geometry Hashtbl Int List Subtree
