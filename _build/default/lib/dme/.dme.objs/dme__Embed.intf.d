lib/dme/embed.mli: Clocktree Subtree
