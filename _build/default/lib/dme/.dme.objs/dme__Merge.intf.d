lib/dme/merge.mli: Clocktree Format Subtree
