lib/dme/order.mli: Clocktree Subtree
