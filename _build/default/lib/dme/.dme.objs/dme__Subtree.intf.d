lib/dme/subtree.mli: Clocktree Format Geometry Map
