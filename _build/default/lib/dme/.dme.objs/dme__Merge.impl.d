lib/dme/merge.ml: Clocktree Float Format Geometry List Rc Subtree
