(** Bottom-up subtree state of the deferred-merge engine.

    A subtree is represented by the region of admissible root locations
    (an octagon: the generalized merging segment / merging region),
    its downstream capacitance, and *exact* per-group delay intervals:
    for every point of the region, the realized Elmore delay from that
    point to each sink of group [g] lies in the recorded interval of [g].
    Exactness holds because merges either commit their wire lengths
    (delays are then position-independent) or restrict the region to
    shortest-path points whose split range is accounted for in the
    intervals. *)

module IntMap : Map.S with type key = int

(** How the two child wires of a merge are realized at embedding time. *)
type lengths =
  | Committed of { ea : float; eb : float }
      (** fixed wire lengths; shortfall against the placed distance is
          snaked *)
  | Split of { total : float; split_lo : float; split_hi : float }
      (** shortest-path merge: the wire to the left child has length
          [dist(p, left.region)] ∈ [split_lo, split_hi] and the right
          wire takes the rest of [total] *)

type t = {
  id : int;
  region : Geometry.Octagon.t;
  cap : float;  (** downstream capacitance, fF, wires included *)
  delay : Geometry.Interval.t IntMap.t;  (** per-group delay from the region, ps *)
  n_sinks : int;
  build : build;
}

and build = Leaf of Clocktree.Sink.t | Merge of { left : t; right : t; lengths : lengths }

val leaf : Clocktree.Sink.t -> t

(** Group ids present in the subtree. *)
val groups : t -> int list

(** Groups present in both subtrees. *)
val shared_groups : t -> t -> int list

(** Hull of all per-group delay intervals. *)
val delay_hull : t -> Geometry.Interval.t

(** Largest per-group delay interval width (ps). *)
val max_group_width : t -> float

(** Smallest remaining slack [bound - width] over the subtree's groups;
    [bound] when the map is empty (never is). *)
val min_slack : bound:float -> t -> float

(** Per-group variant: smallest [bound_of g - width g]. *)
val min_slack_by : bound_of:(int -> float) -> t -> float

val pp : Format.formatter -> t -> unit
