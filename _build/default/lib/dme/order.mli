(** Merge ordering: nearest-neighbour selection with Edahiro-style
    multi-merge rounds (§V.F enhancement 1) and optional delay-target
    biasing (§V.F enhancement 2).

    Each round computes, for every active subtree, its nearest neighbour
    by exact region distance among the [knn] grid candidates, sorts the
    candidate pairs by cost and greedily merges a disjoint prefix. *)

type config = {
  multi_merge : bool;
      (** merge a batch of pairs per round instead of a single pair *)
  merge_fraction : float;
      (** fraction of active subtrees consumed per multi-merge round *)
  knn : int;  (** grid candidates examined per nearest-neighbour query *)
  delay_order_weight : float;
      (** layout units per ps: sorts deeper (slower) subtrees earlier;
          0 disables the delay-target enhancement *)
}

val default : config

(** [run inst config ~cost ~merge] reduces the sink set to one subtree,
    calling [merge ~id a b] for every selected pair.  [cost a b] is the
    merging cost used to rank candidate pairs — typically the planned
    wire of a trial merge, so partners that merge without snaking (e.g.
    cross-group neighbours) are preferred over equally close partners
    that would require balancing wire.  Returns the final subtree and
    the number of rounds executed. *)
val run :
  Clocktree.Instance.t ->
  config ->
  cost:(Subtree.t -> Subtree.t -> float) ->
  merge:(id:int -> Subtree.t -> Subtree.t -> Subtree.t) ->
  Subtree.t * int
