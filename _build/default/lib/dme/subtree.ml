module IntMap = Map.Make (Int)
module Interval = Geometry.Interval

type lengths =
  | Committed of { ea : float; eb : float }
  | Split of { total : float; split_lo : float; split_hi : float }

type t = {
  id : int;
  region : Geometry.Octagon.t;
  cap : float;
  delay : Interval.t IntMap.t;
  n_sinks : int;
  build : build;
}

and build = Leaf of Clocktree.Sink.t | Merge of { left : t; right : t; lengths : lengths }

let leaf (s : Clocktree.Sink.t) =
  {
    id = s.id;
    region = Geometry.Octagon.of_point s.loc;
    cap = s.cap;
    delay = IntMap.singleton s.group (Interval.point 0.);
    n_sinks = 1;
    build = Leaf s;
  }

let groups t = List.map fst (IntMap.bindings t.delay)

let shared_groups a b =
  IntMap.fold
    (fun g _ acc -> if IntMap.mem g b.delay then g :: acc else acc)
    a.delay []
  |> List.rev

let delay_hull t =
  IntMap.fold
    (fun _ iv acc -> Interval.hull acc iv)
    t.delay
    (Interval.make Float.infinity Float.neg_infinity)

let max_group_width t =
  IntMap.fold (fun _ iv acc -> Float.max acc (Interval.width iv)) t.delay 0.

let min_slack ~bound t =
  IntMap.fold
    (fun _ iv acc -> Float.min acc (bound -. Interval.width iv))
    t.delay bound

let min_slack_by ~bound_of t =
  IntMap.fold
    (fun g iv acc -> Float.min acc (bound_of g -. Interval.width iv))
    t.delay Float.infinity

let pp ppf t =
  Format.fprintf ppf "subtree %d: %d sinks, cap %.1f fF, groups {%a}, region %a"
    t.id t.n_sinks t.cap
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (groups t) Geometry.Octagon.pp t.region
