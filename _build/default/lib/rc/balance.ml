module Interval = Geometry.Interval
module Eps = Geometry.Eps

type side = { lo : float; hi : float }
type cons = { a : side; b : side; bound : float }

type plan = {
  ea : float;
  eb : float;
  wa : float;
  wb : float;
  snake : float;
  feasible : bool;
}

let cons_x_interval c =
  Interval.make (c.b.hi -. c.a.lo -. c.bound) (c.bound +. c.b.lo -. c.a.hi)

let plan ?(allow_snake = true) params ~dist ~cap_a ~cap_b ~cons ~pref =
  if dist < 0. then invalid_arg "Balance.plan: negative dist";
  let everything = Interval.make Float.neg_infinity Float.infinity in
  let wanted =
    List.fold_left
      (fun acc c -> Interval.inter acc (cons_x_interval c))
      everything cons
  in
  let feasible = not (Interval.is_empty wanted) in
  (* On inconsistent constraints aim at the point minimizing the worst
     violation; the repair pass deals with the residual. *)
  let wanted =
    if feasible then wanted else Interval.point (Interval.mid wanted)
  in
  (* Realizable x without snaking spans [x_min, x_max].  Snaking is a
     last resort: any constraint-satisfying x in the detour-free range
     beats equalizing delays with extra wire, so [pref] is only honoured
     within [wanted ∩ realizable]. *)
  let x_min = -.Elmore.wire_delay params ~len:dist ~load:cap_b in
  let x_max = Elmore.wire_delay params ~len:dist ~load:cap_a in
  let candidates = Interval.inter wanted (Interval.make x_min x_max) in
  let x =
    if not (Interval.is_empty candidates) then Interval.clamp candidates pref
    else if allow_snake then
      (* minimal snake: the endpoint of [wanted] nearest the range *)
      if wanted.Interval.lo > x_max then wanted.Interval.lo
      else wanted.Interval.hi
    else Geometry.Eps.clamp x_min x_max (Interval.clamp wanted pref)
  in
  let ea, eb =
    if x > x_max then
      (* Subtree a must be slowed beyond the detour-free maximum: the b
         wire degenerates to length 0 and the a wire snakes. *)
      (Elmore.wire_for_delay params ~load:cap_a ~delay:x, 0.)
    else if x < x_min then
      (0., Elmore.wire_for_delay params ~load:cap_b ~delay:(-.x))
    else if dist = 0. then (0., 0.)
    else
      let ea =
        Eps.clamp 0. dist
          (Elmore.balance_split params ~dist ~cap_a ~cap_b ~diff:x)
      in
      (ea, dist -. ea)
  in
  let wa = Elmore.wire_delay params ~len:ea ~load:cap_a in
  let wb = Elmore.wire_delay params ~len:eb ~load:cap_b in
  { ea; eb; wa; wb; snake = Float.max 0. (ea +. eb -. dist); feasible }

let instance2 params ~l_cf ~l_ac ~l_bc ~l_df ~l_ef ~cap_a ~cap_b ~cap_c ~cap_d
    ~cap_e ~cap_f =
  (* Eq. (5.1) balances group 1 (sinks under a and d); with
     alpha + beta = l_cf it is linear in alpha. *)
  let w len load = Elmore.wire_delay params ~len ~load in
  let diff = w l_df cap_d -. w l_ac cap_a in
  let alpha =
    Elmore.balance_split params ~dist:l_cf ~cap_a:cap_c ~cap_b:cap_f ~diff
  in
  let beta = l_cf -. alpha in
  (* Eq. (5.2) then fixes the total e-side wire length; gamma is the part
     beyond the existing l_ef. *)
  let lhs = w alpha cap_c +. w l_bc cap_b in
  let rhs_base = w beta cap_f in
  let delay_e = lhs -. rhs_base in
  let gamma =
    if delay_e <= 0. then -.l_ef
    else Elmore.wire_for_delay params ~load:cap_e ~delay:delay_e -. l_ef
  in
  (alpha, beta, gamma)

let pp_plan ppf p =
  Format.fprintf ppf "ea=%g eb=%g wa=%gps wb=%gps snake=%g%s" p.ea p.eb p.wa
    p.wb p.snake
    (if p.feasible then "" else " (infeasible)")
