(** Elmore delay formulas for pi-model wire segments. *)

(** [wire_delay p ~len ~load] is the Elmore delay (ps) through a wire of
    length [len] driving a lumped downstream capacitance [load] (fF):
    [r·len·(c·len/2 + load)] converted to picoseconds. *)
val wire_delay : Wire.params -> len:float -> load:float -> float

(** Delay contributed by a driver of resistance [rd] (ohm) charging
    [load] (fF), in ps. *)
val driver_delay : rd:float -> load:float -> float

(** [wire_for_delay p ~load ~delay] is the wire length whose Elmore delay
    into [load] equals [delay] (>= 0): the positive root of the
    quadratic.  Raises [Invalid_argument] on negative delay. *)
val wire_for_delay : Wire.params -> load:float -> delay:float -> float

(** [balance_split p ~dist ~cap_a ~cap_b ~diff] is the length [ea]
    (possibly outside [0, dist]) such that placing a merge point at
    distance [ea] from subtree [a] and [dist - ea] from subtree [b]
    makes [wire_delay ea into cap_a - wire_delay (dist-ea) into cap_b =
    diff].  With [ea + eb] fixed the equation is linear in [ea].
    Requires [dist > 0]. *)
val balance_split :
  Wire.params -> dist:float -> cap_a:float -> cap_b:float -> diff:float -> float
