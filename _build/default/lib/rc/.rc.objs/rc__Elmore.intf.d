lib/rc/elmore.mli: Wire
