lib/rc/elmore.ml: Float Wire
