lib/rc/transient.mli: Rctree
