lib/rc/wire.mli: Format
