lib/rc/rctree.ml: Array List Wire
