lib/rc/balance.mli: Format Geometry Wire
