lib/rc/wire.ml: Format
