lib/rc/transient.ml: Array Float Rctree
