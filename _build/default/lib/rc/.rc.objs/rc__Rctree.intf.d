lib/rc/rctree.mli:
