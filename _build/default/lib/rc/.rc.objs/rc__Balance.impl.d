lib/rc/balance.ml: Elmore Float Format Geometry List
