type params = { r : float; c : float }

let ps_per_ohm_ff = 1e-3
let default = { r = 0.003; c = 0.02 }

let make ~r ~c =
  if r <= 0. || c <= 0. then invalid_arg "Wire.make: parameters must be positive";
  { r; c }

let cap p len = p.c *. len
let pp ppf p = Format.fprintf ppf "r=%g ohm/u, c=%g fF/u" p.r p.c
