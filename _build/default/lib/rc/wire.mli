(** Interconnect electrical parameters.

    Lengths are layout units, resistance in ohm, capacitance in
    femtofarad and delays in picoseconds throughout the library
    (1 ohm × 1 fF = 1e-3 ps). *)

type params = {
  r : float;  (** unit wire resistance, ohm per layout unit *)
  c : float;  (** unit wire capacitance, fF per layout unit *)
}

(** Conversion factor from ohm·fF to picoseconds. *)
val ps_per_ohm_ff : float

(** The parameters used by the r1–r5 clock benchmark suite:
    r = 0.003 ohm/unit, c = 0.02 fF/unit. *)
val default : params

val make : r:float -> c:float -> params

(** Capacitance of a wire of the given length, fF. *)
val cap : params -> float -> float

val pp : Format.formatter -> params -> unit
