let wire_delay (p : Wire.params) ~len ~load =
  Wire.ps_per_ohm_ff *. p.r *. len *. ((p.c *. len /. 2.) +. load)

let driver_delay ~rd ~load = Wire.ps_per_ohm_ff *. rd *. load

(* Positive root of (k·r·c/2)·L² + (k·r·load)·L - delay = 0. *)
let wire_for_delay (p : Wire.params) ~load ~delay =
  if delay < 0. then invalid_arg "Elmore.wire_for_delay: negative delay";
  if delay = 0. then 0.
  else begin
    let k = Wire.ps_per_ohm_ff in
    let a = k *. p.r *. p.c /. 2. in
    let b = k *. p.r *. load in
    let disc = (b *. b) +. (4. *. a *. delay) in
    ((-.b) +. Float.sqrt disc) /. (2. *. a)
  end

(* delay(ea into cap_a) - delay(eb into cap_b) with ea + eb = dist:
   the quadratic terms cancel, leaving
   ea·k·r·(c·dist + cap_a + cap_b) = diff + k·r·dist·(c·dist/2 + cap_b). *)
let balance_split (p : Wire.params) ~dist ~cap_a ~cap_b ~diff =
  if dist <= 0. then invalid_arg "Elmore.balance_split: dist must be positive";
  let k = Wire.ps_per_ohm_ff in
  let denom = k *. p.r *. ((p.c *. dist) +. cap_a +. cap_b) in
  let num = diff +. (k *. p.r *. dist *. ((p.c *. dist /. 2.) +. cap_b)) in
  num /. denom
