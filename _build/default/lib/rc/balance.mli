(** Merge-point planning under Elmore delay.

    When two subtrees [a] and [b] at L1 distance [dist] are merged, wires
    of length [ea] and [eb] (with [ea + eb >= dist]; any excess is wire
    snaking) connect the new root to the two subtree roots.  The planner
    works in the space [x = wa - wb] of wire-delay differences: every
    intra-group skew constraint is an interval in [x], the realizable
    detour-free range is [[-wire_delay dist cap_b, wire_delay dist cap_a]],
    and snaking extends the range at the cost of extra wire. *)

(** Delay state of one group on one side of a merge: the range of Elmore
    delays from the subtree root to that group's sinks. *)
type side = { lo : float; hi : float }

(** A skew constraint induced by a group present on both sides. *)
type cons = { a : side; b : side; bound : float }

type plan = {
  ea : float;  (** wire length from merge root to subtree [a] *)
  eb : float;  (** wire length from merge root to subtree [b] *)
  wa : float;  (** Elmore delay of the [ea] wire into subtree [a], ps *)
  wb : float;  (** Elmore delay of the [eb] wire into subtree [b], ps *)
  snake : float;  (** [ea + eb - dist], 0 when no snaking was needed *)
  feasible : bool;
      (** false when the constraint intervals were mutually inconsistent
          and the plan only minimizes the worst violation *)
}

(** Interval of [x = wa - wb] satisfying one constraint:
    [[b.hi - a.lo - bound, bound + b.lo - a.hi]] (may be empty). *)
val cons_x_interval : cons -> Geometry.Interval.t

(** [plan params ~dist ~cap_a ~cap_b ~cons ~pref] plans a merge.
    [cap_a]/[cap_b] are the total downstream capacitances (fF) of the two
    subtrees, [cons] the constraints of all shared groups, and [pref] the
    preferred delay difference [x] used when slack remains (pass the
    midpoint difference for balanced trees).  [dist >= 0].
    With [~allow_snake:false] the chosen [x] is clamped into the
    detour-free range instead of snaking — used for unconstrained
    (cross-group) merges, which never justify extra wire. *)
val plan :
  ?allow_snake:bool ->
  Wire.params ->
  dist:float ->
  cap_a:float ->
  cap_b:float ->
  cons:cons list ->
  pref:float ->
  plan

(** Solver for the thesis' Instance 2 system, Eqs. (5.1)–(5.3): merging
    [Tc] and [Tf] whose children pairs (Ta, Td) and (Tb, Te) belong to two
    shared groups.  Given the fixed child wire lengths and subtree
    capacitances, returns [(alpha, beta, gamma)]: the split of the
    [c]–[f] connection and the wire-snaking length added on the [e] wire
    (possibly negative when no snaking is required). *)
val instance2 :
  Wire.params ->
  l_cf:float ->
  l_ac:float ->
  l_bc:float ->
  l_df:float ->
  l_ef:float ->
  cap_a:float ->
  cap_b:float ->
  cap_c:float ->
  cap_d:float ->
  cap_e:float ->
  cap_f:float ->
  float * float * float

val pp_plan : Format.formatter -> plan -> unit
