(* Benchmark harness: regenerates every table and figure of the thesis
   and times the library's kernels with Bechamel.

   Usage: main.exe
     [table1|table2|figures|spice|ablation|micro|quick|all]
     | cache [CIRCUIT...]
     | par [CIRCUIT...]
     | trace [CIRCUIT...]
     | smoke [CIRCUIT [CLUSTERED_CIRCUIT]]
     | scale [--smoke]
     | eff [--smoke]
     | compare OLD.json NEW.json [--threshold PCT]
     | fuzz [--cases N] [--seed S] [--inject] [--replay CASE]
   (default: all).  "quick" restricts the tables to r1-r3 for fast runs;
   "cache" (also run by "micro") compares the merge-trial cache off vs on
   and incremental ranking off vs on over r1-r5 (or the listed circuits),
   sweeps the engine's jobs knob, routes the clustered two-level mode,
   and writes BENCH_<circuit>.json stats files; "par" prints just the
   jobs sweep (speedup vs jobs in
   {1,2,4,cores}); "trace" routes r1-r5 (or the listed circuits) with a
   live trace, writes TRACE_<circuit>.json (Chrome trace-event) and
   TRACE_<circuit>.jsonl (metrics journal) and fails when the journal's
   per-round sums disagree with the engine stats; "smoke" is the
   deterministic CI perf gate: it routes
   one circuit (default r3) with incremental ranking off then on and
   fails unless the trees are identical and the probe counter strictly
   dropped, then gates the clustered router on a second circuit (default
   r5: clusters=1 must equal flat bit-for-bit and the auto-clustered
   tree must pass the global grouped audit); "scale" routes synthetic
   10^4-10^6-sink instances through the (multi-level) clustered router,
   checks the clusters=1-vs-flat identity and a forced depth-2 leg, and
   writes the BENCH_scale.json curve with per-point peak heap — each
   point routes with the live progress heartbeat on stderr (--smoke
   keeps the CI-sized pieces only); "eff" sweeps jobs in {1,2,4} with
   the Obs.Sched flight recorder live, prints the per-phase
   utilization / serial-fraction / Amdahl table, writes BENCH_eff.json
   and fails when any run lacks an efficiency report, reports a serial
   fraction outside [0,1], or the jobs=1 leg does not measure speedup
   1.0 (--smoke keeps r3 only);
   "compare" diffs two BENCH_<circuit>.json files and exits
   non-zero when a watched metric regressed past the threshold (default
   10%); "fuzz" runs the lib/check property-based fuzzer, prints a JSON
   summary, and writes the shrunk repro of any failure to FUZZ_REPRO.txt
   before exiting non-zero. *)

let bound = 10.

let header title =
  Format.printf "@.==== %s ====@." title

(* --- Tables I and II ----------------------------------------------------- *)

let paper_table1 =
  (* (circuit, groups) -> (wirelen, reduction %) from Table I. *)
  [
    ("r1", [ (1, 1070421, 0.); (4, 1048432, 2.05); (6, 1041671, 2.69); (8, 1040952, 2.75); (10, 1039556, 2.88) ]);
    ("r2", [ (1, 2169791, 0.); (4, 2112508, 2.64); (6, 2112074, 2.66); (8, 2093848, 3.50); (10, 2091244, 3.62) ]);
    ("r3", [ (1, 2734959, 0.); (4, 2664397, 2.58); (6, 2647713, 3.19); (8, 2644158, 3.32); (10, 2646072, 3.25) ]);
    ("r4", [ (1, 5442046, 0.); (4, 5311981, 2.39); (6, 5307627, 2.47); (8, 5279328, 2.99); (10, 5272254, 3.12) ]);
    ("r5", [ (1, 8033650, 0.); (4, 7836825, 2.45); (6, 7799067, 2.92); (8, 7771753, 3.26); (10, 7754078, 3.48) ]);
  ]

let paper_table2 =
  [
    ("r1", [ (1, 1070421, 0.); (4, 969872, 9.39); (6, 945353, 11.68); (8, 930384, 13.08); (10, 926958, 13.40) ]);
    ("r2", [ (1, 2169791, 0.); (4, 1940437, 10.57); (6, 1938564, 10.66); (8, 1865821, 14.01); (10, 1855198, 14.50) ]);
    ("r3", [ (1, 2734959, 0.); (4, 2452948, 10.31); (6, 2371398, 13.29); (8, 2386127, 12.75); (10, 2379931, 12.98) ]);
    ("r4", [ (1, 5442046, 0.); (4, 4922763, 9.54); (6, 4785931, 12.06); (8, 4791754, 11.95); (10, 4762357, 12.49) ]);
    ("r5", [ (1, 8033650, 0.); (4, 7247698, 9.78); (6, 7094385, 11.69); (8, 6984476, 13.06); (10, 6915703, 13.92) ]);
  ]

let print_vs_paper paper rows =
  Format.printf "@.Paper vs measured (reduction %% vs each EXT-BST baseline):@.";
  Format.printf "%-8s %-8s %-12s %-12s@." "Circuit" "#groups" "paper" "measured";
  List.iter
    (fun (r : Experiments.Tables.row) ->
      match r.reduction_pct with
      | None -> ()
      | Some measured ->
        (match List.assoc_opt r.circuit paper with
         | None -> ()
         | Some entries ->
           (match
              List.find_opt (fun (g, _, _) -> g = r.n_groups) entries
            with
            | Some (_, _, paper_red) ->
              Format.printf "%-8s %-8d %-12.2f %-12.2f@." r.circuit r.n_groups
                paper_red measured
            | None -> ())))
    rows

let table ~scheme ~title ~paper ~circuits () =
  header title;
  let rows = Experiments.Tables.run ~circuits ~bound ~scheme () in
  Experiments.Tables.print ~title rows;
  print_vs_paper paper rows;
  rows

(* --- Parallel ranking sweep (jobs in {1,2,4,cores}) ----------------------- *)

let bench_instance (spec : Workload.Circuits.spec) =
  Workload.Circuits.instance spec ~n_groups:8
    ~scheme:Workload.Partition.Intermingled ~bound ()

(* Routes the instance once per jobs value (AST-DME) and reports wall and
   engine time plus the speedup relative to jobs=1.  The engine freezes
   each round's state before probing, so every run must produce the same
   tree; the sweep cross-checks evaluation metrics and trial stats. *)
let par_sweep inst =
  let cores = Domain.recommended_domain_count () in
  let sweep = List.sort_uniq Int.compare [ 1; 2; 4; cores ] in
  let runs =
    List.map
      (fun jobs ->
        Obs.Report.reset ();
        let t0 = Obs.Timer.now () in
        let r = Astskew.Router.ast_dme ~jobs inst in
        let wall = Obs.Timer.now () -. t0 in
        (jobs, wall, r))
      sweep
  in
  let _, base_wall, (base : Astskew.Router.result) = List.hd runs in
  let same (a : Astskew.Router.result) (b : Astskew.Router.result) =
    a.evaluation.wirelength = b.evaluation.wirelength
    && a.evaluation.global_skew = b.evaluation.global_skew
    && a.evaluation.max_group_skew = b.evaluation.max_group_skew
    && a.engine.trial = b.engine.trial
  in
  let rows =
    List.map
      (fun (jobs, wall, (r : Astskew.Router.result)) ->
        (jobs, wall, r.timings.engine_s, base_wall /. Float.max 1e-9 wall,
         same base r))
      runs
  in
  (cores, rows)

let par_json (cores, rows) =
  let open Obs.Json in
  Obj
    [
      ("cores", Int cores);
      ( "runs",
        List
          (List.map
             (fun (jobs, wall, engine_s, speedup, identical) ->
               Obj
                 [
                   ("jobs", Int jobs);
                   ("wall_s", Float wall);
                   ("engine_s", Float engine_s);
                   ("speedup_vs_jobs1", Float speedup);
                   ("identical_to_jobs1", Bool identical);
                 ])
             rows) );
    ]

let print_par_sweep name (cores, rows) =
  List.iter
    (fun (jobs, wall, engine_s, speedup, identical) ->
      Format.printf "%-8s %5d %9.3f %9.3f %7.2fx %9s@." name jobs wall
        engine_s speedup
        (if identical then "ok" else "DIFFERS!"))
    rows;
  ignore cores

let par_header () =
  Format.printf "%-8s %5s %9s %9s %8s %9s@." "circuit" "jobs" "wall (s)"
    "engine(s)" "speedup" "tree"

let default_circuits = [ "r1"; "r2"; "r3"; "r4"; "r5" ]

let par_bench ?(circuits = default_circuits) () =
  header
    (Printf.sprintf "Parallel ranking sweep (AST-DME, %d core%s)"
       (Domain.recommended_domain_count ())
       (if Domain.recommended_domain_count () = 1 then "" else "s"));
  par_header ();
  List.iter
    (fun name ->
      match Workload.Circuits.find name with
      | None -> Format.eprintf "par bench: unknown circuit %S@." name
      | Some spec -> print_par_sweep spec.name (par_sweep (bench_instance spec)))
    circuits

(* --- Merge-trial cache comparison + BENCH_*.json ------------------------- *)

(* Identical-tree check used by the cache/incremental benches and the
   smoke gate: evaluation metrics are a complete fingerprint for this
   purpose (the embedding is deterministic in the planned tree, and the
   check oracles additionally compare trees node-for-node). *)
let same_result (a : Astskew.Router.result) (b : Astskew.Router.result) =
  a.evaluation.wirelength = b.evaluation.wirelength
  && a.evaluation.global_skew = b.evaluation.global_skew
  && a.evaluation.max_group_skew = b.evaluation.max_group_skew

(* Routes each circuit with the trial cache off then on, then with
   incremental ranking ablated (cache on), checks the trees agree, prints
   the speedups, sweeps the engine jobs knob, and writes one
   BENCH_<circuit>.json per circuit with per-phase timings, cache and
   probe counters, the jobs sweep and the full Obs snapshot of each run.
   These files are the machine-readable trajectory future performance PRs
   are judged against (see the `compare` subcommand). *)
let cache_bench ?(circuits = default_circuits) () =
  header "Merge-trial cache (AST-DME, cache off vs on)";
  Format.printf "%-8s %9s %9s %8s %11s %11s %7s@." "circuit" "off (s)"
    "on (s)" "speedup" "trials-off" "trials-on" "drop%";
  List.iter
    (fun name ->
      match Workload.Circuits.find name with
      | None -> Format.eprintf "cache bench: unknown circuit %S@." name
      | Some spec ->
        let inst = bench_instance spec in
        let timed config =
          Obs.Report.reset ();
          let t0 = Obs.Timer.now () in
          let r = Astskew.Router.ast_dme ~config inst in
          let elapsed = Obs.Timer.now () -. t0 in
          (r, elapsed, Obs.Report.snapshot ())
        in
        let off_config =
          { Astskew.Router.ast_default_config with Dme.Engine.trial_cache = false }
        in
        let r_off, t_off, snap_off = timed off_config in
        let r_on, t_on, snap_on = timed Astskew.Router.ast_default_config in
        let identical = same_result r_off r_on in
        let trials_off = r_off.engine.trial.trial_merges in
        let trials_on = r_on.engine.trial.trial_merges in
        let drop =
          100. *. (1. -. (float_of_int trials_on /. float_of_int (Int.max 1 trials_off)))
        in
        let speedup = t_off /. Float.max 1e-9 t_on in
        Format.printf "%-8s %9.3f %9.3f %7.2fx %11d %11d %6.1f%%@." spec.name
          t_off t_on speedup trials_off trials_on drop;
        if not identical then
          Format.printf "  WARNING: %s cache-on tree differs from cache-off!@."
            spec.name;
        (* Incremental ranking ablation, both runs with the cache on so
           the only delta is the cross-round proposal reuse. *)
        let noinc_config =
          { Astskew.Router.ast_default_config with Dme.Engine.incremental = false }
        in
        let r_noinc, t_noinc, snap_noinc = timed noinc_config in
        let probes_full = r_noinc.engine.nn_reprobes in
        let probes_inc = r_on.engine.nn_reprobes in
        let probe_drop =
          100.
          *. (1. -. (float_of_int probes_inc /. float_of_int (Int.max 1 probes_full)))
        in
        let inc_identical = same_result r_noinc r_on in
        let inc_speedup = t_noinc /. Float.max 1e-9 t_on in
        Format.printf
          "  incremental: probes %d -> %d (%.1f%% drop), %.2fx engine wall, trees %s@."
          probes_full probes_inc probe_drop inc_speedup
          (if inc_identical then "ok" else "DIFFER!");
        let par = par_sweep inst in
        (* Clustered leg: the two-level router at the auto cluster
           count, plus the degenerate clusters=1 identity against the
           flat cache-on run.  Its watched metrics (wall, counters, GC
           words, quality) land in the BENCH json so `compare` gates
           the clustered path exactly like the flat one. *)
        let timed_clustered clusters =
          Obs.Report.reset ();
          let t0 = Obs.Timer.now () in
          let r = Astskew.Router.ast_dme ~clustered:true ?clusters inst in
          let elapsed = Obs.Timer.now () -. t0 in
          (r, elapsed, Obs.Report.snapshot ())
        in
        let r_clu, t_clu, snap_clu = timed_clustered None in
        let r_k1, _, _ = timed_clustered (Some 1) in
        let clu_identical = same_result r_on r_k1 in
        let regions =
          match r_clu.clustering with
          | Some d -> d.Dme.Cluster.n_clusters
          | None -> 0
        in
        Format.printf
          "  clustered: %d regions, %.3f s (%.2fx cache-on wall), clusters=1 trees %s@."
          regions t_clu (t_on /. Float.max 1e-9 t_clu)
          (if clu_identical then "ok" else "DIFFER!");
        let run_json result elapsed snap =
          Obs.Json.Obj
            [
              ("wall_s", Obs.Json.Float elapsed);
              ("result", Astskew.Router.json_of_result result);
              ("obs", snap);
            ]
        in
        let json =
          Obs.Json.Obj
            [
              ("circuit", Obs.Json.String spec.name);
              ("n_sinks", Obs.Json.Int spec.n_sinks);
              ("n_groups", Obs.Json.Int 8);
              ("scheme", Obs.Json.String "intermingled");
              ("bound_ps", Obs.Json.Float bound);
              ("identical_trees", Obs.Json.Bool identical);
              ("speedup", Obs.Json.Float speedup);
              ("trial_merges_off", Obs.Json.Int trials_off);
              ("trial_merges_on", Obs.Json.Int trials_on);
              ("trial_drop_pct", Obs.Json.Float drop);
              ( "incremental",
                Obs.Json.Obj
                  [
                    ("identical_trees", Obs.Json.Bool inc_identical);
                    ("nn_probes_full", Obs.Json.Int probes_full);
                    ("nn_probes_incremental", Obs.Json.Int probes_inc);
                    ( "nn_probes_saved",
                      Obs.Json.Int r_on.engine.nn_probes_saved );
                    ("probe_drop_pct", Obs.Json.Float probe_drop);
                    ("speedup", Obs.Json.Float inc_speedup);
                    ("off", run_json r_noinc t_noinc snap_noinc);
                  ] );
              ("par", par_json par);
              ( "clustered",
                Obs.Json.Obj
                  [
                    ("regions", Obs.Json.Int regions);
                    ("identical_at_one_cluster", Obs.Json.Bool clu_identical);
                    ("run", run_json r_clu t_clu snap_clu);
                  ] );
              ("cache_off", run_json r_off t_off snap_off);
              ("cache_on", run_json r_on t_on snap_on);
            ]
        in
        let file = Printf.sprintf "BENCH_%s.json" spec.name in
        Obs.Json.write_file file json;
        Format.printf "  wrote %s@." file)
    circuits

(* --- CI perf smoke: incremental ranking must actually save probes ---------- *)

(* Deterministic probe-counter gate, stable on shared runners where
   wall-clock is not: routes one circuit with incremental ranking off
   then on (trial cache on for both) and fails unless the routed trees
   are identical, the executed probe count strictly dropped, the trial
   workload did not grow, and the executed + saved probes of the
   incremental run add up exactly to the from-scratch count. *)
(* Clustered leg of the smoke gate: the two-level router must
   degenerate exactly at clusters=1 (same tree, same probe and trial
   counters as flat) and stay Audit-clean under the global grouped
   contract at the auto cluster count, with every region non-empty.
   All gates are deterministic counters and tree fingerprints; wall
   time and GC words are printed for the log but never gated. *)
let smoke_clustered name =
  match Workload.Circuits.find name with
  | None ->
    Format.eprintf "smoke: unknown circuit %S@." name;
    exit 2
  | Some spec ->
    header (Printf.sprintf "Perf smoke: clustered routing on %s" spec.name);
    let inst = bench_instance spec in
    let timed f =
      Obs.Report.reset ();
      let t0 = Obs.Timer.now () in
      let r = f () in
      (r, Obs.Timer.now () -. t0)
    in
    let flat, t_flat = timed (fun () -> Astskew.Router.ast_dme inst) in
    let k1, t_k1 =
      timed (fun () -> Astskew.Router.ast_dme ~clustered:true ~clusters:1 inst)
    in
    let clu, t_clu =
      timed (fun () -> Astskew.Router.ast_dme ~clustered:true inst)
    in
    let line what (r : Astskew.Router.result) wall =
      Format.printf
        "%-12s wall %6.3f s, probes %6d, trial merges %6d, minor words %.3e@."
        what wall r.engine.nn_reprobes r.engine.trial.trial_merges
        r.engine.gc.Obs.Gcstat.minor_words
    in
    line "flat:" flat t_flat;
    line "clusters=1:" k1 t_k1;
    line "clustered:" clu t_clu;
    let fail msg =
      Format.printf "FAIL: %s@." msg;
      exit 1
    in
    (match clu.clustering with
     | None -> fail "clustered run reports no clustering detail"
     | Some d ->
       Format.printf "clustered regions: %d, top-level rounds: %d@."
         d.Dme.Cluster.n_clusters d.top.rounds;
       Array.iter
         (fun (c : Dme.Cluster.cluster_stats) ->
           if c.n_sinks = 0 then
             fail (Printf.sprintf "region %d is empty" c.cluster))
         d.per_cluster);
    if not (same_result flat k1) then
      fail "clusters=1 tree differs from the flat router's";
    if flat.engine.nn_reprobes <> k1.engine.nn_reprobes then
      fail "clusters=1 probe count differs from flat";
    if flat.engine.trial <> k1.engine.trial then
      fail "clusters=1 trial-merge stats differ from flat";
    let audit =
      Check.Audit.run Check.Audit.Grouped inst clu.routed clu.evaluation
    in
    if audit <> [] then begin
      List.iter
        (fun (v : Check.Audit.violation) ->
          Format.printf "  AUDIT %s: %s@." v.invariant v.detail)
        audit;
      fail "clustered route failed the global grouped audit"
    end;
    Format.printf "OK@."

let smoke args =
  let name, clustered_name =
    match args with
    | [] -> ("r3", "r5")
    | [ c ] -> (c, "r5")
    | [ c; k ] -> (c, k)
    | _ ->
      Format.eprintf "usage: smoke [CIRCUIT [CLUSTERED_CIRCUIT]]@.";
      exit 2
  in
  (match Workload.Circuits.find name with
  | None ->
    Format.eprintf "smoke: unknown circuit %S@." name;
    exit 2
  | Some spec ->
    header (Printf.sprintf "Perf smoke: incremental ranking on %s" spec.name);
    let inst = bench_instance spec in
    let run incremental =
      Obs.Report.reset ();
      Astskew.Router.ast_dme ~incremental inst
    in
    let off = run false in
    let on = run true in
    let full = off.engine.nn_reprobes in
    let inc = on.engine.nn_reprobes in
    let saved = on.engine.nn_probes_saved in
    let drop =
      100. *. (1. -. (float_of_int inc /. float_of_int (Int.max 1 full)))
    in
    Format.printf "probes: full=%d incremental=%d saved=%d (%.1f%% drop)@."
      full inc saved drop;
    (* Allocation gate: the arena/SoA merge loop allocates a bounded
       number of minor words per executed ranking probe.  Before the
       slab rewrite the figure sat around 7500 words/probe on r5;
       after it, well under 2000 on every circuit.  The budget leaves
       ~2x headroom for honest churn while still catching a boxed
       octagon or closure sneaking back onto the hot path (a 5-6x
       jump).  Allocation counts are deterministic per domain, so
       like the probe counters this cannot flake on slow runners. *)
    let words_per_probe_budget = 3500. in
    let words_per_probe =
      on.engine.gc.Obs.Gcstat.minor_words /. float_of_int (Int.max 1 inc)
    in
    Format.printf "alloc: minor words=%.3e (%.1f per executed probe)@."
      on.engine.gc.Obs.Gcstat.minor_words words_per_probe;
    let fail msg =
      Format.printf "FAIL: %s@." msg;
      exit 1
    in
    if not (same_result off on) then
      fail "incremental tree differs from from-scratch tree";
    if on.engine.trial.trial_merges > off.engine.trial.trial_merges then
      fail "incremental run executed more trial merges than from-scratch";
    if inc >= full then fail "incremental ranking saved no probes";
    if inc + saved <> full then
      fail "executed + saved probes do not add up to the full count";
    if words_per_probe > words_per_probe_budget then
      fail
        (Printf.sprintf
           "allocation per probe %.1f exceeds the %.0f minor-word budget"
           words_per_probe words_per_probe_budget);
    Format.printf "OK@.");
  smoke_clustered clustered_name

(* --- bench trace: Chrome trace + JSONL journal artifacts ------------------- *)

(* Routes each circuit once (AST-DME) with a live trace and writes
   TRACE_<circuit>.json (Chrome trace-event format, Perfetto-loadable)
   and TRACE_<circuit>.jsonl (metrics journal).  Fails — exit 1 — when
   any journal's per-round sums disagree with the engine's aggregate
   stats, so CI catches instrumentation drift the moment a counter and
   its journal field diverge.  The flight recorder rides along so the
   journal also carries (and is gated on) the efficiency record. *)
let trace_bench ?(circuits = default_circuits) () =
  header "Trace artifacts (AST-DME, Chrome trace + JSONL journal)";
  Format.printf "%-8s %7s %8s %8s %9s@." "circuit" "rounds" "events" "journal"
    "check";
  let failures = ref 0 in
  List.iter
    (fun name ->
      match Workload.Circuits.find name with
      | None ->
        Format.eprintf "trace bench: unknown circuit %S@." name;
        incr failures
      | Some spec ->
        let inst = bench_instance spec in
        let trace = Obs.Trace.create () in
        Obs.Trace.merge_manifest trace
          [
            ("circuit", Obs.Json.String spec.name);
            ("n_sinks", Obs.Json.Int spec.n_sinks);
            ("n_groups", Obs.Json.Int 8);
            ("scheme", Obs.Json.String "intermingled");
            ("bound_ps", Obs.Json.Float bound);
          ];
        let sched = Obs.Sched.create () in
        let r = Astskew.Router.ast_dme ~trace ~sched inst in
        let chrome_file = Printf.sprintf "TRACE_%s.json" spec.name in
        let journal_file = Printf.sprintf "TRACE_%s.jsonl" spec.name in
        Obs.Trace.write_chrome chrome_file trace;
        Obs.Trace.write_journal journal_file trace;
        let round_records =
          List.filter_map
            (function
              | Obs.Json.Obj fields
                when List.assoc_opt "type" fields
                     = Some (Obs.Json.String "round") ->
                Some fields
              | _ -> None)
            (Obs.Trace.journal_records trace)
        in
        let sum key =
          List.fold_left
            (fun acc fields ->
              match List.assoc_opt key fields with
              | Some (Obs.Json.Int i) -> acc + i
              | _ -> acc)
            0 round_records
        in
        let bad = ref [] in
        let check what got want =
          if got <> want then
            bad := Printf.sprintf "%s: journal %d <> engine %d" what got want
                   :: !bad
        in
        check "rounds" (List.length round_records) r.engine.rounds;
        check "probes" (sum "probes") r.engine.nn_reprobes;
        check "nn_probes_saved" (sum "nn_probes_saved")
          r.engine.nn_probes_saved;
        check "trial_merges" (sum "trial_merges") r.engine.trial.trial_merges;
        check "trial_cache_hits" (sum "trial_cache_hits")
          r.engine.trial.cache_hits;
        let efficiency_records =
          List.filter
            (function
              | Obs.Json.Obj fields ->
                List.assoc_opt "type" fields
                = Some (Obs.Json.String "efficiency")
              | _ -> false)
            (Obs.Trace.journal_records trace)
        in
        check "efficiency records" (List.length efficiency_records) 1;
        let n_events = List.length (Obs.Trace.events trace) in
        Format.printf "%-8s %7d %8d %8d %9s@." spec.name r.engine.rounds
          n_events
          (List.length round_records)
          (if !bad = [] then "ok" else "MISMATCH");
        List.iter
          (fun m -> Format.printf "  MISMATCH %s@." m)
          (List.rev !bad);
        if !bad <> [] then incr failures;
        Format.printf "  wrote %s, %s@." chrome_file journal_file)
    circuits;
  if !failures > 0 then begin
    Format.printf "@.%d circuit(s) failed the journal consistency check@."
      !failures;
    exit 1
  end

(* --- BENCH_*.json comparison ---------------------------------------------- *)

(* Flattens a BENCH json tree to dotted-path -> number (list elements get
   bracketed indices, e.g. "par.runs[2].wall_s"). *)
let flatten json =
  let tbl = Hashtbl.create 128 in
  let rec go path = function
    | Obs.Json.Int i -> Hashtbl.replace tbl path (float_of_int i)
    | Obs.Json.Float f -> Hashtbl.replace tbl path f
    | Obs.Json.Obj fields ->
      List.iter
        (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
        fields
    | Obs.Json.List l ->
      List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) l
    | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.String _ -> ()
  in
  go "" json;
  tbl

(* Watched cost metrics: for all of these, an increase is a regression.
   Quality metrics (wirelength, skews) are included so a perf win that
   silently trades routing quality still fails the gate; counters are
   deterministic, wall times are why the threshold exists. *)
let cost_metrics =
  [
    "wall_s"; "engine_s"; "repair_s"; "evaluate_s"; "total_s"; "cpu_seconds";
    "trial_merges"; "trial_cache_misses"; "nn_reprobes"; "nn_probes_full";
    "nn_probes_incremental"; "trial_merges_off"; "trial_merges_on";
    "wirelength"; "global_skew_ps"; "max_group_skew_ps";
    (* repair-loop effort: balance cycles, lift sweeps and the per-sink
       repair wall time of the scale curve — the metrics the flat-arena
       incremental repair exists to keep down *)
    "lift_iterations"; "cycles"; "repair_s_per_sink";
    (* engine-phase GC counters (see Obs.Gcstat): allocation growth is a
       perf regression just like wall time, but deterministic *)
    "minor_words"; "promoted_words"; "major_words";
    (* process-lifetime major-heap high-water mark, recorded per scale
       point: the arena-native pipeline exists to keep this flat *)
    "top_heap_words";
    (* parallel-efficiency metrics from the Obs.Sched flight recorder
       (BENCH_eff.json): serial residue, per-phase idleness and the
       chunk-latency tail are what the clustered pipeline's scaling
       lives on — all three regress upward *)
    "serial_fraction"; "idle_fraction"; "chunk_latency_p99_s";
  ]

let watched_leaf path =
  let seg =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  List.mem seg cost_metrics

(* Diffs two BENCH_<circuit>.json files (typically: committed trajectory
   vs freshly regenerated) and exits 1 when any watched metric grew by
   more than the threshold, 2 on usage or unreadable input.  Keeps perf
   trajectory checks scriptable instead of eyeball-only. *)
let compare_bench args =
  let usage () =
    Format.eprintf "usage: compare OLD.json NEW.json [--threshold PCT]@.";
    exit 2
  in
  let threshold = ref 10. in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: t :: rest ->
      (match float_of_string_opt t with
       | Some t when t >= 0. -> threshold := t
       | _ -> usage ());
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse args;
  let old_file, new_file =
    match List.rev !files with [ o; n ] -> (o, n) | _ -> usage ()
  in
  let read path =
    match Obs.Json.read_file path with
    | v -> v
    | exception Sys_error msg ->
      Format.eprintf "compare: %s@." msg;
      exit 2
    | exception Obs.Json.Parse_error { pos; msg } ->
      Format.eprintf "compare: %s: parse error at byte %d: %s@." path pos msg;
      exit 2
  in
  let old_t = flatten (read old_file) and new_t = flatten (read new_file) in
  let paths =
    Hashtbl.fold (fun k _ acc -> k :: acc) old_t []
    |> List.filter watched_leaf
    |> List.sort compare
  in
  header
    (Printf.sprintf "BENCH compare: %s -> %s (threshold %.1f%%)" old_file
       new_file !threshold);
  Format.printf "%-52s %14s %14s %9s@." "metric" "old" "new" "change";
  let regressions = ref 0 in
  List.iter
    (fun path ->
      let ov = Hashtbl.find old_t path in
      match Hashtbl.find_opt new_t path with
      | None -> Format.printf "%-52s %14.6g %14s@." path ov "(missing)"
      | Some nv ->
        let delta = nv -. ov in
        let rel = 100. *. delta /. Float.max (Float.abs ov) 1e-9 in
        (* The absolute floor keeps float dust (e.g. a 1e-12 ps skew
           wiggle) from tripping the relative test on near-zero bases. *)
        let flag = rel > !threshold && delta > 1e-6 in
        if flag then incr regressions;
        Format.printf "%-52s %14.6g %14.6g %+8.1f%%%s@." path ov nv rel
          (if flag then "  REGRESSION" else ""))
    paths;
  let new_only =
    Hashtbl.fold
      (fun k _ acc ->
        if watched_leaf k && not (Hashtbl.mem old_t k) then k :: acc else acc)
      new_t []
  in
  List.iter
    (fun p -> Format.printf "%-52s %14s %14s (new metric)@." p "-" "-")
    (List.sort compare new_only);
  if !regressions > 0 then begin
    Format.printf "@.%d metric(s) regressed past %.1f%%@." !regressions
      !threshold;
    exit 1
  end
  else Format.printf "@.no regressions past %.1f%%@." !threshold

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

let micro () =
  cache_bench ();
  header "Bechamel micro-benchmarks";
  let open Bechamel in
  let open Geometry in
  let pt = Pt.make in
  let oct_a = Octagon.hull_list [ Octagon.of_point (pt 0. 0.); Octagon.of_point (pt 500. 300.) ] in
  let oct_b = Octagon.hull_list [ Octagon.of_point (pt 4000. 100.); Octagon.of_point (pt 4500. 900.) ] in
  let r1 = Option.get (Workload.Circuits.find "r1") in
  let quick_spec = Workload.Circuits.{ name = "bench"; n_sinks = 120; die = 40000. } in
  let quick_inst scheme groups =
    Workload.Circuits.instance quick_spec ~n_groups:groups ~scheme ~bound ()
  in
  let inst_inter = quick_inst Workload.Partition.Intermingled 6 in
  let inst_clust = quick_inst Workload.Partition.Clustered 6 in
  let r1_inter =
    Workload.Circuits.instance r1 ~n_groups:8
      ~scheme:Workload.Partition.Intermingled ~bound ()
  in
  let routed, _ = Dme.Engine.run inst_inter in
  let params = Rc.Wire.default in
  let cons =
    [ Rc.Balance.{ a = { lo = 0.; hi = 1. }; b = { lo = 3.; hi = 5. }; bound = 10. } ]
  in
  let tests =
    Test.make_grouped ~name:"astskew"
      [
        (* kernel operations *)
        Test.make ~name:"octagon-dist" (Staged.stage (fun () -> Octagon.dist oct_a oct_b));
        Test.make ~name:"octagon-sdr" (Staged.stage (fun () -> Octagon.sdr oct_a oct_b));
        Test.make ~name:"balance-plan"
          (Staged.stage (fun () ->
               Rc.Balance.plan params ~dist:2000. ~cap_a:120. ~cap_b:180. ~cons ~pref:2.));
        Test.make ~name:"evaluate"
          (Staged.stage (fun () -> Clocktree.Evaluate.run inst_inter routed));
        Test.make ~name:"repair"
          (Staged.stage (fun () -> Clocktree.Repair.run inst_inter routed));
        (* one per table: the table's inner loop at reduced scale *)
        Test.make ~name:"table1-ast-clustered"
          (Staged.stage (fun () -> Astskew.Router.ast_dme inst_clust));
        Test.make ~name:"table2-ast-intermingled"
          (Staged.stage (fun () -> Astskew.Router.ast_dme inst_inter));
        Test.make ~name:"table-baseline-ext-bst"
          (Staged.stage (fun () -> Astskew.Router.ext_bst inst_inter));
        Test.make ~name:"table2-ast-r1-full"
          (Staged.stage (fun () -> Astskew.Router.ast_dme r1_inter));
        (* one per figure *)
        Test.make ~name:"fig1-zst-vs-bst"
          (Staged.stage Experiments.Figures.fig1);
        Test.make ~name:"fig2-stitch-vs-assoc"
          (Staged.stage Experiments.Figures.fig2);
        Test.make ~name:"fig3-merging-region"
          (Staged.stage Experiments.Figures.fig3);
        Test.make ~name:"fig4-instance1"
          (Staged.stage Experiments.Figures.fig4);
        Test.make ~name:"fig5-instance2"
          (Staged.stage Experiments.Figures.fig5);
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let entries =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> acc)
      results []
  in
  Format.printf "%-40s %s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Format.printf "%-40s %s@." name pretty)
    (List.sort (fun (a, _) (b, _) -> compare a b) entries)

(* --- bench scale: clustered routing at 10^4-10^5 sinks --------------------- *)

let scale_file = "BENCH_scale.json"

(* Synthetic specs above the named-circuit range: die side grows as
   sqrt(n) so sink density matches r1-r5; groups stay intermingled
   (via bench_instance) so the top-level stitch carries real
   cross-region skew constraints. *)
let scale_spec n =
  Workload.Circuits.
    {
      name = Printf.sprintf "s%dk" (n / 1000);
      n_sinks = n;
      die = 2000. *. sqrt (float_of_int n);
    }

(* One curve point: route clustered (auto region count and depth) with
   the live progress heartbeat on stderr, audit the stitched tree under
   the global grouped contract.  The major-heap high-water mark is the
   router's own end-of-run sample (result.top_heap_words): it is a
   process-lifetime maximum, so points must run in ascending sink order
   for per-point values to be attributable (scale's ns list is
   ascending). *)
let scale_point n =
  let spec = scale_spec n in
  let inst = bench_instance spec in
  Obs.Report.reset ();
  let progress = Obs.Progress.create () in
  let t0 = Obs.Timer.now () in
  let r = Astskew.Router.ast_dme ~clustered:true ~progress inst in
  let wall = Obs.Timer.now () -. t0 in
  let heap = r.Astskew.Router.top_heap_words in
  let audit = Check.Audit.run Check.Audit.Grouped inst r.routed r.evaluation in
  (spec, r, wall, heap, audit)

let scale_point_json (spec : Workload.Circuits.spec)
    (r : Astskew.Router.result) wall heap audit =
  let open Obs.Json in
  Obj
    [
      ("circuit", String spec.name);
      ("n_sinks", Int spec.n_sinks);
      ("die", Float spec.die);
      ( "clusters",
        Int
          (match r.clustering with
           | Some d -> d.Dme.Cluster.n_clusters
           | None -> 0) );
      ( "cluster_depth",
        Int
          (match r.clustering with
           | Some d -> d.Dme.Cluster.depth
           | None -> 0) );
      ("wall_s", Float wall);
      ( "repair_s_per_sink",
        Float (r.timings.repair_s /. float_of_int spec.n_sinks) );
      ("top_heap_words", Int heap);
      ("audit_clean", Bool (audit = []));
      ("result", Astskew.Router.json_of_result r);
    ]

let print_scale_point (spec : Workload.Circuits.spec)
    (r : Astskew.Router.result) wall heap audit =
  Format.printf
    "%-8s %8d %8d %5d %9.3f %9.3f %6d %14.0f %8.3f %8.3f %8.1f %7s@."
    spec.name spec.n_sinks
    (match r.clustering with
     | Some d -> d.Dme.Cluster.n_clusters
     | None -> 0)
    (match r.clustering with
     | Some d -> d.Dme.Cluster.depth
     | None -> 0)
    wall r.timings.repair_s r.repair.cycles r.evaluation.wirelength
    r.evaluation.global_skew r.evaluation.max_group_skew
    (float_of_int heap /. 1e6)
    (if audit = [] then "clean" else "DIRTY!");
  List.iter
    (fun (v : Check.Audit.violation) ->
      Format.printf "  AUDIT %s: %s@." v.invariant v.detail)
    audit

(* Wall-clock/wirelength/peak-heap scaling curve for the clustered
   router, written to BENCH_scale.json.  Full mode routes 10^4, ~10^4.5,
   10^5, ~10^5.5 and 10^6 sinks (the last through the multi-level
   stitch: ~1000 regions at depth 2) and checks the clusters=1 identity
   on every named circuit at jobs {1,4}; --smoke keeps CI-sized pieces
   only (one 10^4-sink route plus the identity on a downsampled
   2000-sink instance).  Both modes run the forced depth-2 leg on the
   10^4 instance.  Exits 1 when any route fails the global audit, any
   identity or depth check differs, or repair misbehaves — a fixpoint
   exhausting its cycle budget or leaving a group unresolved.  All of
   these are deterministic, so this cannot flake on slow runners. *)
let scale args =
  let smoke_mode = ref false in
  let usage () =
    Format.eprintf "usage: scale [--smoke]@.";
    exit 2
  in
  List.iter
    (function "--smoke" -> smoke_mode := true | _ -> usage ())
    args;
  let ns =
    if !smoke_mode then [ 10_000 ]
    else [ 10_000; 31_623; 100_000; 316_228; 1_000_000 ]
  in
  header
    (Printf.sprintf "Scale: clustered AST-DME%s"
       (if !smoke_mode then " (smoke)" else ""));
  Format.printf "%-8s %8s %8s %5s %9s %9s %6s %14s %8s %8s %8s %7s@."
    "circuit" "sinks" "clusters" "depth" "wall (s)" "repair(s)" "cycles"
    "wirelength" "skew" "grp-skew" "heap(MW)" "audit";
  let points =
    List.map
      (fun n ->
        let spec, r, wall, heap, audit = scale_point n in
        print_scale_point spec r wall heap audit;
        (spec, r, wall, heap, audit))
      ns
  in
  let identity_legs =
    if !smoke_mode then [ scale_spec 2_000 ]
    else List.filter_map Workload.Circuits.find default_circuits
  in
  Format.printf "@.clusters=1 vs flat identity:@.";
  let identities =
    List.map
      (fun (spec : Workload.Circuits.spec) ->
        (* ad-hoc specs (the smoke downsample) are not in the registry,
           so run the oracle on the instance directly *)
        let findings =
          Check.Oracle.cluster_identity ~jobs:[ 1; 4 ] (bench_instance spec)
        in
        Format.printf "%-8s jobs 1,4: %s@." spec.name
          (if findings = [] then "identical" else "DIFFERS!");
        List.iter (Format.printf "  %a@." Check.Oracle.pp_finding) findings;
        (spec.name, findings))
      identity_legs
  in
  (* Forced depth-2 leg: a 10^4-sink route through a two-level stitch
     hierarchy (clusters=16 forces fan-out 4 over 4), gated on the
     stitched tree passing the global grouped audit and on a forced
     depth-1 run being bit-identical to the default-depth run (at 16
     regions the auto depth is 1, so the two must coincide exactly). *)
  let depth2_name, depth2_bad =
    let spec = scale_spec 10_000 in
    let inst = bench_instance spec in
    let base = Astskew.Router.ast_dme ~clustered:true ~clusters:16 inst in
    let d1 =
      Astskew.Router.ast_dme ~clustered:true ~clusters:16 ~cluster_depth:1
        inst
    in
    let t0 = Obs.Timer.now () in
    let d2 =
      Astskew.Router.ast_dme ~clustered:true ~clusters:16 ~cluster_depth:2
        inst
    in
    let wall2 = Obs.Timer.now () -. t0 in
    let bad = ref [] in
    if
      not
        (Check.Audit.tree_equal base.routed d1.routed
        && base.evaluation.delays = d1.evaluation.delays
        && base.evaluation.wirelength = d1.evaluation.wirelength)
    then bad := "depth=1 differs from default depth" :: !bad;
    (match d2.clustering with
     | Some d
       when d.Dme.Cluster.depth = 2 && Array.length d.Dme.Cluster.super > 0
       -> ()
     | Some d ->
       bad :=
         Printf.sprintf "depth=2 realized depth %d with %d super stitches"
           d.Dme.Cluster.depth
           (Array.length d.Dme.Cluster.super)
         :: !bad
     | None -> bad := "depth=2 run reports no clustering detail" :: !bad);
    List.iter
      (fun (v : Check.Audit.violation) ->
        bad := Printf.sprintf "audit %s: %s" v.invariant v.detail :: !bad)
      (Check.Audit.run Check.Audit.Grouped inst d2.routed d2.evaluation);
    Format.printf "@.forced depth-2 (%s, clusters=16): %.3fs %s@." spec.name
      wall2
      (if !bad = [] then "clean" else "DIRTY!");
    List.iter (Format.printf "  DEPTH2 %s@.") !bad;
    (spec.name, List.rev !bad)
  in
  let json =
    let open Obs.Json in
    Obj
      [
        ("bench", String "scale");
        ("mode", String (if !smoke_mode then "smoke" else "full"));
        ("bound_ps", Float bound);
        ("n_groups", Int 8);
        ("scheme", String "intermingled");
        ( "curve",
          List
            (List.map
               (fun (spec, r, wall, heap, audit) ->
                 scale_point_json spec r wall heap audit)
               points) );
        ( "cluster_identity",
          List
            (List.map
               (fun (name, findings) ->
                 Obj
                   [
                     ("circuit", String name);
                     ("jobs", List [ Int 1; Int 4 ]);
                     ("identical", Bool (findings = []));
                   ])
               identities) );
        ( "depth2",
          Obj
            [
              ("circuit", String depth2_name);
              ("clusters", Int 16);
              ("clean", Bool (depth2_bad = []));
            ] );
      ]
  in
  Obs.Json.write_file scale_file json;
  Format.printf "@.wrote %s@." scale_file;
  (* Repair gate: a fixpoint burning through its whole cycle budget (or
     worse, leaving a group over bound) is a behavioral regression even
     when the wall time still looks fine. *)
  let repair_bad =
    List.filter_map
      (fun ( (spec : Workload.Circuits.spec),
             (r : Astskew.Router.result),
             _,
             _,
             _ ) ->
        if r.repair.budget_exhausted || r.repair.unresolved_groups > 0 then
          Some
            (Printf.sprintf "%s: budget_exhausted=%b unresolved=%d" spec.name
               r.repair.budget_exhausted r.repair.unresolved_groups)
        else None)
      points
  in
  List.iter (Format.printf "REPAIR %s@.") repair_bad;
  let dirty =
    List.exists (fun (_, _, _, _, audit) -> audit <> []) points
    || List.exists (fun (_, findings) -> findings <> []) identities
    || repair_bad <> [] || depth2_bad <> []
  in
  if dirty then begin
    Format.printf "FAIL@.";
    exit 1
  end;
  Format.printf "OK@."

(* --- bench eff: parallel-efficiency sweep + BENCH_eff.json ----------------- *)

let eff_file = "BENCH_eff.json"
let eff_jobs = [ 1; 2; 4 ]

(* Sweeps the jobs knob with the Obs.Sched flight recorder live and
   prints the Amdahl ledger: measured wall speedup vs jobs=1 next to
   the speedup the measured serial fraction projects at 4/8/16 domains
   — when the two diverge, the recorder's per-phase table says which
   phase sat idle.  Deterministic gates only (report presence, serial
   fraction in [0,1], jobs=1 speedup exactly 1.0, identical trees);
   wall times and fractions are recorded for the trajectory, never
   thresholded here (that is `compare`'s job). *)
let eff args =
  let smoke_mode = ref false in
  let usage () =
    Format.eprintf "usage: eff [--smoke]@.";
    exit 2
  in
  List.iter
    (function "--smoke" -> smoke_mode := true | _ -> usage ())
    args;
  let circuits = if !smoke_mode then [ "r3" ] else [ "r3"; "r5" ] in
  header
    (Printf.sprintf "Parallel efficiency (AST-DME, flight recorder%s)"
       (if !smoke_mode then ", smoke" else ""));
  Format.printf "%-8s %5s %9s %9s %8s %8s %8s %8s@." "circuit" "jobs"
    "wall (s)" "speedup" "serial%" "amdahl4" "amdahl8" "amdahl16";
  let fail msg =
    Format.printf "FAIL: %s@." msg;
    exit 1
  in
  let amdahl_at n (rep : Obs.Sched.report) =
    match Array.find_opt (fun (k, _) -> k = n) rep.Obs.Sched.amdahl with
    | Some (_, s) -> s
    | None -> Float.nan
  in
  let circuit_json =
    List.map
      (fun name ->
        match Workload.Circuits.find name with
        | None ->
          Format.eprintf "eff: unknown circuit %S@." name;
          exit 2
        | Some spec ->
          let inst = bench_instance spec in
          let runs =
            List.map
              (fun jobs ->
                Obs.Report.reset ();
                let sched = Obs.Sched.create () in
                let t0 = Obs.Timer.now () in
                let r = Astskew.Router.ast_dme ~jobs ~sched inst in
                let wall = Obs.Timer.now () -. t0 in
                (jobs, wall, r))
              eff_jobs
          in
          let _, base_wall, base = List.hd runs in
          let rows =
            List.map
              (fun (jobs, wall, (r : Astskew.Router.result)) ->
                let rep =
                  match r.sched with
                  | Some rep -> rep
                  | None ->
                    fail
                      (Printf.sprintf "%s jobs=%d: no efficiency report"
                         spec.name jobs)
                in
                let speedup = base_wall /. Float.max 1e-9 wall in
                let s = rep.Obs.Sched.serial_fraction in
                Format.printf
                  "%-8s %5d %9.3f %8.2fx %7.1f%% %7.2fx %7.2fx %7.2fx@."
                  spec.name jobs wall speedup (100. *. s) (amdahl_at 4 rep)
                  (amdahl_at 8 rep) (amdahl_at 16 rep);
                if not (s >= 0. && s <= 1.) then
                  fail
                    (Printf.sprintf "%s jobs=%d: serial fraction %g outside [0,1]"
                       spec.name jobs s);
                if jobs = 1 && speedup <> 1.0 then
                  fail
                    (Printf.sprintf "%s: jobs=1 speedup %.17g <> 1.0" spec.name
                       speedup);
                if not (same_result base r) then
                  fail
                    (Printf.sprintf "%s jobs=%d: tree differs from jobs=1"
                       spec.name jobs);
                Obs.Json.Obj
                  [
                    ("jobs", Obs.Json.Int jobs);
                    ("wall_s", Obs.Json.Float wall);
                    ("speedup_vs_jobs1", Obs.Json.Float speedup);
                    ("identical_to_jobs1", Obs.Json.Bool (same_result base r));
                    ("result", Astskew.Router.json_of_result r);
                  ])
              runs
          in
          Obs.Json.Obj
            [
              ("circuit", Obs.Json.String spec.name);
              ("n_sinks", Obs.Json.Int spec.n_sinks);
              ("n_groups", Obs.Json.Int 8);
              ("scheme", Obs.Json.String "intermingled");
              ("bound_ps", Obs.Json.Float bound);
              ("runs", Obs.Json.List rows);
            ])
      circuits
  in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "eff");
        ( "mode",
          Obs.Json.String (if !smoke_mode then "smoke" else "full") );
        ("cores", Obs.Json.Int (Domain.recommended_domain_count ()));
        ("circuits", Obs.Json.List circuit_json);
      ]
  in
  Obs.Json.write_file eff_file json;
  Format.printf "@.wrote %s@.OK@." eff_file

(* --- Property-based fuzzing (lib/check) ----------------------------------- *)

let fuzz_repro_file = "FUZZ_REPRO.txt"

let fuzz args =
  let cases = ref 100 in
  let seed = ref 1L in
  let inject = ref false in
  let replay = ref None in
  let regime = ref None in
  let usage () =
    Format.eprintf
      "usage: fuzz [--cases N] [--seed S] [--inject] [--replay CASE]        [--regime R]@.";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--cases" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n > 0 -> cases := n
       | _ -> usage ());
      parse rest
    | "--seed" :: s :: rest ->
      (match Int64.of_string_opt s with
       | Some s -> seed := s
       | None -> usage ());
      parse rest
    | "--inject" :: rest ->
      inject := true;
      parse rest
    | "--replay" :: c :: rest ->
      (match int_of_string_opt c with
       | Some c when c >= 0 -> replay := Some c
       | _ -> usage ());
      parse rest
    | "--regime" :: r :: rest ->
      (* Only meaningful with --replay: forces the regime of the
         replayed case (e.g. "huge" for a scaled par-identity case). *)
      (match Check.Gen.regime_of_string r with
       | Some r -> regime := Some r
       | None -> usage ());
      parse rest
    | _ -> usage ()
  in
  parse args;
  match !replay with
  | Some case ->
    let findings =
      Check.replay ~inject:!inject ?regime:!regime ~seed:!seed ~case ()
    in
    List.iter (Format.printf "%a@." Check.Oracle.pp_finding) findings;
    if findings <> [] then exit 1
  | None ->
    (* stdout carries only the JSON summary; progress goes to stderr. *)
    Format.eprintf "==== Fuzz: %d cases, seed %Ld%s ====@." !cases !seed
      (if !inject then ", injected skew violations" else "");
    let progress (case : Check.Gen.case) =
      if case.index mod 25 = 0 then
        Format.eprintf "case %d (%s)...@." case.index
          (Check.Gen.regime_to_string case.regime)
    in
    let summary =
      Check.fuzz ~inject:!inject ~progress ~cases:!cases ~seed:!seed ()
    in
    Format.printf "%a@." Obs.Json.pp (Check.Runner.json_of_summary summary);
    if not (Check.Runner.ok summary) then begin
      let repro =
        String.concat "\n"
          (List.map Check.Runner.repro_text summary.failures)
      in
      let oc = open_out fuzz_repro_file in
      output_string oc repro;
      close_out oc;
      Format.eprintf "wrote shrunk repro(s) to %s@." fuzz_repro_file;
      exit 1
    end

(* --- main ----------------------------------------------------------------- *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let rest =
    if Array.length Sys.argv > 2 then
      Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
    else []
  in
  let circuits_of rest =
    match rest with [] -> None | cs -> Some cs
  in
  if what = "fuzz" then begin
    fuzz rest;
    exit 0
  end;
  let circuits quickly =
    if quickly then
      List.filter
        (fun (s : Workload.Circuits.spec) -> s.n_sinks <= 900)
        Workload.Circuits.specs
    else Workload.Circuits.specs
  in
  let run_tables quickly =
    ignore
      (table ~scheme:Workload.Partition.Clustered
         ~title:"Table I: clusters of sink groups" ~paper:paper_table1
         ~circuits:(circuits quickly) ());
    ignore
      (table ~scheme:Workload.Partition.Intermingled
         ~title:"Table II: intermingled sink groups" ~paper:paper_table2
         ~circuits:(circuits quickly) ())
  in
  match what with
  | "table1" ->
    ignore
      (table ~scheme:Workload.Partition.Clustered
         ~title:"Table I: clusters of sink groups" ~paper:paper_table1
         ~circuits:(circuits false) ())
  | "table2" ->
    ignore
      (table ~scheme:Workload.Partition.Intermingled
         ~title:"Table II: intermingled sink groups" ~paper:paper_table2
         ~circuits:(circuits false) ())
  | "figures" ->
    header "Figures 1-5";
    Experiments.Figures.print_all ()
  | "spice" ->
    header "Elmore vs transient (Chapter III)";
    Experiments.Spice_check.print (Experiments.Spice_check.run ())
  | "ablation" ->
    header "Ablation (Section V.F)";
    Experiments.Ablation.print (Experiments.Ablation.run ())
  | "micro" -> micro ()
  | "cache" -> cache_bench ?circuits:(circuits_of rest) ()
  | "par" -> par_bench ?circuits:(circuits_of rest) ()
  | "trace" -> trace_bench ?circuits:(circuits_of rest) ()
  | "smoke" -> smoke rest
  | "scale" -> scale rest
  | "eff" -> eff rest
  | "compare" -> compare_bench rest
  | "quick" ->
    run_tables true;
    header "Figures 1-5";
    Experiments.Figures.print_all ()
  | "all" ->
    run_tables false;
    header "Figures 1-5";
    Experiments.Figures.print_all ();
    header "Elmore vs transient (Chapter III)";
    Experiments.Spice_check.print (Experiments.Spice_check.run ());
    header "Ablation (Section V.F)";
    Experiments.Ablation.print (Experiments.Ablation.run ());
    micro ()
  | other ->
    Format.eprintf
      "unknown command %S (expected table1|table2|figures|spice|ablation|micro|cache|par|trace|smoke|scale|eff|compare|quick|all)@."
      other;
    exit 1
