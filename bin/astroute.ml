(* astroute: command-line driver for the associative-skew clock router.

   Subcommands:
     route    — route one circuit (or instance file) with one algorithm,
                optionally writing an SVG of the tree
     compare  — run greedy-DME, EXT-BST, MMM-DME and AST-DME on one instance
     gen      — write a benchmark instance to a file
     table    — regenerate Table I or II of the thesis
     figures  — print the figure reconstructions
*)

open Cmdliner

let circuit_arg =
  let doc = "Benchmark circuit (r1..r5)." in
  Arg.(value & opt string "r1" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let groups_arg =
  let doc = "Number of sink groups." in
  Arg.(value & opt int 8 & info [ "g"; "groups" ] ~docv:"N" ~doc)

let scheme_arg =
  let doc = "Group partition scheme: clustered or intermingled." in
  Arg.(value & opt string "intermingled" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let bound_arg =
  let doc = "Intra-group skew bound in picoseconds." in
  Arg.(value & opt float 10. & info [ "b"; "bound" ] ~docv:"PS" ~doc)

let seed_arg =
  let doc = "Override the deterministic placement seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the engine's merge ranking (1 = fully serial).      Defaults to the ASTSKEW_JOBS environment variable, else 1.  Routed      trees are bit-identical for any value; only wall time changes."
  in
  Arg.(
    value
    & opt int (Par.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_incremental_arg =
  let doc =
    "Disable the engine's cross-round nearest-neighbour proposal cache      and re-probe every active subtree each round (ablation / paranoia      switch).  Routed trees are bit-identical either way; only probe and      trial-merge counts, and hence wall time, change."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let clustered_arg =
  let doc =
    "Route AST-DME in clustered mode: partition the sinks into spatial      regions, plan each region in parallel, stitch the region roots back      through a bounded-fan-in hierarchy of merges.  With --clusters 1 the      output is bit-identical to the flat router; any fixed cluster count      and depth is bit-identical across --jobs."
  in
  Arg.(value & flag & info [ "clustered" ] ~doc)

let clusters_arg =
  let doc =
    "Region count for --clustered (clamped to the sink count).  Default:      about one region per thousand sinks."
  in
  Arg.(value & opt (some int) None & info [ "clusters" ] ~docv:"N" ~doc)

let cluster_depth_arg =
  let doc =
    "Stitch depth for --clustered: 1 is the classic two-level      construction (every region joins one top-level merge), higher depths      stitch regions through intermediate plans of at most 64 children      each.  Default: the smallest depth that accommodates the region      count."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "cluster-depth" ] ~docv:"D" ~doc)

let repair_max_cycles_arg =
  let doc =
    "Cycle budget per repair fixpoint (balance/lift rounds before giving      up; the repair stats then report budget_exhausted).  The default      converges in all supported configurations."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "repair-max-cycles" ] ~docv:"N" ~doc)

let algo_arg =
  let doc =
    "Algorithm: ast (AST-DME), ext (EXT-BST), zst (greedy-DME) or mmm      (fixed MMM topology)."
  in
  Arg.(value & opt string "ast" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let file_arg =
  let doc = "Load the instance from FILE (see Clocktree.Io for the format)              instead of generating a benchmark circuit." in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let svg_arg =
  let doc = "Write the routed tree as an SVG drawing to FILE." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let stats_json_arg =
  let doc =
    "Write routing statistics as JSON to FILE: result metrics (wirelength,      skews, per-phase timings, engine and repair stats) plus every Obs      counter and timer of the process."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print a live heartbeat to stderr while routing: one line per second      carrying the pipeline phase, wall clock, heap watermark, per-depth      region completion counts and an ETA.  Lines are strictly space-      separated key=value tokens (progress phase=... wall_s=... ...).      The heartbeat never changes the routed tree."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file to FILE: spans and instants from      the routing pipeline (engine rounds, probe/commit phases, repair      cycles), loadable in Perfetto or chrome://tracing.  Tracing does not      change the routed tree."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_journal_arg =
  let doc =
    "Write a JSONL metrics journal to FILE: a manifest line (circuit,      seed, full engine config), one record per DME merge round (probe,      cache and trial-merge counts, merge cost, cumulative wire, wall      time) and a final histograms record."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-journal" ] ~docv:"FILE" ~doc)

(* One trace context serves both artifacts; Trace.null when neither was
   requested, so the untraced run skips every emission. *)
let make_trace ~trace_file ~journal_file ~circuit ~groups ~scheme ~bound ~seed
    ~file ~jobs ~incremental =
  if trace_file = None && journal_file = None then Obs.Trace.null
  else begin
    let trace = Obs.Trace.create () in
    Obs.Trace.merge_manifest trace
      ([
         ( "circuit",
           match file with
           | Some f -> Obs.Json.String f
           | None -> Obs.Json.String circuit );
         ("groups", Obs.Json.Int groups);
         ("scheme", Obs.Json.String scheme);
         ("bound_ps", Obs.Json.Float bound);
         ("jobs", Obs.Json.Int jobs);
         ("incremental", Obs.Json.Bool incremental);
       ]
      @ match seed with
        | Some s -> [ ("seed", Obs.Json.Int s) ]
        | None -> []);
    trace
  end

let write_trace_files ~trace_file ~journal_file trace =
  let write what path writer =
    match writer path trace with
    | () ->
      Format.printf "wrote %s@." path;
      0
    | exception Sys_error e ->
      Format.eprintf "astroute: cannot write %s: %s@." what e;
      1
  in
  let c1 =
    match trace_file with
    | Some path -> write "trace" path Obs.Trace.write_chrome
    | None -> 0
  in
  let c2 =
    match journal_file with
    | Some path -> write "trace journal" path Obs.Trace.write_journal
    | None -> 0
  in
  Int.max c1 c2

(* The ["results"] field maps router names to Router.json_of_result
   objects; ["obs"] is the global Obs.Report snapshot (counters/timers
   accumulated over the whole process).  Returns an exit code. *)
let write_stats_json path results =
  let json =
    Obs.Json.Obj
      [
        ( "results",
          Obs.Json.Obj
            (List.map
               (fun (name, r) -> (name, Astskew.Router.json_of_result r))
               results) );
        ("obs", Obs.Report.snapshot ());
      ]
  in
  try
    Obs.Json.write_file path json;
    Format.printf "wrote %s@." path;
    0
  with Sys_error e ->
    Format.eprintf "astroute: cannot write stats: %s@." e;
    1

let load_instance ?file circuit groups scheme bound seed =
  match file with
  | Some path -> Clocktree.Io.read_file path
  | None ->
  match Workload.Circuits.find circuit with
  | None -> Error (Printf.sprintf "unknown circuit %S (expected r1..r5)" circuit)
  | Some spec ->
    (match Workload.Partition.scheme_of_string scheme with
     | None -> Error (Printf.sprintf "unknown scheme %S" scheme)
     | Some scheme ->
       let seed = Option.map Int64.of_int seed in
       Ok (Workload.Circuits.instance ?seed spec ~n_groups:groups ~scheme ~bound ()))

let print_result name (r : Astskew.Router.result) =
  Format.printf "%-11s %a@." name Astskew.Router.pp_result r

let route_cmd =
  let run circuit groups scheme bound seed algo file svg stats_json jobs
      no_incremental clustered clusters cluster_depth repair_max_cycles
      show_progress trace_file journal_file =
    match load_instance ?file circuit groups scheme bound seed with
    | Error e ->
      Format.eprintf "astroute: %s@." e;
      1
    | Ok inst ->
      let incremental = not no_incremental in
      let trace =
        make_trace ~trace_file ~journal_file ~circuit ~groups ~scheme ~bound
          ~seed ~file ~jobs ~incremental
      in
      let progress =
        if show_progress then Obs.Progress.create () else Obs.Progress.null
      in
      let result =
        match algo with
        | "ast" ->
          Some
            ( "AST-DME",
              Astskew.Router.ast_dme ~jobs ~incremental ~clustered ?clusters
                ?cluster_depth ?repair_max_cycles ~trace ~progress inst )
        | "ext" ->
          Some
            ( "EXT-BST",
              Astskew.Router.ext_bst ~jobs ~incremental ?repair_max_cycles
                ~trace ~progress inst )
        | "zst" ->
          Some
            ( "greedy-DME",
              Astskew.Router.greedy_dme ~jobs ~incremental ?repair_max_cycles
                ~trace ~progress inst )
        | "mmm" ->
          Some
            ( "MMM-DME",
              Astskew.Router.mmm_dme ~jobs ~incremental ?repair_max_cycles
                ~trace ~progress inst )
        | _ -> None
      in
      if clustered && algo <> "ast" then begin
        Format.eprintf "astroute: --clustered applies to --algo ast only@.";
        1
      end
      else begin
      match result with
       | None ->
         Format.eprintf "astroute: unknown algorithm %S@." algo;
         1
       | Some (name, r) ->
         Format.printf "%a@." Clocktree.Instance.pp inst;
         print_result name r;
         (match r.Astskew.Router.clustering with
          | Some d ->
            Format.printf
              "clustered: %d regions at depth %d (%d super stitches), %d top-level rounds, largest region %d sinks@."
              d.Dme.Cluster.n_clusters d.Dme.Cluster.depth
              (Array.length d.Dme.Cluster.super)
              d.Dme.Cluster.top.Dme.Engine.rounds
              (Array.fold_left
                 (fun m (c : Dme.Cluster.cluster_stats) -> Int.max m c.n_sinks)
                 0 d.Dme.Cluster.per_cluster)
          | None -> ());
         (match svg with
          | Some path ->
            Clocktree.Svg.write_file path inst r.routed;
            Format.printf "wrote %s@." path
          | None -> ());
         let trace_code = write_trace_files ~trace_file ~journal_file trace in
         let stats_code =
           match stats_json with
           | Some path -> write_stats_json path [ (name, r) ]
           | None -> 0
         in
         Int.max trace_code stats_code
      end
  in
  let term =
    Term.(
      const run $ circuit_arg $ groups_arg $ scheme_arg $ bound_arg $ seed_arg
      $ algo_arg $ file_arg $ svg_arg $ stats_json_arg $ jobs_arg
      $ no_incremental_arg $ clustered_arg $ clusters_arg
      $ cluster_depth_arg $ repair_max_cycles_arg $ progress_arg $ trace_arg
      $ trace_journal_arg)
  in
  Cmd.v (Cmd.info "route" ~doc:"Route one circuit with one algorithm.") term

let gen_cmd =
  let out =
    let doc = "Output instance file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run circuit groups scheme bound seed out =
    match load_instance circuit groups scheme bound seed with
    | Error e ->
      Format.eprintf "astroute: %s@." e;
      1
    | Ok inst ->
      Clocktree.Io.write_file out inst;
      Format.printf "wrote %s (%a)@." out Clocktree.Instance.pp inst;
      0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark instance file.")
    Term.(
      const run $ circuit_arg $ groups_arg $ scheme_arg $ bound_arg $ seed_arg
      $ out)

let compare_cmd =
  let run circuit groups scheme bound seed file stats_json jobs no_incremental
      clustered clusters trace_file journal_file =
    match load_instance ?file circuit groups scheme bound seed with
    | Error e ->
      Format.eprintf "astroute: %s@." e;
      1
    | Ok inst ->
      Format.printf "%a@." Clocktree.Instance.pp inst;
      let incremental = not no_incremental in
      (* All four routers share one trace: their phases appear as
         consecutive span groups in the exported timeline. *)
      let trace =
        make_trace ~trace_file ~journal_file ~circuit ~groups ~scheme ~bound
          ~seed ~file ~jobs ~incremental
      in
      let zst = Astskew.Router.greedy_dme ~jobs ~incremental ~trace inst in
      let ext = Astskew.Router.ext_bst ~jobs ~incremental ~trace inst in
      let mmm = Astskew.Router.mmm_dme ~jobs ~incremental ~trace inst in
      (* --clustered applies to the AST-DME leg only; the baselines have
         no clustered mode. *)
      let ast =
        Astskew.Router.ast_dme ~jobs ~incremental ~clustered ?clusters ~trace
          inst
      in
      print_result "greedy-DME" zst;
      print_result "EXT-BST" ext;
      print_result "MMM-DME" mmm;
      print_result "AST-DME" ast;
      Format.printf "AST-DME reduction vs EXT-BST: %.2f%%@."
        (100. *. Astskew.Router.reduction ~baseline:ext ast);
      let trace_code = write_trace_files ~trace_file ~journal_file trace in
      let stats_code =
        match stats_json with
        | Some path ->
          write_stats_json path
            [
              ("greedy-DME", zst);
              ("EXT-BST", ext);
              ("MMM-DME", mmm);
              ("AST-DME", ast);
            ]
        | None -> 0
      in
      Int.max trace_code stats_code
  in
  let term =
    Term.(
      const run $ circuit_arg $ groups_arg $ scheme_arg $ bound_arg $ seed_arg
      $ file_arg $ stats_json_arg $ jobs_arg $ no_incremental_arg
      $ clustered_arg $ clusters_arg $ trace_arg $ trace_journal_arg)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare all routers on one instance.") term

let table_cmd =
  let which =
    let doc = "Which table: 1 (clustered) or 2 (intermingled)." in
    Arg.(value & pos 0 int 2 & info [] ~docv:"N" ~doc)
  in
  let quick =
    let doc = "Restrict to r1-r3 for a fast run." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let run which quick =
    let scheme, title =
      match which with
      | 1 -> (Workload.Partition.Clustered, "Table I: clusters of sink groups")
      | 2 -> (Workload.Partition.Intermingled, "Table II: intermingled sink groups")
      | _ ->
        Format.eprintf "astroute: table must be 1 or 2@.";
        exit 1
    in
    let circuits =
      if quick then
        List.filter
          (fun (s : Workload.Circuits.spec) -> s.n_sinks <= 900)
          Workload.Circuits.specs
      else Workload.Circuits.specs
    in
    let rows = Experiments.Tables.run ~circuits ~scheme () in
    Experiments.Tables.print ~title rows;
    0
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate Table I or II.")
    Term.(const run $ which $ quick)

let figures_cmd =
  let run () =
    Experiments.Figures.print_all ();
    0
  in
  Cmd.v (Cmd.info "figures" ~doc:"Print the figure reconstructions.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "astroute" ~version:"1.0.0"
      ~doc:"Associative-skew clock routing (AST-DME) and baselines."
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ route_cmd; compare_cmd; gen_cmd; table_cmd; figures_cmd ]))
